//! Static analysis as an alternative to run-time analysis (paper §7).
//!
//! The paper's discussion section sketches the trade-off precisely: *"Static
//! analysis will yield a superset of the required permissions for an sthread,
//! as some code paths may never execute in practice. Static analysis would
//! report the exhaustive set of permissions for an sthread not to encounter a
//! protection violation. Yet these permissions could well include privileges
//! for sensitive data that could allow an exploit to leak that data."*
//!
//! This module makes that trade-off measurable. A [`ProgramModel`] is a small
//! whole-program summary — procedures, their call edges, and the memory items
//! each procedure may touch on *some* path (conditional accesses are modelled
//! explicitly). From it the analyser computes, by call-graph reachability, the
//! conservative footprint of a root procedure ([`ProgramModel::static_footprint`]),
//! turns it into a ready-to-apply [`SuggestedPolicy`]
//! ([`ProgramModel::suggest_policy`]), and — most importantly — compares that
//! against a dynamic [`Trace`] captured by cb-log on an innocuous workload
//! ([`ProgramModel::compare_with_trace`]), quantifying how many extra grants
//! static analysis would hand out and which of those cover data the
//! programmer has marked sensitive ([`StaticDynamicComparison::excess_sensitive`]).
//!
//! A model can also be *inferred* from a dynamic trace
//! ([`ProgramModel::from_trace`]): call edges come from adjacent shadow-stack
//! frames and accesses are attributed to the innermost frame. Merging models
//! inferred from several workloads and then analysing statically gives the
//! "exhaustive" view of §7 without hand-writing the model.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use wedge_core::AccessMode;

use crate::analyze::{FootprintEntry, ItemKey, SuggestedPolicy, Trace};

/// A single static access site: the item, the access mode, and whether the
/// access is on a conditional path (i.e. may not execute at run time).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticAccess {
    /// The memory item accessed.
    pub item: ItemKey,
    /// Read or write.
    pub mode: AccessMode,
    /// `true` when the access only happens on some executions (a branch, an
    /// error path, a rarely-taken feature). Conditional accesses are exactly
    /// what makes static analysis a superset of any single dynamic run.
    pub conditional: bool,
}

/// The static summary of one procedure: its direct callees and the accesses
/// syntactically present in its body.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProcedureModel {
    /// The procedure name (matching the names passed to
    /// `SthreadCtx::trace_fn` so models and traces can be compared).
    pub name: String,
    calls: BTreeSet<String>,
    accesses: Vec<StaticAccess>,
}

impl ProcedureModel {
    /// Direct callees of this procedure.
    pub fn calls(&self) -> &BTreeSet<String> {
        &self.calls
    }

    /// Access sites in this procedure's body.
    pub fn accesses(&self) -> &[StaticAccess] {
        &self.accesses
    }
}

/// Builder handle returned by [`ProgramModel::procedure`].
pub struct ProcedureBuilder<'a> {
    model: &'a mut ProgramModel,
    name: String,
}

impl ProcedureBuilder<'_> {
    fn entry(&mut self) -> &mut ProcedureModel {
        self.model
            .procedures
            .entry(self.name.clone())
            .or_insert_with(|| ProcedureModel {
                name: self.name.clone(),
                ..ProcedureModel::default()
            })
    }

    /// Declare a direct call edge to `callee`.
    pub fn calls(mut self, callee: &str) -> Self {
        let callee = callee.to_string();
        self.entry().calls.insert(callee);
        self
    }

    /// Declare an unconditional read of `item`.
    pub fn reads(self, item: ItemKey) -> Self {
        self.access(item, AccessMode::Read, false)
    }

    /// Declare an unconditional write of `item`.
    pub fn writes(self, item: ItemKey) -> Self {
        self.access(item, AccessMode::Write, false)
    }

    /// Declare a read of `item` that only happens on some paths.
    pub fn reads_if(self, item: ItemKey) -> Self {
        self.access(item, AccessMode::Read, true)
    }

    /// Declare a write of `item` that only happens on some paths.
    pub fn writes_if(self, item: ItemKey) -> Self {
        self.access(item, AccessMode::Write, true)
    }

    fn access(mut self, item: ItemKey, mode: AccessMode, conditional: bool) -> Self {
        self.entry().accesses.push(StaticAccess {
            item,
            mode,
            conditional,
        });
        self
    }
}

/// A whole-program model: the input to the static analyser.
#[derive(Debug, Clone, Default)]
pub struct ProgramModel {
    procedures: BTreeMap<String, ProcedureModel>,
}

impl ProgramModel {
    /// An empty model.
    pub fn new() -> ProgramModel {
        ProgramModel::default()
    }

    /// Add (or extend) the model of procedure `name`.
    pub fn procedure(&mut self, name: &str) -> ProcedureBuilder<'_> {
        // Ensure the procedure exists even if the builder is dropped
        // without declaring anything.
        self.procedures
            .entry(name.to_string())
            .or_insert_with(|| ProcedureModel {
                name: name.to_string(),
                ..ProcedureModel::default()
            });
        ProcedureBuilder {
            model: self,
            name: name.to_string(),
        }
    }

    /// Infer a program model from a dynamic trace: call edges are taken
    /// from adjacent shadow-stack frames, and each access is attributed to
    /// the innermost frame of its backtrace. Accesses observed dynamically
    /// are by definition unconditional in the inferred model.
    pub fn from_trace(trace: &Trace) -> ProgramModel {
        let mut model = ProgramModel::new();
        for record in trace.records() {
            // Call edges between adjacent frames.
            for pair in record.backtrace.windows(2) {
                model.procedure(&pair[0]);
                model.procedure(&pair[1]);
                model
                    .procedures
                    .get_mut(&pair[0])
                    .expect("caller just inserted")
                    .calls
                    .insert(pair[1].clone());
            }
            let Some(innermost) = record.backtrace.last() else {
                continue;
            };
            let item = ItemKey::from_record(record);
            model.procedure(innermost);
            let entry = model
                .procedures
                .get_mut(innermost)
                .expect("procedure just inserted");
            let already = entry
                .accesses
                .iter()
                .any(|a| a.item == item && a.mode == record.mode);
            if !already {
                entry.accesses.push(StaticAccess {
                    item,
                    mode: record.mode,
                    conditional: false,
                });
            }
        }
        model
    }

    /// Merge another model into this one (union of call edges and access
    /// sites) — the static analogue of [`Trace::merge`].
    pub fn merge(&mut self, other: &ProgramModel) {
        for (name, proc_model) in &other.procedures {
            let entry = self
                .procedures
                .entry(name.clone())
                .or_insert_with(|| ProcedureModel {
                    name: name.clone(),
                    ..ProcedureModel::default()
                });
            entry.calls.extend(proc_model.calls.iter().cloned());
            for access in &proc_model.accesses {
                if !entry.accesses.contains(access) {
                    entry.accesses.push(access.clone());
                }
            }
        }
    }

    /// Names of all modelled procedures.
    pub fn procedure_names(&self) -> Vec<String> {
        self.procedures.keys().cloned().collect()
    }

    /// Is `name` modelled?
    pub fn contains(&self, name: &str) -> bool {
        self.procedures.contains_key(name)
    }

    /// The model of one procedure, if present.
    pub fn get(&self, name: &str) -> Option<&ProcedureModel> {
        self.procedures.get(name)
    }

    /// All procedures reachable from `root` through the call graph
    /// (including `root` itself). Handles recursion and diamonds; callees
    /// with no model are ignored here (see [`ProgramModel::unresolved_calls`]).
    pub fn reachable_from(&self, root: &str) -> BTreeSet<String> {
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::new();
        if self.procedures.contains_key(root) {
            seen.insert(root.to_string());
            queue.push_back(root.to_string());
        }
        while let Some(current) = queue.pop_front() {
            if let Some(proc_model) = self.procedures.get(&current) {
                for callee in &proc_model.calls {
                    if self.procedures.contains_key(callee) && seen.insert(callee.clone()) {
                        queue.push_back(callee.clone());
                    }
                }
            }
        }
        seen
    }

    /// Call targets reachable from `root` for which no model exists — the
    /// analogue of calls into binary-only libraries, where the paper notes
    /// tagging "may not even be possible". The analyser cannot bound what
    /// these touch, so the programmer must treat their presence as a
    /// warning that the static footprint may be *incomplete*.
    pub fn unresolved_calls(&self, root: &str) -> BTreeSet<String> {
        let mut unresolved = BTreeSet::new();
        for name in self.reachable_from(root) {
            if let Some(proc_model) = self.procedures.get(&name) {
                for callee in &proc_model.calls {
                    if !self.procedures.contains_key(callee) {
                        unresolved.insert(callee.clone());
                    }
                }
            }
        }
        unresolved
    }

    /// The conservative (exhaustive) footprint of `root` and everything it
    /// can reach: every item any reachable procedure may touch on any path,
    /// with the union of access modes. `access_count` counts static access
    /// *sites*, not dynamic events, and `allocation_site` is always `None`
    /// (static analysis has no run-time allocation backtraces — one of the
    /// things cb-log adds).
    pub fn static_footprint(&self, root: &str) -> Vec<FootprintEntry> {
        let mut agg: BTreeMap<ItemKey, (bool, bool, usize)> = BTreeMap::new();
        for name in self.reachable_from(root) {
            let Some(proc_model) = self.procedures.get(&name) else {
                continue;
            };
            for access in &proc_model.accesses {
                let entry = agg.entry(access.item.clone()).or_insert((false, false, 0));
                match access.mode {
                    AccessMode::Read => entry.0 = true,
                    AccessMode::Write => entry.1 = true,
                }
                entry.2 += 1;
            }
        }
        agg.into_iter()
            .map(|(item, (read, written, access_count))| FootprintEntry {
                item,
                read,
                written,
                access_count,
                allocation_site: None,
            })
            .collect()
    }

    /// The static policy suggestion for a compartment rooted at `root`: the
    /// exhaustive set of grants under which no reachable code path can hit a
    /// protection violation (§7).
    pub fn suggest_policy(&self, root: &str) -> SuggestedPolicy {
        let mut suggestion = SuggestedPolicy::default();
        for entry in self.static_footprint(root) {
            match &entry.item {
                ItemKey::Alloc { tag, .. } => {
                    let prot = entry.required_prot();
                    suggestion
                        .tags
                        .entry(*tag)
                        .and_modify(|existing| {
                            if !existing.allows_delegation_of(prot) {
                                *existing = prot;
                            }
                        })
                        .or_insert(prot);
                }
                ItemKey::Global(name) => {
                    suggestion.globals.insert(name.clone());
                }
                ItemKey::Fd(name) => {
                    suggestion.fds.insert(name.clone());
                }
            }
        }
        suggestion
    }

    /// Compare the static footprint of `root` against the dynamic footprint
    /// cb-analyze derives from `trace` for the same procedure.
    pub fn compare_with_trace(&self, root: &str, trace: &Trace) -> StaticDynamicComparison {
        let static_items: BTreeSet<ItemKey> = self
            .static_footprint(root)
            .into_iter()
            .map(|e| e.item)
            .collect();
        let dynamic_items: BTreeSet<ItemKey> = trace
            .footprint_of(root)
            .into_iter()
            .map(|e| e.item)
            .collect();
        let static_only = static_items
            .difference(&dynamic_items)
            .cloned()
            .collect::<BTreeSet<_>>();
        let dynamic_only = dynamic_items
            .difference(&static_items)
            .cloned()
            .collect::<BTreeSet<_>>();
        StaticDynamicComparison {
            root: root.to_string(),
            static_items,
            dynamic_items,
            static_only,
            dynamic_only,
        }
    }
}

/// The result of [`ProgramModel::compare_with_trace`]: how the exhaustive
/// static grant set relates to the grants one innocuous dynamic run needed.
#[derive(Debug, Clone)]
pub struct StaticDynamicComparison {
    /// The compared root procedure.
    pub root: String,
    /// Items the static analysis would grant.
    pub static_items: BTreeSet<ItemKey>,
    /// Items the dynamic run actually touched (under `root`).
    pub dynamic_items: BTreeSet<ItemKey>,
    /// Items only static analysis grants — the over-approximation the paper
    /// warns about.
    pub static_only: BTreeSet<ItemKey>,
    /// Items the dynamic run touched that the model misses — non-empty only
    /// when the model is unsound for this workload (e.g. hand-written and
    /// incomplete).
    pub dynamic_only: BTreeSet<ItemKey>,
}

impl StaticDynamicComparison {
    /// Does the static grant set cover everything the dynamic run needed?
    /// (The §7 claim: static analysis yields a superset.)
    pub fn is_superset(&self) -> bool {
        self.dynamic_only.is_empty()
    }

    /// How many extra items static analysis grants, as a fraction of the
    /// dynamically required set (0.0 = identical; 1.0 = twice as many).
    pub fn excess_ratio(&self) -> f64 {
        if self.dynamic_items.is_empty() {
            if self.static_only.is_empty() {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.static_only.len() as f64 / self.dynamic_items.len() as f64
        }
    }

    /// The subset of `sensitive` items that static analysis would grant but
    /// the innocuous dynamic run never touched — precisely the privileges
    /// "for sensitive data that could allow an exploit to leak that data"
    /// (§7), and the reason the paper prefers run-time analysis.
    pub fn excess_sensitive(&self, sensitive: &[ItemKey]) -> Vec<ItemKey> {
        sensitive
            .iter()
            .filter(|item| self.static_only.contains(*item))
            .cloned()
            .collect()
    }

    /// Render the comparison as a short report for the programmer.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "static vs. dynamic footprint for `{}`\n",
            self.root
        ));
        out.push_str(&format!(
            "  static grants:  {:>4} items\n  dynamic needs:  {:>4} items\n",
            self.static_items.len(),
            self.dynamic_items.len()
        ));
        out.push_str(&format!(
            "  over-approximation: {} extra item(s) ({:.0}% excess)\n",
            self.static_only.len(),
            self.excess_ratio() * 100.0
        ));
        for item in &self.static_only {
            out.push_str(&format!("    + {item} (never touched dynamically)\n"));
        }
        if !self.dynamic_only.is_empty() {
            out.push_str("  WARNING: the model misses dynamically observed items:\n");
            for item in &self.dynamic_only {
                out.push_str(&format!("    - {item}\n"));
            }
        }
        out
    }
}

impl ItemKey {
    /// Map a cb-log record onto the item key the analyser uses. Mirrors the
    /// private conversion in [`crate::analyze`] but is exposed here so the
    /// static analyser (and external callers building models) can align
    /// items with dynamic traces.
    pub fn from_record(record: &crate::log::TraceRecord) -> ItemKey {
        use wedge_core::MemRegion;
        match &record.region {
            MemRegion::Tagged { tag, alloc_offset } => ItemKey::Alloc {
                tag: *tag,
                alloc_offset: *alloc_offset,
            },
            MemRegion::Global { name } => ItemKey::Global(name.clone()),
            MemRegion::Fd { name, .. } => ItemKey::Fd(name.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::TraceRecord;
    use std::collections::HashMap;
    use wedge_core::{CompartmentId, MemRegion, Tag};

    fn heap(tag: u64, off: usize) -> ItemKey {
        ItemKey::Alloc {
            tag: Tag(tag),
            alloc_offset: off,
        }
    }

    fn global(name: &str) -> ItemKey {
        ItemKey::Global(name.to_string())
    }

    /// A model shaped like the paper's POP3 example: a client handler that
    /// parses commands and calls into login / retrieval helpers, with the
    /// password database only touched on the authentication path.
    fn pop3_model() -> ProgramModel {
        let mut model = ProgramModel::new();
        model
            .procedure("client_handler")
            .calls("parse_command")
            .calls("do_login")
            .calls("do_retr")
            .reads(heap(1, 0)) // network buffer
            .writes(heap(1, 0));
        model.procedure("parse_command").reads(heap(1, 0));
        model
            .procedure("do_login")
            .reads_if(global("passwd_db"))
            .writes(global("uid"));
        model
            .procedure("do_retr")
            .reads(global("uid"))
            .reads_if(heap(2, 0)); // mailbox
        model
    }

    #[test]
    fn reachability_includes_transitive_callees() {
        let model = pop3_model();
        let reach = model.reachable_from("client_handler");
        assert!(reach.contains("client_handler"));
        assert!(reach.contains("parse_command"));
        assert!(reach.contains("do_login"));
        assert!(reach.contains("do_retr"));
        assert_eq!(model.reachable_from("parse_command").len(), 1);
        assert!(model.reachable_from("unknown").is_empty());
    }

    #[test]
    fn recursion_and_diamonds_terminate() {
        let mut model = ProgramModel::new();
        model.procedure("a").calls("b").calls("c");
        model.procedure("b").calls("d");
        model.procedure("c").calls("d");
        model.procedure("d").calls("a").reads(global("g"));
        let reach = model.reachable_from("a");
        assert_eq!(reach.len(), 4);
        let fp = model.static_footprint("a");
        assert_eq!(fp.len(), 1);
        assert_eq!(fp[0].item, global("g"));
    }

    #[test]
    fn unresolved_callees_are_reported() {
        let mut model = ProgramModel::new();
        model
            .procedure("main")
            .calls("helper")
            .calls("libssl_internal");
        model.procedure("helper").calls("libz_inflate");
        let unresolved = model.unresolved_calls("main");
        assert!(unresolved.contains("libssl_internal"));
        assert!(unresolved.contains("libz_inflate"));
        assert_eq!(unresolved.len(), 2);
    }

    #[test]
    fn footprint_unions_modes_and_counts_sites() {
        let model = pop3_model();
        let fp = model.static_footprint("client_handler");
        let net = fp.iter().find(|e| e.item == heap(1, 0)).unwrap();
        assert!(net.read && net.written);
        assert_eq!(net.access_count, 3); // read+write in handler, read in parser
        let uid = fp.iter().find(|e| e.item == global("uid")).unwrap();
        assert!(uid.read && uid.written);
        // Conditional accesses are still included: that is what makes the
        // static result exhaustive.
        assert!(fp.iter().any(|e| e.item == global("passwd_db")));
        assert!(fp.iter().any(|e| e.item == heap(2, 0)));
    }

    #[test]
    fn suggest_policy_covers_tags_globals_and_escalates_prot() {
        let model = pop3_model();
        let suggestion = model.suggest_policy("client_handler");
        assert_eq!(
            suggestion.tags.get(&Tag(1)).copied(),
            Some(wedge_core::MemProt::ReadWrite)
        );
        assert_eq!(
            suggestion.tags.get(&Tag(2)).copied(),
            Some(wedge_core::MemProt::Read)
        );
        assert!(suggestion.globals.contains("passwd_db"));
        assert!(suggestion.globals.contains("uid"));
    }

    fn record(backtrace: &[&str], item: &ItemKey, mode: AccessMode) -> TraceRecord {
        let region = match item {
            ItemKey::Alloc { tag, alloc_offset } => MemRegion::Tagged {
                tag: *tag,
                alloc_offset: *alloc_offset,
            },
            ItemKey::Global(name) => MemRegion::Global { name: name.clone() },
            ItemKey::Fd(name) => MemRegion::Fd {
                fd: wedge_core::FdId(1),
                name: name.clone(),
            },
        };
        TraceRecord {
            compartment: CompartmentId(7),
            compartment_name: "worker".to_string(),
            region,
            offset: 0,
            len: 4,
            mode,
            allowed: true,
            backtrace: backtrace.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// A dynamic run of the POP3 model in which the user never logs in, so
    /// the password database and mailbox are never touched.
    fn innocuous_trace() -> Trace {
        let records = vec![
            record(&["client_handler"], &heap(1, 0), AccessMode::Write),
            record(
                &["client_handler", "parse_command"],
                &heap(1, 0),
                AccessMode::Read,
            ),
            record(
                &["client_handler", "do_retr"],
                &global("uid"),
                AccessMode::Read,
            ),
        ];
        Trace::from_parts(records, HashMap::new(), Vec::new())
    }

    #[test]
    fn static_is_superset_of_dynamic_and_flags_sensitive_excess() {
        let model = pop3_model();
        let trace = innocuous_trace();
        let cmp = model.compare_with_trace("client_handler", &trace);
        assert!(cmp.is_superset());
        assert!(cmp.static_only.contains(&global("passwd_db")));
        assert!(cmp.static_only.contains(&heap(2, 0)));
        assert!(cmp.excess_ratio() > 0.0);

        let sensitive = [global("passwd_db")];
        let excess = cmp.excess_sensitive(&sensitive);
        assert_eq!(excess, vec![global("passwd_db")]);

        let report = cmp.render();
        assert!(report.contains("passwd_db"));
        assert!(report.contains("over-approximation"));
    }

    #[test]
    fn incomplete_handwritten_model_is_detected() {
        // A model that forgot parse_command's read of the network buffer
        // entirely, and the dynamic run touches a global it never mentions.
        let mut model = ProgramModel::new();
        model.procedure("client_handler").calls("parse_command");
        let trace = innocuous_trace();
        let cmp = model.compare_with_trace("client_handler", &trace);
        assert!(!cmp.is_superset());
        assert!(cmp.dynamic_only.contains(&global("uid")));
        assert!(cmp.render().contains("WARNING"));
    }

    #[test]
    fn from_trace_reconstructs_call_edges_and_accesses() {
        let trace = innocuous_trace();
        let model = ProgramModel::from_trace(&trace);
        assert!(model.contains("client_handler"));
        assert!(model.contains("parse_command"));
        assert!(model.contains("do_retr"));
        assert!(model
            .get("client_handler")
            .unwrap()
            .calls()
            .contains("parse_command"));
        // The inferred model's static footprint covers the dynamic run.
        let cmp = model.compare_with_trace("client_handler", &trace);
        assert!(cmp.is_superset());
        assert_eq!(cmp.excess_ratio(), 0.0);
    }

    #[test]
    fn merge_unions_models() {
        let mut login_run = ProgramModel::new();
        login_run
            .procedure("client_handler")
            .calls("do_login")
            .reads(heap(1, 0));
        login_run.procedure("do_login").reads(global("passwd_db"));

        let mut retr_run = ProgramModel::new();
        retr_run
            .procedure("client_handler")
            .calls("do_retr")
            .reads(heap(1, 0));
        retr_run.procedure("do_retr").reads(heap(2, 0));

        let mut merged = login_run.clone();
        merged.merge(&retr_run);
        let fp = merged.static_footprint("client_handler");
        assert!(fp.iter().any(|e| e.item == global("passwd_db")));
        assert!(fp.iter().any(|e| e.item == heap(2, 0)));
        // Merging is idempotent for duplicate access sites.
        let before = merged.static_footprint("client_handler");
        merged.merge(&retr_run);
        assert_eq!(merged.static_footprint("client_handler"), before);
    }

    #[test]
    fn excess_ratio_edge_cases() {
        let model = ProgramModel::new();
        let empty = Trace::from_parts(Vec::new(), HashMap::new(), Vec::new());
        let cmp = model.compare_with_trace("nothing", &empty);
        assert_eq!(cmp.excess_ratio(), 0.0);

        let mut model2 = ProgramModel::new();
        model2.procedure("f").reads(global("g"));
        let cmp2 = model2.compare_with_trace("f", &empty);
        assert!(cmp2.excess_ratio().is_infinite());
    }
}
