//! A stand-in for running an application "under Pin with no
//! instrumentation" (Figure 9's middle bar).
//!
//! Pin rewrites every fetched basic block once and thereafter executes the
//! cached instrumented version; its overhead is therefore a per-event tax
//! much smaller than cb-log's (which also materialises trace records). The
//! [`PinSim`] sink models that tax: it receives every instrumentation event
//! the kernel emits and does a small, constant amount of work per event
//! (mixing the event into a running checksum) without storing anything.
//! Installing `PinSim` is the reproduction's "Pin-only" configuration;
//! installing [`crate::CbLog`] is the "Crowbar" configuration; installing
//! nothing is "native".

use std::sync::atomic::{AtomicU64, Ordering};

use wedge_core::{AccessSink, AllocEvent, CallEvent, MemAccessEvent, ViolationEvent};

/// The Pin-only instrumentation overhead model.
#[derive(Debug, Default)]
pub struct PinSim {
    checksum: AtomicU64,
    events: AtomicU64,
}

impl PinSim {
    /// Create a fresh sink.
    pub fn new() -> Self {
        PinSim::default()
    }

    fn charge(&self, value: u64) {
        // A handful of arithmetic operations per event: the analogue of the
        // jump into Pin's code cache and back.
        let mut x = self.checksum.load(Ordering::Relaxed) ^ value;
        x = x.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(17);
        self.checksum.store(x, Ordering::Relaxed);
        self.events.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of events charged so far.
    pub fn events(&self) -> u64 {
        self.events.load(Ordering::Relaxed)
    }

    /// The accumulated checksum (read by benches so the work is not
    /// optimised away).
    pub fn checksum(&self) -> u64 {
        self.checksum.load(Ordering::Relaxed)
    }
}

impl AccessSink for PinSim {
    fn on_access(&self, event: &MemAccessEvent) {
        self.charge(event.offset as u64 ^ (event.len as u64) << 16);
    }
    fn on_alloc(&self, event: &AllocEvent) {
        self.charge(event.size as u64);
    }
    fn on_call(&self, event: &CallEvent) {
        self.charge(event.function.len() as u64);
    }
    fn on_violation(&self, _event: &ViolationEvent) {
        self.charge(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use wedge_core::Wedge;

    #[test]
    fn charges_per_event_without_storing_records() {
        let wedge = Wedge::init();
        let pin = Arc::new(PinSim::new());
        wedge.kernel().set_tracer(Some(pin.clone()));
        let root = wedge.root();
        let tag = root.tag_new().unwrap();
        let buf = root.smalloc_init(tag, b"abc").unwrap();
        for _ in 0..10 {
            root.read_all(&buf).unwrap();
        }
        assert!(pin.events() >= 11, "one alloc write + ten reads");
        assert_ne!(pin.checksum(), 0);
    }
}
