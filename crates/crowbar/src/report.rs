//! Human-readable rendering of cb-analyze results (what the paper's
//! programmer reads when deciding grants).

use crate::analyze::{FootprintEntry, SuggestedPolicy};

/// Render a Query-1 footprint as an aligned text table.
pub fn render_footprint(procedure: &str, footprint: &[FootprintEntry]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "memory footprint of `{procedure}` and its descendants ({} items)\n",
        footprint.len()
    ));
    out.push_str(&format!(
        "{:<40} {:>6} {:>6} {:>8}  {}\n",
        "item", "read", "write", "accesses", "allocated at"
    ));
    for entry in footprint {
        out.push_str(&format!(
            "{:<40} {:>6} {:>6} {:>8}  {}\n",
            entry.item.to_string(),
            if entry.read { "yes" } else { "-" },
            if entry.written { "yes" } else { "-" },
            entry.access_count,
            entry.allocation_site.as_deref().unwrap_or("-"),
        ));
    }
    out
}

/// Render a policy suggestion as the `sc_*` calls the programmer would
/// write.
pub fn render_suggestion(compartment: &str, suggestion: &SuggestedPolicy) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "suggested grants for compartment `{compartment}`:\n"
    ));
    for (tag, prot) in &suggestion.tags {
        out.push_str(&format!("  sc_mem_add(sc, {tag}, {prot:?});\n"));
    }
    for global in &suggestion.globals {
        out.push_str(&format!(
            "  // global `{global}`: consider BOUNDARY_VAR tagging\n"
        ));
    }
    for fd in &suggestion.fds {
        out.push_str(&format!("  sc_fd_add(sc, open(\"{fd}\"), ...);\n"));
    }
    if suggestion.tags.is_empty() && suggestion.globals.is_empty() && suggestion.fds.is_empty() {
        out.push_str("  (no grants required)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::ItemKey;
    use wedge_core::{MemProt, Tag};

    #[test]
    fn footprint_rendering_mentions_items_and_modes() {
        let fp = vec![FootprintEntry {
            item: ItemKey::Alloc {
                tag: Tag(4),
                alloc_offset: 16,
            },
            read: true,
            written: false,
            access_count: 3,
            allocation_site: Some("main > setup".to_string()),
        }];
        let text = render_footprint("handle_request", &fp);
        assert!(text.contains("handle_request"));
        assert!(text.contains("heap tag4+16"));
        assert!(text.contains("main > setup"));
    }

    #[test]
    fn suggestion_rendering_produces_sc_calls() {
        let mut suggestion = SuggestedPolicy::default();
        suggestion.tags.insert(Tag(2), MemProt::Read);
        suggestion.globals.insert("ssl_ctx".to_string());
        suggestion.fds.insert("/etc/passwd".to_string());
        let text = render_suggestion("worker", &suggestion);
        assert!(text.contains("sc_mem_add(sc, tag2, Read)"));
        assert!(text.contains("ssl_ctx"));
        assert!(text.contains("/etc/passwd"));

        let empty = render_suggestion("idle", &SuggestedPolicy::default());
        assert!(empty.contains("no grants required"));
    }
}
