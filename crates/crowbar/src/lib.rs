//! # crowbar — run-time partitioning assistance (cb-log and cb-analyze)
//!
//! Crowbar is the second half of the Wedge system: "a pair of tools that
//! analyzes the run-time memory access behavior of an application, and
//! summarizes for the programmer which code requires which memory access
//! privileges" (§3.4). Without it, default-deny compartments are impractical
//! to retrofit onto legacy code — the paper's Apache partitioning alone
//! required identifying 222 heap objects and 389 globals.
//!
//! The paper's `cb-log` instruments binaries with Pin; here the simulated
//! kernel already mediates every tagged-memory, global and descriptor
//! access, so [`CbLog`] simply plugs into the [`wedge_core::AccessSink`]
//! hook and records, for every access: the compartment, the memory item,
//! the access mode, and a **backtrace** reconstructed from a shadow call
//! stack maintained from `SthreadCtx::trace_fn` events (the analogue of
//! Pin's frame-pointer walk).
//!
//! [`analyze`] is `cb-analyze`: the three query types of §3.4 —
//!
//! 1. *Given a procedure, what memory items do it and all its descendants
//!    access, and how?* → [`analyze::Trace::footprint_of`]
//! 2. *Given a list of data items, which procedures use any of them?* →
//!    [`analyze::Trace::users_of`]
//! 3. *Given a procedure known to generate sensitive data, where do it and
//!    its descendants write?* → [`analyze::Trace::written_by`]
//!
//! plus [`analyze::Trace::suggest_policy`], which turns a footprint into a
//! ready-to-apply [`wedge_core::SecurityPolicy`] suggestion — the workflow
//! the paper describes for deciding an sthread's grants. Traces from
//! multiple innocuous runs can be merged ([`analyze::Trace::merge`]) to
//! broaden coverage, and the sthread *emulation* mode of the kernel lets a
//! whole run complete while violations are only logged (§3.4).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analyze;
pub mod log;
pub mod pinsim;
pub mod report;
pub mod static_analysis;

pub use analyze::{FootprintEntry, ItemKey, SuggestedPolicy, Trace};
pub use log::{AllocationSite, CbLog, TraceRecord};
pub use pinsim::PinSim;
pub use report::render_footprint;
pub use static_analysis::{ProgramModel, StaticAccess, StaticDynamicComparison};
