//! `cb-analyze`: query a captured trace for the information a programmer
//! needs when carving an application into least-privilege compartments.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use wedge_core::{AccessMode, MemProt, MemRegion, SecurityPolicy, Tag, ViolationEvent};

use crate::log::{AllocationSite, TraceRecord};

/// A memory item as the programmer thinks of it: a heap allocation
/// (identified by tag + allocation offset), a global variable, or a file
/// descriptor's backing object.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ItemKey {
    /// A tagged (or private) heap allocation.
    Alloc {
        /// The tag of the segment.
        tag: Tag,
        /// The allocation's payload offset within the segment.
        alloc_offset: usize,
    },
    /// A snapshot global variable.
    Global(String),
    /// A file-descriptor backing object, by name.
    Fd(String),
}

impl ItemKey {
    fn from_region(region: &MemRegion) -> ItemKey {
        match region {
            MemRegion::Tagged { tag, alloc_offset } => ItemKey::Alloc {
                tag: *tag,
                alloc_offset: *alloc_offset,
            },
            MemRegion::Global { name } => ItemKey::Global(name.clone()),
            MemRegion::Fd { name, .. } => ItemKey::Fd(name.clone()),
        }
    }
}

impl std::fmt::Display for ItemKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ItemKey::Alloc { tag, alloc_offset } => write!(f, "heap {tag}+{alloc_offset}"),
            ItemKey::Global(name) => write!(f, "global {name}"),
            ItemKey::Fd(name) => write!(f, "fd {name}"),
        }
    }
}

/// One row of a Query-1 result: a memory item, how it was accessed, and
/// where it was allocated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FootprintEntry {
    /// The memory item.
    pub item: ItemKey,
    /// Was it read?
    pub read: bool,
    /// Was it written?
    pub written: bool,
    /// Number of accesses observed.
    pub access_count: usize,
    /// Allocation-site backtrace, when the item is a heap allocation cb-log
    /// saw being allocated.
    pub allocation_site: Option<String>,
}

impl FootprintEntry {
    /// The minimal memory protection that would satisfy the observed
    /// accesses.
    pub fn required_prot(&self) -> MemProt {
        if self.written {
            MemProt::ReadWrite
        } else {
            MemProt::Read
        }
    }
}

/// A policy suggestion derived from a footprint (Query 1) — the set of
/// grants an sthread running the queried procedure would need.
#[derive(Debug, Clone, Default)]
pub struct SuggestedPolicy {
    /// Required tag grants.
    pub tags: BTreeMap<Tag, MemProt>,
    /// Globals the code touches (candidates for `BOUNDARY_VAR` tagging).
    pub globals: BTreeSet<String>,
    /// Descriptor-backed objects the code touches, by name.
    pub fds: BTreeSet<String>,
}

impl SuggestedPolicy {
    /// Convert the tag grants into a [`SecurityPolicy`] skeleton (globals
    /// and descriptors still need programmer decisions, exactly as the
    /// paper's workflow leaves them to the programmer).
    pub fn to_security_policy(&self) -> SecurityPolicy {
        let mut policy = SecurityPolicy::deny_all();
        for (tag, prot) in &self.tags {
            policy.sc_mem_add(*tag, *prot);
        }
        policy
    }
}

/// An immutable, queryable snapshot of a cb-log run (or of several merged
/// runs).
#[derive(Debug, Clone, Default)]
pub struct Trace {
    records: Vec<TraceRecord>,
    allocations: HashMap<(Tag, usize), AllocationSite>,
    violations: Vec<ViolationEvent>,
}

impl Trace {
    /// Build a trace from raw cb-log state (used by [`crate::CbLog::snapshot`]).
    pub fn from_parts(
        records: Vec<TraceRecord>,
        allocations: HashMap<(Tag, usize), AllocationSite>,
        violations: Vec<ViolationEvent>,
    ) -> Trace {
        Trace {
            records,
            allocations,
            violations,
        }
    }

    /// All raw records.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// All observed violations.
    pub fn violations(&self) -> &[ViolationEvent] {
        &self.violations
    }

    /// Number of records in the trace.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Is the trace empty?
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Merge another trace into this one ("running the application on
    /// diverse innocuous workloads ... and running cb-analyze on the
    /// aggregation of these traces", §3.4).
    pub fn merge(&mut self, other: &Trace) {
        self.records.extend(other.records.iter().cloned());
        for (k, v) in &other.allocations {
            self.allocations.entry(*k).or_insert_with(|| v.clone());
        }
        self.violations.extend(other.violations.iter().cloned());
    }

    fn record_is_under(record: &TraceRecord, procedure: &str) -> bool {
        record.backtrace.iter().any(|f| f == procedure)
    }

    /// **Query 1**: given a procedure, what memory items do it *and all its
    /// descendants in the execution call graph* access, and with what modes?
    pub fn footprint_of(&self, procedure: &str) -> Vec<FootprintEntry> {
        let mut agg: BTreeMap<ItemKey, (bool, bool, usize)> = BTreeMap::new();
        for record in &self.records {
            if !Self::record_is_under(record, procedure) {
                continue;
            }
            let key = ItemKey::from_region(&record.region);
            let entry = agg.entry(key).or_insert((false, false, 0));
            match record.mode {
                AccessMode::Read => entry.0 = true,
                AccessMode::Write => entry.1 = true,
            }
            entry.2 += 1;
        }
        agg.into_iter()
            .map(|(item, (read, written, access_count))| {
                let allocation_site = match &item {
                    ItemKey::Alloc { tag, alloc_offset } => self
                        .allocations
                        .get(&(*tag, *alloc_offset))
                        .map(|s| s.site_label()),
                    _ => None,
                };
                FootprintEntry {
                    item,
                    read,
                    written,
                    access_count,
                    allocation_site,
                }
            })
            .collect()
    }

    /// **Query 2**: given a list of data items, which procedures use any of
    /// them? Returns the set of function names appearing in the backtraces
    /// of accesses to those items.
    pub fn users_of(&self, items: &[ItemKey]) -> BTreeSet<String> {
        let wanted: BTreeSet<&ItemKey> = items.iter().collect();
        let mut users = BTreeSet::new();
        for record in &self.records {
            let key = ItemKey::from_region(&record.region);
            if wanted.contains(&key) {
                for frame in &record.backtrace {
                    users.insert(frame.clone());
                }
                if record.backtrace.is_empty() {
                    users.insert(format!("<{}>", record.compartment_name));
                }
            }
        }
        users
    }

    /// **Query 3**: given a procedure known to generate sensitive data,
    /// where do it and its descendants *write*? The result feeds Query 2
    /// ("which procedures use these items?") when deciding what belongs
    /// inside a callgate.
    pub fn written_by(&self, procedure: &str) -> Vec<ItemKey> {
        let mut out = BTreeSet::new();
        for record in &self.records {
            if record.mode == AccessMode::Write && Self::record_is_under(record, procedure) {
                out.insert(ItemKey::from_region(&record.region));
            }
        }
        out.into_iter().collect()
    }

    /// Derive a grant suggestion for an sthread that will run `procedure`:
    /// the tags (with minimal protections), globals and descriptors its
    /// observed execution needed.
    pub fn suggest_policy(&self, procedure: &str) -> SuggestedPolicy {
        let mut suggestion = SuggestedPolicy::default();
        for entry in self.footprint_of(procedure) {
            match &entry.item {
                ItemKey::Alloc { tag, .. } => {
                    let prot = entry.required_prot();
                    suggestion
                        .tags
                        .entry(*tag)
                        .and_modify(|existing| {
                            if matches!(prot, MemProt::ReadWrite) {
                                *existing = MemProt::ReadWrite;
                            }
                        })
                        .or_insert(prot);
                }
                ItemKey::Global(name) => {
                    suggestion.globals.insert(name.clone());
                }
                ItemKey::Fd(name) => {
                    suggestion.fds.insert(name.clone());
                }
            }
        }
        suggestion
    }

    /// Grant suggestion for everything a *compartment* (by name) touched —
    /// used with the emulation library to learn "all protection violations
    /// that occur during a complete program execution".
    pub fn suggest_policy_for_compartment(&self, compartment_name: &str) -> SuggestedPolicy {
        let mut suggestion = SuggestedPolicy::default();
        for record in &self.records {
            if record.compartment_name != compartment_name {
                continue;
            }
            match ItemKey::from_region(&record.region) {
                ItemKey::Alloc { tag, .. } => {
                    let prot = if record.mode == AccessMode::Write {
                        MemProt::ReadWrite
                    } else {
                        MemProt::Read
                    };
                    suggestion
                        .tags
                        .entry(tag)
                        .and_modify(|existing| {
                            if matches!(prot, MemProt::ReadWrite) {
                                *existing = MemProt::ReadWrite;
                            }
                        })
                        .or_insert(prot);
                }
                ItemKey::Global(name) => {
                    suggestion.globals.insert(name);
                }
                ItemKey::Fd(name) => {
                    suggestion.fds.insert(name);
                }
            }
        }
        suggestion
    }

    /// Items whose accesses were denied (or would have been, in emulation
    /// mode) — the "what does this sthread still need?" report used after
    /// refactoring (§3.4).
    pub fn violation_items(&self, compartment_name: &str) -> Vec<ItemKey> {
        let mut out = BTreeSet::new();
        for v in &self.violations {
            if v.compartment_name == compartment_name {
                out.insert(ItemKey::from_region(&v.region));
            }
        }
        out.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CbLog;
    use wedge_core::{SecurityPolicy, Wedge};

    /// Build a small trace: `login` reads the password DB and writes the
    /// session state; `serve_page` reads the session state only.
    fn sample_trace() -> (Trace, wedge_core::SBuf, wedge_core::SBuf) {
        let wedge = Wedge::init();
        let log = CbLog::new();
        log.install(wedge.kernel());
        let root = wedge.root();
        let db_tag = root.tag_new().unwrap();
        let sess_tag = root.tag_new().unwrap();
        let passwords = root.smalloc_init(db_tag, b"alice:pw").unwrap();
        let session = root.smalloc(16, sess_tag).unwrap();
        {
            let _f = root.trace_fn("login");
            let _inner = root.trace_fn("check_password");
            root.read_all(&passwords).unwrap();
            root.write(&session, 0, b"uid=7").unwrap();
        }
        {
            let _f = root.trace_fn("serve_page");
            root.read(&session, 0, 5).unwrap();
        }
        (log.snapshot(), passwords, session)
    }

    #[test]
    fn query1_footprint_includes_descendants() {
        let (trace, passwords, session) = sample_trace();
        let fp = trace.footprint_of("login");
        let items: Vec<&ItemKey> = fp.iter().map(|e| &e.item).collect();
        assert!(items.contains(&&ItemKey::Alloc {
            tag: passwords.tag,
            alloc_offset: passwords.offset
        }));
        assert!(items.contains(&&ItemKey::Alloc {
            tag: session.tag,
            alloc_offset: session.offset
        }));
        // The password DB is only read; the session state is written.
        let pw_entry = fp
            .iter()
            .find(|e| matches!(&e.item, ItemKey::Alloc { tag, .. } if *tag == passwords.tag))
            .unwrap();
        assert!(pw_entry.read && !pw_entry.written);
        assert_eq!(pw_entry.required_prot(), MemProt::Read);
        let sess_entry = fp
            .iter()
            .find(|e| matches!(&e.item, ItemKey::Alloc { tag, .. } if *tag == session.tag))
            .unwrap();
        assert!(sess_entry.written);
        assert_eq!(sess_entry.required_prot(), MemProt::ReadWrite);

        // Querying the *descendant* directly also works.
        let fp_inner = trace.footprint_of("check_password");
        assert_eq!(fp_inner.len(), 2);
    }

    #[test]
    fn query2_users_of_finds_both_procedures() {
        let (trace, _passwords, session) = sample_trace();
        let users = trace.users_of(&[ItemKey::Alloc {
            tag: session.tag,
            alloc_offset: session.offset,
        }]);
        assert!(users.contains("login"));
        assert!(users.contains("check_password"));
        assert!(users.contains("serve_page"));
        assert!(!users.contains("unrelated"));
    }

    #[test]
    fn query3_written_by_reports_only_writes() {
        let (trace, passwords, session) = sample_trace();
        let written = trace.written_by("login");
        assert!(written.contains(&ItemKey::Alloc {
            tag: session.tag,
            alloc_offset: session.offset
        }));
        assert!(!written.contains(&ItemKey::Alloc {
            tag: passwords.tag,
            alloc_offset: passwords.offset
        }));
        assert!(trace.written_by("serve_page").is_empty());
    }

    #[test]
    fn suggest_policy_reflects_minimal_protections() {
        let (trace, passwords, session) = sample_trace();
        let suggestion = trace.suggest_policy("login");
        assert_eq!(suggestion.tags.get(&passwords.tag), Some(&MemProt::Read));
        assert_eq!(suggestion.tags.get(&session.tag), Some(&MemProt::ReadWrite));
        let policy = suggestion.to_security_policy();
        assert_eq!(policy.mem_grant(passwords.tag), Some(MemProt::Read));
        assert_eq!(policy.mem_grant(session.tag), Some(MemProt::ReadWrite));
    }

    #[test]
    fn merged_traces_cover_both_runs() {
        let (trace1, _, session) = sample_trace();
        let (trace2, passwords2, _) = sample_trace();
        let mut merged = trace1.clone();
        merged.merge(&trace2);
        assert_eq!(merged.len(), trace1.len() + trace2.len());
        // Items from both runs are visible.
        assert!(!merged
            .users_of(&[ItemKey::Alloc {
                tag: session.tag,
                alloc_offset: session.offset
            }])
            .is_empty());
        assert!(!merged
            .users_of(&[ItemKey::Alloc {
                tag: passwords2.tag,
                alloc_offset: passwords2.offset
            }])
            .is_empty());
    }

    #[test]
    fn violation_items_enumerate_missing_grants() {
        let wedge = Wedge::init();
        let log = CbLog::new();
        log.install(wedge.kernel());
        let root = wedge.root();
        let tag = root.tag_new().unwrap();
        let buf = root.smalloc_init(tag, b"needed-data").unwrap();
        wedge.kernel().set_emulation(true);
        let handle = root
            .sthread_create("worker", &SecurityPolicy::deny_all(), move |ctx| {
                // Emulation mode lets this succeed while logging a violation.
                ctx.read_all(&buf).unwrap();
            })
            .unwrap();
        handle.join().unwrap();
        let trace = log.snapshot();
        let items = trace.violation_items("worker");
        assert_eq!(items.len(), 1);
        assert!(matches!(items[0], ItemKey::Alloc { .. }));
        // The compartment-level suggestion includes the tag it needed.
        let suggestion = trace.suggest_policy_for_compartment("worker");
        assert!(suggestion.tags.contains_key(&tag));
    }

    #[test]
    fn empty_trace_answers_queries_gracefully() {
        let trace = Trace::default();
        assert!(trace.is_empty());
        assert!(trace.footprint_of("anything").is_empty());
        assert!(trace.users_of(&[ItemKey::Global("g".into())]).is_empty());
        assert!(trace.written_by("anything").is_empty());
    }

    #[test]
    fn itemkey_display_is_readable() {
        assert_eq!(
            ItemKey::Alloc {
                tag: Tag(3),
                alloc_offset: 16
            }
            .to_string(),
            "heap tag3+16"
        );
        assert_eq!(ItemKey::Global("cfg".into()).to_string(), "global cfg");
        assert_eq!(
            ItemKey::Fd("/etc/shadow".into()).to_string(),
            "fd /etc/shadow"
        );
    }
}
