//! Property tests for the SSL-like substrate: the MAC'd record layer that the
//! man-in-the-middle defence of §5.1.2 relies on ("Data injected by the
//! attacker will be rejected by the client handler sthread"), and the wire
//! codecs used by the handshake compartments.

use proptest::prelude::*;

use wedge_tls::messages::{ClientHello, ClientKeyExchange, Finished, ServerHello, RANDOM_LEN};
use wedge_tls::{RecordLayer, SessionId, SessionKeys};

fn arb_keys() -> impl Strategy<Value = (Vec<u8>, Vec<u8>)> {
    (
        prop::collection::vec(any::<u8>(), 1..48),
        prop::collection::vec(any::<u8>(), 1..48),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Sealing at one endpoint and opening at the other returns the original
    /// plaintext, for any key material and any message sequence.
    #[test]
    fn record_seal_open_roundtrip(
        (cipher_key, mac_key) in arb_keys(),
        messages in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..256), 1..8),
    ) {
        let mut sender = RecordLayer::new(&cipher_key, &mac_key);
        let mut receiver = RecordLayer::new(&cipher_key, &mac_key);
        for plaintext in &messages {
            let record = sender.seal(plaintext);
            let opened = receiver.open(&record).expect("genuine record opens");
            prop_assert_eq!(&opened, plaintext);
        }
        prop_assert_eq!(sender.sent(), messages.len() as u64);
        prop_assert_eq!(receiver.received(), messages.len() as u64);
    }

    /// Any single-byte corruption of a sealed record — in the sequence
    /// prefix, the ciphertext, or the MAC — is rejected. This is the
    /// integrity property the client-handler compartment depends on.
    #[test]
    fn record_rejects_any_single_byte_corruption(
        (cipher_key, mac_key) in arb_keys(),
        plaintext in prop::collection::vec(any::<u8>(), 0..256),
        corrupt_at in any::<prop::sample::Index>(),
        flip in 1u8..=255,
    ) {
        let mut sender = RecordLayer::new(&cipher_key, &mac_key);
        let mut receiver = RecordLayer::new(&cipher_key, &mac_key);
        let mut record = sender.seal(&plaintext);
        let index = corrupt_at.index(record.len());
        record[index] ^= flip;
        prop_assert!(receiver.open(&record).is_err());
    }

    /// Records cannot be replayed or reordered: each must arrive exactly at
    /// the sequence position it was sealed for.
    #[test]
    fn record_rejects_replay_and_reorder(
        (cipher_key, mac_key) in arb_keys(),
        first in prop::collection::vec(any::<u8>(), 0..64),
        second in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut sender = RecordLayer::new(&cipher_key, &mac_key);
        let mut receiver = RecordLayer::new(&cipher_key, &mac_key);
        let r1 = sender.seal(&first);
        let r2 = sender.seal(&second);

        // Reorder: the second record cannot be opened first.
        prop_assert!(receiver.open(&r2).is_err());

        // In order both open...
        prop_assert_eq!(receiver.open(&r1).expect("first"), first);
        prop_assert_eq!(receiver.open(&r2).expect("second"), second);

        // ...and replaying either afterwards is rejected.
        prop_assert!(receiver.open(&r1).is_err());
        prop_assert!(receiver.open(&r2).is_err());
    }

    /// A record layer resumed at explicit sequence positions (the
    /// ssl_read/ssl_write callgates persist these in tagged memory between
    /// invocations) interoperates with a continuously used peer.
    #[test]
    fn resumed_record_layer_continues_the_stream(
        (cipher_key, mac_key) in arb_keys(),
        messages in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 2..6),
    ) {
        let mut sender = RecordLayer::new(&cipher_key, &mac_key);
        for (opened, plaintext) in messages.iter().enumerate() {
            let record = sender.seal(plaintext);
            // Each open happens in a freshly resumed layer, as a short-lived
            // callgate activation would do.
            let mut gate = RecordLayer::resume(&cipher_key, &mac_key, 0, opened as u64);
            prop_assert_eq!(&gate.open(&record).expect("opens"), plaintext);
        }
    }

    /// Handshake message codecs round-trip and never panic on truncation.
    #[test]
    fn handshake_codecs_roundtrip_and_reject_truncation(
        client_random in any::<[u8; RANDOM_LEN]>(),
        server_random in any::<[u8; RANDOM_LEN]>(),
        session_bytes in any::<[u8; 16]>(),
        resumed in any::<bool>(),
        offer_resumption in any::<bool>(),
        premaster in prop::collection::vec(any::<u8>(), 1..96),
        verify in prop::collection::vec(any::<u8>(), 1..64),
        cut in any::<prop::sample::Index>(),
    ) {
        let session_id = SessionId::from_bytes(&session_bytes).expect("16-byte id");

        let ch = ClientHello {
            client_random,
            session_id: if offer_resumption { Some(session_id) } else { None },
        };
        prop_assert_eq!(ClientHello::decode(&ch.encode()).expect("ch"), ch.clone());

        let sh = ServerHello { server_random, session_id, resumed };
        prop_assert_eq!(ServerHello::decode(&sh.encode()).expect("sh"), sh.clone());

        let cke = ClientKeyExchange { encrypted_premaster: premaster };
        prop_assert_eq!(
            ClientKeyExchange::decode(&cke.encode()).expect("cke"),
            cke.clone()
        );

        let fin = Finished { verify_data: verify };
        prop_assert_eq!(Finished::decode(&fin.encode()).expect("fin"), fin.clone());

        // Truncating any encoding strictly is an error, never a panic.
        for encoded in [ch.encode(), sh.encode(), cke.encode(), fin.encode()] {
            let len = cut.index(encoded.len().max(1));
            if len < encoded.len() {
                let truncated = &encoded[..len];
                prop_assert!(ClientHello::decode(truncated).is_err());
                prop_assert!(ServerHello::decode(truncated).is_err());
                prop_assert!(ClientKeyExchange::decode(truncated).is_err());
                prop_assert!(Finished::decode(truncated).is_err());
            }
        }
    }

    /// Session-key derivation is deterministic in its inputs and sensitive to
    /// every one of them — the reason the setup_session_key callgate can deny
    /// the exploited worker any useful influence (§5.1.1): changing the
    /// server random (which the callgate generates itself) changes the keys.
    #[test]
    fn session_key_derivation_is_deterministic_and_input_sensitive(
        premaster in prop::collection::vec(any::<u8>(), 1..64),
        client_random in any::<[u8; RANDOM_LEN]>(),
        server_random in any::<[u8; RANDOM_LEN]>(),
        other_server_random in any::<[u8; RANDOM_LEN]>(),
    ) {
        let a = SessionKeys::derive(&premaster, &client_random, &server_random);
        let b = SessionKeys::derive(&premaster, &client_random, &server_random);
        prop_assert_eq!(a.fingerprint(), b.fingerprint());

        prop_assume!(server_random != other_server_random);
        let c = SessionKeys::derive(&premaster, &client_random, &other_server_random);
        prop_assert_ne!(a.fingerprint(), c.fingerprint());
    }
}
