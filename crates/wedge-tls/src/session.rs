//! Session secrets, derived key material, and the server-side session cache.

use std::collections::HashMap;

use wedge_crypto::kdf;
use wedge_crypto::KeyMaterial;

/// A session identifier assigned by the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionId([u8; 16]);

impl SessionId {
    /// Build a session id from exactly 16 bytes.
    pub fn from_bytes(bytes: &[u8]) -> Option<SessionId> {
        if bytes.len() == 16 {
            let mut id = [0u8; 16];
            id.copy_from_slice(bytes);
            Some(SessionId(id))
        } else {
            None
        }
    }

    /// The raw bytes of the id.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }
}

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sess-{}", wedge_crypto::sha256::to_hex(&self.0[..4]))
    }
}

/// Everything derived from a completed handshake: the master secret and the
/// per-direction encryption and MAC keys. In the paper's partitioning this
/// is exactly the data that must be confined to the `session key` tagged
/// memory region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionKeys {
    /// The 48-byte master secret.
    pub master_secret: Vec<u8>,
    /// The derived per-direction keys.
    pub material: KeyMaterial,
}

impl SessionKeys {
    /// Derive all session keys from the premaster secret and the two
    /// handshake randoms (the hash over "three inputs that traverse the
    /// network" of §5.1.1).
    pub fn derive(premaster: &[u8], client_random: &[u8], server_random: &[u8]) -> SessionKeys {
        SessionKeys {
            master_secret: kdf::derive_master_secret(premaster, client_random, server_random),
            material: kdf::derive_key_block(premaster, client_random, server_random),
        }
    }

    /// A compact fingerprint of the derived keys (for comparing both sides
    /// in tests without exposing the keys).
    pub fn fingerprint(&self) -> [u8; 32] {
        self.material.fingerprint()
    }
}

/// The server-side session cache: session id → premaster secret. A cache
/// hit lets the server skip the RSA key exchange (the workload distinction
/// in Table 2).
#[derive(Debug, Default)]
pub struct SessionCache {
    entries: HashMap<SessionId, Vec<u8>>,
    hits: u64,
    misses: u64,
}

impl SessionCache {
    /// Create an empty cache.
    pub fn new() -> SessionCache {
        SessionCache::default()
    }

    /// Store the premaster secret for a session id.
    pub fn insert(&mut self, id: SessionId, premaster: Vec<u8>) {
        self.entries.insert(id, premaster);
    }

    /// Look up a session; counts hits and misses.
    pub fn lookup(&mut self, id: &SessionId) -> Option<Vec<u8>> {
        match self.entries.get(id) {
            Some(premaster) => {
                self.hits += 1;
                Some(premaster.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Number of cached sessions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// (hits, misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_id_requires_16_bytes() {
        assert!(SessionId::from_bytes(&[0u8; 16]).is_some());
        assert!(SessionId::from_bytes(&[0u8; 15]).is_none());
        assert!(SessionId::from_bytes(&[]).is_none());
    }

    #[test]
    fn derive_is_deterministic_and_sensitive_to_all_inputs() {
        let a = SessionKeys::derive(b"premaster", b"cr", b"sr");
        let b = SessionKeys::derive(b"premaster", b"cr", b"sr");
        assert_eq!(a, b);
        assert_ne!(
            a.fingerprint(),
            SessionKeys::derive(b"premaster", b"cr", b"sr2").fingerprint()
        );
        assert_ne!(
            a.fingerprint(),
            SessionKeys::derive(b"other", b"cr", b"sr").fingerprint()
        );
        assert_eq!(a.master_secret.len(), 48);
    }

    #[test]
    fn cache_hits_and_misses_are_counted() {
        let mut cache = SessionCache::new();
        let id = SessionId::from_bytes(&[1u8; 16]).unwrap();
        assert!(cache.lookup(&id).is_none());
        cache.insert(id, b"premaster".to_vec());
        assert_eq!(cache.lookup(&id).unwrap(), b"premaster");
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
    }

    #[test]
    fn display_is_stable() {
        let id = SessionId::from_bytes(&[0xAB; 16]).unwrap();
        assert_eq!(id.to_string(), "sess-abababab");
    }
}
