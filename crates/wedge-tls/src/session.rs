//! Session secrets, derived key material, and the server-side session
//! caches: the single-owner [`SessionCache`] used by the monolithic
//! baseline, the concurrent [`SharedSessionCache`] a sharded front-end
//! consults from every shard, and the [`SessionStore`] trait behind which
//! both it and remote cache rings (`wedge-cachenet`) plug into a server.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use wedge_crypto::kdf;
use wedge_crypto::KeyMaterial;

/// A session identifier assigned by the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionId([u8; 16]);

impl SessionId {
    /// Build a session id from exactly 16 bytes.
    pub fn from_bytes(bytes: &[u8]) -> Option<SessionId> {
        if bytes.len() == 16 {
            let mut id = [0u8; 16];
            id.copy_from_slice(bytes);
            Some(SessionId(id))
        } else {
            None
        }
    }

    /// The raw bytes of the id.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// A 64-bit Fibonacci-hash mix of the id, used to pick a cache bucket
    /// (and usable as a shard-affinity key). The *high* bits of the product
    /// are the well-mixed ones — consumers reducing this to a small range
    /// should shift before taking a modulo, not use the low bits directly.
    pub fn bucket_key(&self) -> u64 {
        let word = u64::from_le_bytes(self.0[..8].try_into().expect("8 bytes"));
        word.wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }
}

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sess-{}", wedge_crypto::sha256::to_hex(&self.0[..4]))
    }
}

/// Everything derived from a completed handshake: the master secret and the
/// per-direction encryption and MAC keys. In the paper's partitioning this
/// is exactly the data that must be confined to the `session key` tagged
/// memory region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionKeys {
    /// The 48-byte master secret.
    pub master_secret: Vec<u8>,
    /// The derived per-direction keys.
    pub material: KeyMaterial,
}

impl SessionKeys {
    /// Derive all session keys from the premaster secret and the two
    /// handshake randoms (the hash over "three inputs that traverse the
    /// network" of §5.1.1).
    pub fn derive(premaster: &[u8], client_random: &[u8], server_random: &[u8]) -> SessionKeys {
        SessionKeys {
            master_secret: kdf::derive_master_secret(premaster, client_random, server_random),
            material: kdf::derive_key_block(premaster, client_random, server_random),
        }
    }

    /// A compact fingerprint of the derived keys (for comparing both sides
    /// in tests without exposing the keys).
    pub fn fingerprint(&self) -> [u8; 32] {
        self.material.fingerprint()
    }
}

/// The session-lookup service a TLS server consults during
/// `begin_handshake`: session id → premaster secret.
///
/// Two implementations exist today. [`SharedSessionCache`] is the
/// *in-process* store — one logical table shared by every shard of one
/// front-end ("machine"). `wedge_cachenet::CacheRing` is the *remote*
/// store — a client for the distributed cache protocol, so a session
/// established through one machine can resume through another. Servers
/// hold an `Arc<dyn SessionStore>` and cannot tell the difference; the
/// store is reached only through this narrow insert/lookup surface, never
/// through tagged memory, so a compromised compartment can at most replay
/// lookups.
///
/// Implementations must be infallible at this boundary: a remote store
/// that cannot reach its backend degrades to a miss (and its own local
/// tier), it does not surface transport errors into the handshake.
pub trait SessionStore: Send + Sync {
    /// Store the premaster secret for a session id.
    fn insert(&self, id: SessionId, premaster: Vec<u8>);

    /// Look up a session's premaster secret, refreshing its recency.
    fn lookup(&self, id: &SessionId) -> Option<Vec<u8>>;

    /// Drop a session outright (compromise response, epoch invalidation).
    fn remove(&self, id: &SessionId);

    /// `(hits, misses)` across every lookup this store has served.
    fn stats(&self) -> (u64, u64);

    /// Sessions currently resident in this store's directly-owned tier
    /// (a remote ring reports its *local* tier — the distributed total is
    /// a per-node property).
    fn len(&self) -> usize;

    /// Is the directly-owned tier empty?
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fraction of lookups that hit; `None` before the first lookup (see
    /// [`SharedSessionCache::hit_rate`] for the exact semantics every
    /// implementation must match).
    fn hit_rate(&self) -> Option<f64> {
        let (hits, misses) = self.stats();
        let lookups = hits + misses;
        if lookups == 0 {
            None
        } else {
            Some(hits as f64 / lookups as f64)
        }
    }
}

/// Default bound on cached sessions. Before the bound existed an attacker
/// could flood the server with throwaway handshakes and grow the cache
/// without limit — a memory DoS through the resumption path.
pub const DEFAULT_SESSION_CACHE_CAPACITY: usize = 1024;

/// The LRU map shared by [`SessionCache`] and each [`SharedSessionCache`]
/// bucket: session id → premaster secret, with a logical clock for
/// recency. Lookups refresh recency; inserts beyond capacity evict the
/// least-recently-used entry. A `last_used → id` index keeps eviction and
/// recency updates `O(log n)` — crucial because the eviction path runs on
/// exactly the resumption-flood workload the bound defends against (a
/// full-map minimum scan would make every flooded insert `O(capacity)`).
#[derive(Debug, Default)]
struct LruEntries {
    entries: HashMap<SessionId, LruEntry>,
    /// Recency index: logical timestamp → session id. Timestamps are
    /// unique (the clock is strictly monotonic), so the first entry is
    /// always the LRU victim.
    by_age: std::collections::BTreeMap<u64, SessionId>,
    clock: u64,
}

#[derive(Debug)]
struct LruEntry {
    premaster: Vec<u8>,
    last_used: u64,
}

impl LruEntries {
    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Insert, evicting the LRU entry first when `capacity` is reached.
    /// Returns how many entries were evicted (0 or 1).
    fn insert(&mut self, id: SessionId, premaster: Vec<u8>, capacity: usize) -> u64 {
        let now = self.tick();
        if let Some(entry) = self.entries.get_mut(&id) {
            self.by_age.remove(&entry.last_used);
            entry.premaster = premaster;
            entry.last_used = now;
            self.by_age.insert(now, id);
            return 0;
        }
        let mut evicted = 0;
        if self.entries.len() >= capacity.max(1) {
            if let Some((_, oldest)) = self.by_age.pop_first() {
                self.entries.remove(&oldest);
                evicted = 1;
            }
        }
        self.entries.insert(
            id,
            LruEntry {
                premaster,
                last_used: now,
            },
        );
        self.by_age.insert(now, id);
        evicted
    }

    fn lookup(&mut self, id: &SessionId) -> Option<Vec<u8>> {
        let now = self.tick();
        let entry = self.entries.get_mut(id)?;
        self.by_age.remove(&entry.last_used);
        entry.last_used = now;
        self.by_age.insert(now, *id);
        Some(entry.premaster.clone())
    }

    /// Remove an entry outright. Returns whether it existed. Not a lookup:
    /// neither hit/miss counters nor recency are touched.
    fn remove(&mut self, id: &SessionId) -> bool {
        match self.entries.remove(id) {
            Some(entry) => {
                self.by_age.remove(&entry.last_used);
                true
            }
            None => false,
        }
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// The single-owner server-side session cache: session id → premaster
/// secret. A cache hit lets the server skip the RSA key exchange (the
/// workload distinction in Table 2). Bounded: inserts beyond the capacity
/// evict the least-recently-used session.
#[derive(Debug)]
pub struct SessionCache {
    lru: LruEntries,
    capacity: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl Default for SessionCache {
    fn default() -> Self {
        SessionCache::with_capacity(DEFAULT_SESSION_CACHE_CAPACITY)
    }
}

impl SessionCache {
    /// Create an empty cache with the default capacity.
    pub fn new() -> SessionCache {
        SessionCache::default()
    }

    /// Create an empty cache bounded to `capacity` sessions (minimum 1).
    pub fn with_capacity(capacity: usize) -> SessionCache {
        SessionCache {
            lru: LruEntries::default(),
            capacity: capacity.max(1),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Store the premaster secret for a session id, evicting the
    /// least-recently-used session if the cache is full.
    pub fn insert(&mut self, id: SessionId, premaster: Vec<u8>) {
        self.evictions += self.lru.insert(id, premaster, self.capacity);
    }

    /// Look up a session; counts hits and misses and refreshes the
    /// session's LRU position.
    pub fn lookup(&mut self, id: &SessionId) -> Option<Vec<u8>> {
        match self.lru.lookup(id) {
            Some(premaster) => {
                self.hits += 1;
                Some(premaster)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Number of cached sessions.
    pub fn len(&self) -> usize {
        self.lru.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.lru.len() == 0
    }

    /// (hits, misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Sessions evicted to stay within capacity.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

/// Number of independent buckets in a [`SharedSessionCache`]. Sixteen
/// matches the kernel's segment-table shard count: enough to keep
/// concurrent shard front-ends off each other's locks, few enough that a
/// small capacity still gives every bucket room.
pub const SESSION_CACHE_BUCKETS: usize = 16;

/// A concurrent, shareable session cache for sharded front-ends.
///
/// The Wedge paper's servers keep the session cache inside one process;
/// once connections are distributed over independent shard kernels, a
/// client that resumes on a different shard misses a per-shard cache every
/// time. `SharedSessionCache` is the DiCuPIT-style shared lookup service
/// that fixes this: one logical table, sharded into [`SESSION_CACHE_BUCKETS`]
/// `RwLock` buckets (the same decomposition as the kernel's segment-table
/// shards) so shards contend only when they hash to the same bucket.
///
/// It is deliberately a *confined* service in the Wedge spirit: shards
/// reach it only through the narrow `insert`/`lookup` API — no tagged
/// memory is shared across shard kernels, so a compromised shard can
/// replay lookups but never walk another shard's address space.
///
/// Hit/miss/eviction counters are interior-mutable atomics, so the cache
/// can be consulted through a plain `&self` from any number of shards.
pub struct SharedSessionCache {
    buckets: Vec<RwLock<LruEntries>>,
    bucket_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Default for SharedSessionCache {
    fn default() -> Self {
        SharedSessionCache::with_capacity(DEFAULT_SESSION_CACHE_CAPACITY)
    }
}

impl std::fmt::Debug for SharedSessionCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedSessionCache")
            .field("sessions", &self.len())
            .field("capacity", &self.capacity())
            .field("stats", &self.stats())
            .finish()
    }
}

impl SharedSessionCache {
    /// A shared cache with the default total capacity.
    pub fn new() -> SharedSessionCache {
        SharedSessionCache::default()
    }

    /// A shared cache bounded to roughly `capacity` sessions in total
    /// (rounded up to a multiple of the bucket count; each bucket enforces
    /// its share independently).
    pub fn with_capacity(capacity: usize) -> SharedSessionCache {
        SharedSessionCache {
            buckets: (0..SESSION_CACHE_BUCKETS)
                .map(|_| RwLock::new(LruEntries::default()))
                .collect(),
            bucket_capacity: capacity.div_ceil(SESSION_CACHE_BUCKETS).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn bucket(&self, id: &SessionId) -> &RwLock<LruEntries> {
        // High bits of the Fibonacci product: the low bits survive a plain
        // modulo almost unmixed (ids sharing a low byte would all collide).
        &self.buckets[((id.bucket_key() >> 32) % self.buckets.len() as u64) as usize]
    }

    /// Total capacity across all buckets.
    pub fn capacity(&self) -> usize {
        self.bucket_capacity * self.buckets.len()
    }

    /// Store the premaster secret for a session id; any shard may call this
    /// and any shard will subsequently hit on a lookup.
    pub fn insert(&self, id: SessionId, premaster: Vec<u8>) {
        let evicted = self
            .bucket(&id)
            .write()
            .insert(id, premaster, self.bucket_capacity);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
    }

    /// Look up a session; counts hits and misses and refreshes recency.
    pub fn lookup(&self, id: &SessionId) -> Option<Vec<u8>> {
        match self.bucket(id).write().lookup(id) {
            Some(premaster) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(premaster)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Remove a session outright (compromise response, or a cache node
    /// invalidating a stale pre-restart entry). Returns whether the
    /// session was present. **Not a lookup**: hit/miss counters — and
    /// therefore [`Self::hit_rate`] — are unaffected.
    pub fn remove(&self, id: &SessionId) -> bool {
        self.bucket(id).write().remove(id)
    }

    /// Number of cached sessions across all buckets.
    pub fn len(&self) -> usize {
        self.buckets.iter().map(|b| b.read().len()).sum()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// (hits, misses) so far, across every consulting shard.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Fraction of lookups that hit, across every consulting shard —
    /// the resumption health signal operators watch when placement (e.g.
    /// a dead shard's affinity keys falling over to a sibling) changes
    /// which shard consults the cache.
    ///
    /// The exact semantics (pinned by tests, and the spec every other
    /// [`SessionStore`]'s aggregated hit-rate reporting must match):
    ///
    /// * **No lookups yet ⇒ `None`**, never `Some(0.0)` — a front-end
    ///   that has served only fresh handshakes has an *unknown* hit rate,
    ///   not a zero one, and dashboards must be able to tell the two
    ///   apart. Inserts, [`Self::remove`] calls and evictions alone never
    ///   move it off `None`.
    /// * **Evicted (or removed) sessions count as ordinary misses** when
    ///   next looked up: eviction does not retroactively adjust the
    ///   counters for the hits the entry served while resident, and the
    ///   post-eviction lookup is indistinguishable from a
    ///   never-inserted one.
    /// * The rate is cumulative over the cache's lifetime (no windowing);
    ///   `Some(hits as f64 / (hits + misses) as f64)` exactly.
    pub fn hit_rate(&self) -> Option<f64> {
        let (hits, misses) = self.stats();
        let lookups = hits + misses;
        if lookups == 0 {
            None
        } else {
            Some(hits as f64 / lookups as f64)
        }
    }

    /// Sessions evicted to stay within capacity.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Register this cache with a telemetry plane: hits, misses,
    /// evictions and resident sessions are pulled into
    /// `tls.session_cache.*` at snapshot time. For standalone use of the
    /// cache — a store registered with a `ShardedFrontEnd` is already
    /// pulled under the same names by the front-end's `instrument`, so
    /// do not also register it here (the totals would double). The
    /// collector holds the cache weakly.
    pub fn instrument(self: &Arc<SharedSessionCache>, telemetry: &wedge_telemetry::Telemetry) {
        let cache = Arc::downgrade(self);
        telemetry.register_collector(move |sample| {
            let Some(cache) = cache.upgrade() else {
                return;
            };
            let (hits, misses) = cache.stats();
            sample.counter("tls.session_cache.hits", hits);
            sample.counter("tls.session_cache.misses", misses);
            sample.counter("tls.session_cache.evictions", cache.evictions());
            sample.gauge("tls.session_cache.resident", cache.len() as u64);
        });
    }
}

impl SessionStore for SharedSessionCache {
    fn insert(&self, id: SessionId, premaster: Vec<u8>) {
        SharedSessionCache::insert(self, id, premaster);
    }

    fn lookup(&self, id: &SessionId) -> Option<Vec<u8>> {
        SharedSessionCache::lookup(self, id)
    }

    fn remove(&self, id: &SessionId) {
        SharedSessionCache::remove(self, id);
    }

    fn stats(&self) -> (u64, u64) {
        SharedSessionCache::stats(self)
    }

    fn len(&self) -> usize {
        SharedSessionCache::len(self)
    }

    fn hit_rate(&self) -> Option<f64> {
        SharedSessionCache::hit_rate(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(byte: u8) -> SessionId {
        SessionId::from_bytes(&[byte; 16]).unwrap()
    }

    #[test]
    fn session_id_requires_16_bytes() {
        assert!(SessionId::from_bytes(&[0u8; 16]).is_some());
        assert!(SessionId::from_bytes(&[0u8; 15]).is_none());
        assert!(SessionId::from_bytes(&[]).is_none());
    }

    #[test]
    fn derive_is_deterministic_and_sensitive_to_all_inputs() {
        let a = SessionKeys::derive(b"premaster", b"cr", b"sr");
        let b = SessionKeys::derive(b"premaster", b"cr", b"sr");
        assert_eq!(a, b);
        assert_ne!(
            a.fingerprint(),
            SessionKeys::derive(b"premaster", b"cr", b"sr2").fingerprint()
        );
        assert_ne!(
            a.fingerprint(),
            SessionKeys::derive(b"other", b"cr", b"sr").fingerprint()
        );
        assert_eq!(a.master_secret.len(), 48);
    }

    #[test]
    fn cache_hits_and_misses_are_counted() {
        let mut cache = SessionCache::new();
        let id = id(1);
        assert!(cache.lookup(&id).is_none());
        cache.insert(id, b"premaster".to_vec());
        assert_eq!(cache.lookup(&id).unwrap(), b"premaster");
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
    }

    #[test]
    fn cache_evicts_least_recently_used_at_capacity() {
        let mut cache = SessionCache::with_capacity(2);
        cache.insert(id(1), b"one".to_vec());
        cache.insert(id(2), b"two".to_vec());
        // Touch 1 so 2 becomes the LRU entry.
        assert!(cache.lookup(&id(1)).is_some());
        cache.insert(id(3), b"three".to_vec());
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        assert!(cache.lookup(&id(2)).is_none(), "LRU entry must be evicted");
        assert!(cache.lookup(&id(1)).is_some(), "recently used entry stays");
        assert!(cache.lookup(&id(3)).is_some(), "new entry stays");
        // A resumption flood cannot grow the cache past its bound.
        for byte in 10..200u8 {
            cache.insert(id(byte), vec![byte]);
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1 + 190);
    }

    #[test]
    fn reinserting_an_existing_id_does_not_evict() {
        let mut cache = SessionCache::with_capacity(2);
        cache.insert(id(1), b"one".to_vec());
        cache.insert(id(2), b"two".to_vec());
        cache.insert(id(2), b"two-updated".to_vec());
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.lookup(&id(2)).unwrap(), b"two-updated");
    }

    #[test]
    fn shared_cache_is_visible_across_handles() {
        let cache = SharedSessionCache::with_capacity(64);
        // "Shard A" inserts...
        cache.insert(id(7), b"premaster".to_vec());
        // ..."shard B" (any other caller of the same service) hits.
        assert_eq!(cache.lookup(&id(7)).unwrap(), b"premaster");
        assert!(cache.lookup(&id(8)).is_none());
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn shared_cache_bounds_every_bucket() {
        let cache = SharedSessionCache::with_capacity(SESSION_CACHE_BUCKETS);
        // Far more distinct sessions than total capacity.
        for byte in 0..255u8 {
            cache.insert(id(byte), vec![byte]);
        }
        assert!(cache.len() <= cache.capacity());
        assert!(cache.evictions() > 0);
    }

    #[test]
    fn shared_cache_supports_concurrent_mixed_traffic() {
        use std::sync::Arc;
        let cache = Arc::new(SharedSessionCache::with_capacity(256));
        let threads: Vec<_> = (0..4u8)
            .map(|t| {
                let cache = cache.clone();
                std::thread::spawn(move || {
                    for round in 0..50u8 {
                        let sid = id(t.wrapping_mul(50).wrapping_add(round));
                        cache.insert(sid, vec![t, round]);
                        assert_eq!(cache.lookup(&sid).unwrap(), vec![t, round]);
                    }
                })
            })
            .collect();
        for thread in threads {
            thread.join().expect("cache thread");
        }
        let (hits, _misses) = cache.stats();
        assert_eq!(hits, 200);
    }

    #[test]
    fn hit_rate_is_none_until_the_first_lookup() {
        let cache = SharedSessionCache::with_capacity(16);
        assert_eq!(cache.hit_rate(), None, "fresh cache: unknown, not 0%");
        // Inserts and removes alone never move it off `None` — only
        // lookups are rate events.
        cache.insert(id(1), b"one".to_vec());
        cache.insert(id(2), b"two".to_vec());
        cache.remove(&id(2));
        assert_eq!(cache.hit_rate(), None, "writes are not lookups");
        assert!(cache.lookup(&id(1)).is_some());
        assert_eq!(cache.hit_rate(), Some(1.0));
        assert!(cache.lookup(&id(9)).is_none());
        assert_eq!(cache.hit_rate(), Some(0.5));
    }

    #[test]
    fn hit_rate_counts_post_eviction_lookups_as_plain_misses() {
        // Total capacity == bucket count ⇒ every bucket holds exactly one
        // entry, so two ids in the same bucket evict deterministically.
        // The bucket choice is the high half of the public `bucket_key`.
        let bucket_of = |byte: u8| (id(byte).bucket_key() >> 32) % SESSION_CACHE_BUCKETS as u64;
        let victim = 0u8;
        let evictor = (1..=255u8)
            .find(|b| bucket_of(*b) == bucket_of(victim))
            .expect("a colliding id must exist within 256 candidates");

        let cache = SharedSessionCache::with_capacity(SESSION_CACHE_BUCKETS);
        cache.insert(id(victim), b"victim".to_vec());
        assert!(cache.lookup(&id(victim)).is_some(), "resident: hit");
        assert_eq!(cache.hit_rate(), Some(1.0));
        cache.insert(id(evictor), b"evictor".to_vec());
        assert_eq!(cache.evictions(), 1, "bucket capacity 1: victim evicted");
        // The hit the victim served while resident is kept; the
        // post-eviction lookup is an ordinary miss, indistinguishable
        // from a never-inserted id's.
        assert!(cache.lookup(&id(victim)).is_none());
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.hit_rate(), Some(0.5));
        let never_inserted = (1..=255u8)
            .find(|b| *b != evictor && bucket_of(*b) != bucket_of(victim))
            .expect("some id in another bucket");
        assert!(cache.lookup(&id(never_inserted)).is_none());
        assert_eq!(cache.stats(), (1, 2), "same accounting as the eviction");
    }

    #[test]
    fn remove_deletes_without_touching_the_rate() {
        let cache = SharedSessionCache::with_capacity(16);
        cache.insert(id(3), b"three".to_vec());
        assert!(cache.remove(&id(3)), "present entry removed");
        assert!(!cache.remove(&id(3)), "second remove is a no-op");
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.hit_rate(), None, "remove is not a lookup");
        assert!(cache.lookup(&id(3)).is_none());
        assert_eq!(cache.stats(), (0, 1));
    }

    #[test]
    fn session_store_trait_object_matches_the_inherent_api() {
        use std::sync::Arc;
        let cache = Arc::new(SharedSessionCache::with_capacity(32));
        let store: Arc<dyn SessionStore> = cache.clone();
        store.insert(id(4), b"four".to_vec());
        assert_eq!(store.lookup(&id(4)).unwrap(), b"four");
        assert_eq!(store.stats(), cache.stats());
        assert_eq!(store.len(), 1);
        assert!(!store.is_empty());
        assert_eq!(store.hit_rate(), Some(1.0));
        store.remove(&id(4));
        assert!(store.is_empty());
    }

    #[test]
    fn display_is_stable() {
        let id = SessionId::from_bytes(&[0xAB; 16]).unwrap();
        assert_eq!(id.to_string(), "sess-abababab");
    }
}
