//! The encrypt-then-MAC record layer.
//!
//! After the handshake, application data flows in records encrypted with a
//! direction-specific write key and authenticated with a direction-specific
//! MAC key and a sequence number. The MAC is what makes the §5.1.2 argument
//! work: "Data injected by the attacker will be rejected by the client
//! handler sthread" because without the MAC key an attacker cannot produce
//! acceptable records.

use wedge_crypto::{hmac_sha256, StreamCipher};

/// Errors from opening a record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordError {
    /// The record was too short to contain a MAC.
    Truncated,
    /// MAC verification failed (corruption, injection, or wrong keys).
    BadMac,
}

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordError::Truncated => write!(f, "record truncated"),
            RecordError::BadMac => write!(f, "record MAC verification failed"),
        }
    }
}

impl std::error::Error for RecordError {}

const MAC_LEN: usize = 32;

/// One direction of a record channel: encrypts and MACs outgoing plaintext,
/// or verifies and decrypts incoming records.
#[derive(Debug, Clone)]
pub struct RecordLayer {
    cipher_key: Vec<u8>,
    mac_key: Vec<u8>,
    /// Sequence number of the next record to seal.
    send_seq: u64,
    /// Sequence number expected on the next opened record.
    recv_seq: u64,
}

impl RecordLayer {
    /// Create a record layer from a write key and a MAC key. Both endpoints
    /// of one direction construct it with the same keys.
    pub fn new(cipher_key: &[u8], mac_key: &[u8]) -> RecordLayer {
        RecordLayer {
            cipher_key: cipher_key.to_vec(),
            mac_key: mac_key.to_vec(),
            send_seq: 0,
            recv_seq: 0,
        }
    }

    /// Seal a plaintext into `seq ‖ ciphertext ‖ mac`.
    pub fn seal(&mut self, plaintext: &[u8]) -> Vec<u8> {
        let seq = self.send_seq;
        self.send_seq += 1;
        let mut cipher = StreamCipher::new(&self.per_record_key(seq));
        let ciphertext = cipher.process(plaintext);
        let mut out = Vec::with_capacity(8 + ciphertext.len() + MAC_LEN);
        out.extend_from_slice(&seq.to_be_bytes());
        out.extend_from_slice(&ciphertext);
        let mac = self.mac(seq, &ciphertext);
        out.extend_from_slice(&mac);
        out
    }

    /// Verify and decrypt a record produced by the peer's `seal`.
    pub fn open(&mut self, record: &[u8]) -> Result<Vec<u8>, RecordError> {
        if record.len() < 8 + MAC_LEN {
            return Err(RecordError::Truncated);
        }
        let seq = u64::from_be_bytes(record[..8].try_into().expect("8 bytes"));
        let ciphertext = &record[8..record.len() - MAC_LEN];
        let mac = &record[record.len() - MAC_LEN..];
        let expected = self.mac(seq, ciphertext);
        if !wedge_crypto::ct_eq(&expected, mac) || seq != self.recv_seq {
            return Err(RecordError::BadMac);
        }
        self.recv_seq += 1;
        let mut cipher = StreamCipher::new(&self.per_record_key(seq));
        Ok(cipher.process(ciphertext))
    }

    fn per_record_key(&self, seq: u64) -> Vec<u8> {
        let mut key = self.cipher_key.clone();
        key.extend_from_slice(&seq.to_be_bytes());
        key
    }

    fn mac(&self, seq: u64, ciphertext: &[u8]) -> [u8; MAC_LEN] {
        let mut message = seq.to_be_bytes().to_vec();
        message.extend_from_slice(ciphertext);
        hmac_sha256(&self.mac_key, &message)
    }

    /// Reconstruct a record layer at a given sequence position. Used by the
    /// partitioned server's `ssl_read`/`ssl_write` callgates, which persist
    /// the sequence numbers in tagged memory between invocations.
    pub fn resume(cipher_key: &[u8], mac_key: &[u8], send_seq: u64, recv_seq: u64) -> RecordLayer {
        RecordLayer {
            cipher_key: cipher_key.to_vec(),
            mac_key: mac_key.to_vec(),
            send_seq,
            recv_seq,
        }
    }

    /// Number of records sealed so far.
    pub fn sent(&self) -> u64 {
        self.send_seq
    }

    /// Number of records successfully opened so far.
    pub fn received(&self) -> u64 {
        self.recv_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (RecordLayer, RecordLayer) {
        (
            RecordLayer::new(b"write-key", b"mac-key"),
            RecordLayer::new(b"write-key", b"mac-key"),
        )
    }

    #[test]
    fn seal_open_roundtrip_preserves_order() {
        let (mut tx, mut rx) = pair();
        for i in 0..10 {
            let msg = format!("record {i}");
            let sealed = tx.seal(msg.as_bytes());
            assert_eq!(rx.open(&sealed).unwrap(), msg.as_bytes());
        }
        assert_eq!(tx.sent(), 10);
        assert_eq!(rx.received(), 10);
    }

    #[test]
    fn ciphertext_differs_from_plaintext() {
        let (mut tx, _) = pair();
        let sealed = tx.seal(b"secret payload");
        assert!(!sealed.windows(14).any(|w| w == b"secret payload"));
    }

    #[test]
    fn any_corruption_is_rejected() {
        let (mut tx, mut rx) = pair();
        let sealed = tx.seal(b"important");
        for i in 0..sealed.len() {
            let mut corrupted = sealed.clone();
            corrupted[i] ^= 0x01;
            let mut rx_clone = rx.clone();
            assert!(
                rx_clone.open(&corrupted).is_err(),
                "byte {i} corruption accepted"
            );
        }
        // The untouched record still opens.
        assert_eq!(rx.open(&sealed).unwrap(), b"important");
    }

    #[test]
    fn wrong_keys_are_rejected() {
        let mut tx = RecordLayer::new(b"key-a", b"mac-a");
        let mut rx = RecordLayer::new(b"key-b", b"mac-b");
        assert_eq!(rx.open(&tx.seal(b"hello")), Err(RecordError::BadMac));
    }

    #[test]
    fn replayed_records_are_rejected() {
        let (mut tx, mut rx) = pair();
        let sealed = tx.seal(b"once");
        assert!(rx.open(&sealed).is_ok());
        assert_eq!(rx.open(&sealed), Err(RecordError::BadMac));
    }

    #[test]
    fn reordered_records_are_rejected() {
        let (mut tx, mut rx) = pair();
        let first = tx.seal(b"first");
        let second = tx.seal(b"second");
        assert_eq!(rx.open(&second), Err(RecordError::BadMac));
        assert!(rx.open(&first).is_ok());
    }

    #[test]
    fn truncated_records_are_rejected() {
        let (mut tx, mut rx) = pair();
        let sealed = tx.seal(b"data");
        assert_eq!(rx.open(&sealed[..10]), Err(RecordError::Truncated));
    }
}
