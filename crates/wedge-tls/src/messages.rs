//! Handshake messages and their wire encoding.
//!
//! Encoding is a minimal hand-rolled format (1-byte message tag followed by
//! length-prefixed fields); nothing about the evaluation depends on the
//! exact bytes, only on which *values* cross the network in the clear
//! (client/server randoms, session ids) and which cross it encrypted (the
//! premaster secret, the Finished payloads).

use crate::session::SessionId;

/// Length of the client/server random contributions, as in SSL.
pub const RANDOM_LEN: usize = 32;
/// Length of the premaster secret, as in SSL/RSA.
pub const PREMASTER_LEN: usize = 48;

/// Errors from decoding a handshake message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer was shorter than the encoding requires.
    Truncated,
    /// The leading tag byte did not match the expected message type.
    WrongTag {
        /// The tag we expected.
        expected: u8,
        /// The tag we found.
        found: u8,
    },
    /// A length field was inconsistent with the buffer.
    BadLength,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "message truncated"),
            DecodeError::WrongTag { expected, found } => {
                write!(f, "wrong message tag: expected {expected}, found {found}")
            }
            DecodeError::BadLength => write!(f, "inconsistent length field"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
    out.extend_from_slice(bytes);
}

fn get_bytes<'a>(input: &mut &'a [u8]) -> Result<&'a [u8], DecodeError> {
    if input.len() < 4 {
        return Err(DecodeError::Truncated);
    }
    let len = u32::from_be_bytes([input[0], input[1], input[2], input[3]]) as usize;
    if input.len() < 4 + len {
        return Err(DecodeError::BadLength);
    }
    let (bytes, rest) = input[4..].split_at(len);
    *input = rest;
    Ok(bytes)
}

/// Message tags on the wire.
pub mod tags {
    /// ClientHello tag.
    pub const CLIENT_HELLO: u8 = 1;
    /// ServerHello tag.
    pub const SERVER_HELLO: u8 = 2;
    /// ClientKeyExchange tag.
    pub const CLIENT_KEY_EXCHANGE: u8 = 3;
    /// Finished tag (carried inside a sealed record).
    pub const FINISHED: u8 = 4;
    /// Application data tag (carried inside a sealed record).
    pub const APPLICATION_DATA: u8 = 5;
    /// Fatal alert tag.
    pub const ALERT: u8 = 6;
}

/// The client's opening message: its random contribution and, when
/// attempting resumption, a cached session id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientHello {
    /// The client's random contribution to key derivation (cleartext).
    pub client_random: [u8; RANDOM_LEN],
    /// The session the client wants to resume, if any.
    pub session_id: Option<SessionId>,
}

impl ClientHello {
    /// Encode to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![tags::CLIENT_HELLO];
        put_bytes(&mut out, &self.client_random);
        match &self.session_id {
            Some(id) => put_bytes(&mut out, id.as_bytes()),
            None => put_bytes(&mut out, &[]),
        }
        out
    }

    /// Decode from wire bytes.
    pub fn decode(mut input: &[u8]) -> Result<ClientHello, DecodeError> {
        let tag = *input.first().ok_or(DecodeError::Truncated)?;
        if tag != tags::CLIENT_HELLO {
            return Err(DecodeError::WrongTag {
                expected: tags::CLIENT_HELLO,
                found: tag,
            });
        }
        input = &input[1..];
        let random = get_bytes(&mut input)?;
        if random.len() != RANDOM_LEN {
            return Err(DecodeError::BadLength);
        }
        let mut client_random = [0u8; RANDOM_LEN];
        client_random.copy_from_slice(random);
        let sid = get_bytes(&mut input)?;
        let session_id = if sid.is_empty() {
            None
        } else {
            Some(SessionId::from_bytes(sid).ok_or(DecodeError::BadLength)?)
        };
        Ok(ClientHello {
            client_random,
            session_id,
        })
    }
}

/// The server's reply: its random contribution, the session id it assigned
/// (or accepted), and whether it agreed to resume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerHello {
    /// The server's random contribution to key derivation (cleartext).
    pub server_random: [u8; RANDOM_LEN],
    /// The session id for this connection.
    pub session_id: SessionId,
    /// Did the server accept the client's resumption offer?
    pub resumed: bool,
}

impl ServerHello {
    /// Encode to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![tags::SERVER_HELLO];
        put_bytes(&mut out, &self.server_random);
        put_bytes(&mut out, self.session_id.as_bytes());
        out.push(u8::from(self.resumed));
        out
    }

    /// Decode from wire bytes.
    pub fn decode(mut input: &[u8]) -> Result<ServerHello, DecodeError> {
        let tag = *input.first().ok_or(DecodeError::Truncated)?;
        if tag != tags::SERVER_HELLO {
            return Err(DecodeError::WrongTag {
                expected: tags::SERVER_HELLO,
                found: tag,
            });
        }
        input = &input[1..];
        let random = get_bytes(&mut input)?;
        if random.len() != RANDOM_LEN {
            return Err(DecodeError::BadLength);
        }
        let mut server_random = [0u8; RANDOM_LEN];
        server_random.copy_from_slice(random);
        let sid = get_bytes(&mut input)?;
        let session_id = SessionId::from_bytes(sid).ok_or(DecodeError::BadLength)?;
        let resumed = *input.first().ok_or(DecodeError::Truncated)? != 0;
        Ok(ServerHello {
            server_random,
            session_id,
            resumed,
        })
    }
}

/// The client's RSA-encrypted premaster secret.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientKeyExchange {
    /// The premaster secret encrypted under the server's public key.
    pub encrypted_premaster: Vec<u8>,
}

impl ClientKeyExchange {
    /// Encode to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![tags::CLIENT_KEY_EXCHANGE];
        put_bytes(&mut out, &self.encrypted_premaster);
        out
    }

    /// Decode from wire bytes.
    pub fn decode(mut input: &[u8]) -> Result<ClientKeyExchange, DecodeError> {
        let tag = *input.first().ok_or(DecodeError::Truncated)?;
        if tag != tags::CLIENT_KEY_EXCHANGE {
            return Err(DecodeError::WrongTag {
                expected: tags::CLIENT_KEY_EXCHANGE,
                found: tag,
            });
        }
        input = &input[1..];
        Ok(ClientKeyExchange {
            encrypted_premaster: get_bytes(&mut input)?.to_vec(),
        })
    }
}

/// A Finished message: proof that the sender derived the session keys and
/// saw the same handshake transcript.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finished {
    /// `HMAC(master_secret, label ‖ transcript_hash)`.
    pub verify_data: Vec<u8>,
}

impl Finished {
    /// Encode to wire bytes (these bytes are then sealed in a record).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![tags::FINISHED];
        put_bytes(&mut out, &self.verify_data);
        out
    }

    /// Decode from wire bytes.
    pub fn decode(mut input: &[u8]) -> Result<Finished, DecodeError> {
        let tag = *input.first().ok_or(DecodeError::Truncated)?;
        if tag != tags::FINISHED {
            return Err(DecodeError::WrongTag {
                expected: tags::FINISHED,
                found: tag,
            });
        }
        input = &input[1..];
        Ok(Finished {
            verify_data: get_bytes(&mut input)?.to_vec(),
        })
    }
}

/// Any handshake message (used by transcripts and tests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HandshakeMessage {
    /// A ClientHello.
    ClientHello(ClientHello),
    /// A ServerHello.
    ServerHello(ServerHello),
    /// A ClientKeyExchange.
    ClientKeyExchange(ClientKeyExchange),
    /// A Finished message.
    Finished(Finished),
}

impl HandshakeMessage {
    /// Encode to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            HandshakeMessage::ClientHello(m) => m.encode(),
            HandshakeMessage::ServerHello(m) => m.encode(),
            HandshakeMessage::ClientKeyExchange(m) => m.encode(),
            HandshakeMessage::Finished(m) => m.encode(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_hello_roundtrip_with_and_without_session() {
        let hello = ClientHello {
            client_random: [7u8; RANDOM_LEN],
            session_id: None,
        };
        assert_eq!(ClientHello::decode(&hello.encode()).unwrap(), hello);

        let resuming = ClientHello {
            client_random: [9u8; RANDOM_LEN],
            session_id: Some(SessionId::from_bytes(&[3u8; 16]).unwrap()),
        };
        assert_eq!(ClientHello::decode(&resuming.encode()).unwrap(), resuming);
    }

    #[test]
    fn server_hello_roundtrip() {
        let hello = ServerHello {
            server_random: [1u8; RANDOM_LEN],
            session_id: SessionId::from_bytes(&[5u8; 16]).unwrap(),
            resumed: true,
        };
        assert_eq!(ServerHello::decode(&hello.encode()).unwrap(), hello);
    }

    #[test]
    fn key_exchange_and_finished_roundtrip() {
        let kx = ClientKeyExchange {
            encrypted_premaster: vec![1, 2, 3, 4, 5],
        };
        assert_eq!(ClientKeyExchange::decode(&kx.encode()).unwrap(), kx);
        let fin = Finished {
            verify_data: vec![9; 32],
        };
        assert_eq!(Finished::decode(&fin.encode()).unwrap(), fin);
    }

    #[test]
    fn wrong_tag_is_detected() {
        let hello = ClientHello {
            client_random: [7u8; RANDOM_LEN],
            session_id: None,
        };
        assert!(matches!(
            ServerHello::decode(&hello.encode()),
            Err(DecodeError::WrongTag { .. })
        ));
    }

    #[test]
    fn truncated_messages_are_detected() {
        let hello = ClientHello {
            client_random: [7u8; RANDOM_LEN],
            session_id: None,
        };
        let bytes = hello.encode();
        assert!(ClientHello::decode(&bytes[..bytes.len() - 3]).is_err());
        assert!(ClientHello::decode(&[]).is_err());
    }
}
