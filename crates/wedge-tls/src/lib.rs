//! # wedge-tls — a structure-faithful SSL/TLS-like protocol
//!
//! The Apache/OpenSSL case study in the Wedge paper (§5.1) is entirely about
//! *where the SSL handshake's secrets live* and *which compartment performs
//! which step*: the RSA-encrypted premaster secret, the client and server
//! randoms, the derived session/MAC keys, the hashed `finished_state`, and
//! the MAC'd record layer that carries application data. This crate
//! implements a small protocol with exactly that structure (RSA key
//! exchange, SSL-style key derivation, Finished messages computed over the
//! handshake transcript, an encrypt-then-MAC record layer, and session
//! caching/resumption), on top of the deliberately toy cryptography of
//! [`wedge_crypto`].
//!
//! **This is not TLS and is not secure**; it reproduces the data flows the
//! paper's partitioning reasons about, so that the attacks and defences of
//! §5.1.1–§5.1.2 can be exercised end to end.
//!
//! Layout:
//!
//! * [`messages`] — handshake message types and their wire encoding.
//! * [`session`] — premaster/master secrets, derived key material, and the
//!   server-side session caches (the single-owner [`SessionCache`], the
//!   concurrent, shard-shareable [`SharedSessionCache`], and the
//!   [`SessionStore`] trait that lets a server swap the in-process cache
//!   for a remote cache ring without noticing).
//! * [`record`] — the encrypt-then-MAC record layer.
//! * [`handshake`] — the individual handshake computations (kept as free
//!   functions so the partitioned server can wrap each one in a callgate)
//!   plus a complete client and a complete *monolithic* server used by the
//!   vanilla Apache baseline.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod handshake;
pub mod messages;
pub mod record;
pub mod session;

pub use handshake::{TlsClient, TlsClientConnection, TlsError};
pub use messages::{ClientHello, ClientKeyExchange, Finished, HandshakeMessage, ServerHello};
pub use record::RecordLayer;
pub use session::{
    SessionCache, SessionId, SessionKeys, SessionStore, SharedSessionCache,
    DEFAULT_SESSION_CACHE_CAPACITY,
};
