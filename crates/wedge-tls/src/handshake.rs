//! Handshake computations, a complete client, and a monolithic server.
//!
//! The individual steps are free functions so the Wedge-partitioned server
//! can wrap each one in a callgate with exactly the privileges the paper
//! prescribes (`setup_session_key`, `receive_finished`, `send_finished`,
//! `ssl_read`, `ssl_write`), while the vanilla baseline simply calls
//! [`server_handshake`] in one compartment.

use std::time::Duration;

use wedge_crypto::{hmac_sha256, sha256::Sha256, RsaKeyPair, RsaPublicKey, WedgeRng};
use wedge_net::{Duplex, NetError, RecvTimeout};

use crate::messages::{
    ClientHello, ClientKeyExchange, DecodeError, Finished, ServerHello, PREMASTER_LEN, RANDOM_LEN,
};
use crate::record::{RecordError, RecordLayer};
use crate::session::{SessionCache, SessionId, SessionKeys};

/// Label mixed into the client's Finished verify data.
pub const CLIENT_FINISHED_LABEL: &[u8] = b"client finished";
/// Label mixed into the server's Finished verify data.
pub const SERVER_FINISHED_LABEL: &[u8] = b"server finished";

/// How long handshake steps wait for the peer before giving up.
pub const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(5);

/// Errors from the handshake or the record channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TlsError {
    /// A handshake message failed to decode.
    Decode(DecodeError),
    /// A record failed MAC verification or was malformed.
    Record(RecordError),
    /// The transport failed (peer gone, timeout).
    Transport(String),
    /// The peer's Finished message did not verify, or the handshake was
    /// otherwise inconsistent.
    HandshakeFailed(String),
    /// An RSA operation failed (bad ciphertext from the peer).
    Crypto(String),
}

impl std::fmt::Display for TlsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TlsError::Decode(e) => write!(f, "decode error: {e}"),
            TlsError::Record(e) => write!(f, "record error: {e}"),
            TlsError::Transport(e) => write!(f, "transport error: {e}"),
            TlsError::HandshakeFailed(e) => write!(f, "handshake failed: {e}"),
            TlsError::Crypto(e) => write!(f, "crypto error: {e}"),
        }
    }
}

impl std::error::Error for TlsError {}

impl From<DecodeError> for TlsError {
    fn from(e: DecodeError) -> Self {
        TlsError::Decode(e)
    }
}

impl From<RecordError> for TlsError {
    fn from(e: RecordError) -> Self {
        TlsError::Record(e)
    }
}

impl From<NetError> for TlsError {
    fn from(e: NetError) -> Self {
        TlsError::Transport(e.to_string())
    }
}

/// Hash the handshake transcript: the concatenation of all handshake
/// messages exchanged so far, each length-prefixed.
pub fn transcript_hash(messages: &[Vec<u8>]) -> [u8; 32] {
    let mut hasher = Sha256::new();
    for message in messages {
        hasher.update(&(message.len() as u64).to_be_bytes());
        hasher.update(message);
    }
    hasher.finalize()
}

/// Compute a Finished payload: `HMAC(master_secret, label ‖ transcript)`.
/// Because this is a (keyed) hash, an attacker who controls the transcript
/// inputs still "cannot choose the input that send_finished encrypts, by the
/// hash function's non-invertibility" (§5.1.2).
pub fn finished_verify_data(master_secret: &[u8], label: &[u8], transcript: &[u8; 32]) -> Vec<u8> {
    let mut message = label.to_vec();
    message.extend_from_slice(transcript);
    hmac_sha256(master_secret, &message).to_vec()
}

/// Generate a fresh random contribution.
pub fn fresh_random(rng: &mut WedgeRng) -> [u8; RANDOM_LEN] {
    let mut random = [0u8; RANDOM_LEN];
    rng.fill_bytes(&mut random);
    random
}

/// Generate a fresh premaster secret.
pub fn fresh_premaster(rng: &mut WedgeRng) -> Vec<u8> {
    rng.bytes(PREMASTER_LEN)
}

/// Generate a fresh session id.
pub fn fresh_session_id(rng: &mut WedgeRng) -> SessionId {
    SessionId::from_bytes(&rng.bytes(16)).expect("16 bytes")
}

fn recv(link: &Duplex) -> Result<Vec<u8>, TlsError> {
    Ok(link.recv(RecvTimeout::After(HANDSHAKE_TIMEOUT))?)
}

// ---------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------

/// A (legitimate) SSL client. It trusts `server_public_key` out of band —
/// certificate handling is outside the paper's scope.
#[derive(Debug, Clone)]
pub struct TlsClient {
    /// The server's public key.
    pub server_public_key: RsaPublicKey,
    /// Client-side randomness.
    pub rng: WedgeRng,
    /// A cached session (id + premaster) from a previous connection, used
    /// to request resumption.
    pub cached_session: Option<(SessionId, Vec<u8>)>,
}

/// An established client-side connection.
#[derive(Debug, Clone)]
pub struct TlsClientConnection {
    send_layer: RecordLayer,
    recv_layer: RecordLayer,
    /// The session id the server assigned.
    pub session_id: SessionId,
    /// The keys derived for this connection (kept so tests can assert what
    /// an attacker would need to know).
    pub keys: SessionKeys,
    /// The premaster secret (kept for caching / resumption).
    pub premaster: Vec<u8>,
    /// Whether the handshake used session resumption.
    pub resumed: bool,
}

impl TlsClient {
    /// A client with no cached session.
    pub fn new(server_public_key: RsaPublicKey, rng: WedgeRng) -> TlsClient {
        TlsClient {
            server_public_key,
            rng,
            cached_session: None,
        }
    }

    /// Perform the handshake over `link`.
    pub fn connect(&mut self, link: &Duplex) -> Result<TlsClientConnection, TlsError> {
        let client_random = fresh_random(&mut self.rng);
        let hello = ClientHello {
            client_random,
            session_id: self.cached_session.as_ref().map(|(id, _)| *id),
        };
        let hello_bytes = hello.encode();
        link.send(&hello_bytes)?;
        let mut transcript = vec![hello_bytes];

        let server_hello_bytes = recv(link)?;
        let server_hello = ServerHello::decode(&server_hello_bytes)?;
        transcript.push(server_hello_bytes);

        let premaster = if server_hello.resumed {
            match &self.cached_session {
                Some((cached_id, premaster)) if *cached_id == server_hello.session_id => {
                    premaster.clone()
                }
                _ => {
                    return Err(TlsError::HandshakeFailed(
                        "server resumed a session we do not hold".to_string(),
                    ))
                }
            }
        } else {
            let premaster = fresh_premaster(&mut self.rng);
            let kx = ClientKeyExchange {
                encrypted_premaster: self.server_public_key.encrypt(&premaster),
            };
            let kx_bytes = kx.encode();
            link.send(&kx_bytes)?;
            transcript.push(kx_bytes);
            premaster
        };

        let keys = SessionKeys::derive(&premaster, &client_random, &server_hello.server_random);
        let mut send_layer = RecordLayer::new(
            &keys.material.client_write_key,
            &keys.material.client_mac_key,
        );
        let mut recv_layer = RecordLayer::new(
            &keys.material.server_write_key,
            &keys.material.server_mac_key,
        );

        // Client Finished.
        let th = transcript_hash(&transcript);
        let client_finished = Finished {
            verify_data: finished_verify_data(&keys.master_secret, CLIENT_FINISHED_LABEL, &th),
        };
        let client_finished_bytes = client_finished.encode();
        link.send(&send_layer.seal(&client_finished_bytes))?;
        transcript.push(client_finished_bytes);

        // Server Finished.
        let server_finished_record = recv(link)?;
        let server_finished = Finished::decode(&recv_layer.open(&server_finished_record)?)?;
        let th_final = transcript_hash(&transcript);
        let expected = finished_verify_data(&keys.master_secret, SERVER_FINISHED_LABEL, &th_final);
        if server_finished.verify_data != expected {
            return Err(TlsError::HandshakeFailed(
                "server Finished did not verify".to_string(),
            ));
        }

        // Remember the session for future resumption.
        self.cached_session = Some((server_hello.session_id, premaster.clone()));

        Ok(TlsClientConnection {
            send_layer,
            recv_layer,
            session_id: server_hello.session_id,
            keys,
            premaster,
            resumed: server_hello.resumed,
        })
    }
}

impl TlsClientConnection {
    /// Send application data.
    pub fn send(&mut self, link: &Duplex, data: &[u8]) -> Result<(), TlsError> {
        link.send(&self.send_layer.seal(data))?;
        Ok(())
    }

    /// Receive application data.
    pub fn recv(&mut self, link: &Duplex) -> Result<Vec<u8>, TlsError> {
        let record = recv(link)?;
        Ok(self.recv_layer.open(&record)?)
    }
}

// ---------------------------------------------------------------------
// Monolithic server (the vanilla baseline)
// ---------------------------------------------------------------------

/// An established server-side connection (monolithic server only; the
/// partitioned server keeps these pieces in separate compartments).
#[derive(Debug, Clone)]
pub struct ServerConnection {
    /// Layer that opens client→server records.
    pub from_client: RecordLayer,
    /// Layer that seals server→client records.
    pub to_client: RecordLayer,
    /// The session id assigned to this connection.
    pub session_id: SessionId,
    /// The derived keys (in a monolithic server these sit in the same
    /// address space as all request-parsing code — the vulnerability Wedge
    /// removes).
    pub keys: SessionKeys,
    /// Whether the connection resumed a cached session.
    pub resumed: bool,
}

impl ServerConnection {
    /// Receive application data from the client.
    pub fn recv(&mut self, link: &Duplex) -> Result<Vec<u8>, TlsError> {
        let record = recv(link)?;
        Ok(self.from_client.open(&record)?)
    }

    /// Send application data to the client.
    pub fn send(&mut self, link: &Duplex, data: &[u8]) -> Result<(), TlsError> {
        link.send(&self.to_client.seal(data))?;
        Ok(())
    }
}

/// Run the complete server side of the handshake in one compartment — the
/// monolithic OpenSSL behaviour the vanilla Apache baseline uses. The
/// private key, premaster, and session keys all live together here.
///
/// When the serving thread carries an ambient request trace, the whole
/// exchange lands as one `handshake` span (detail `1` when resumed,
/// `0` for a full key exchange; failures mark the span not-ok).
pub fn server_handshake(
    link: &Duplex,
    keypair: &RsaKeyPair,
    session_cache: &mut SessionCache,
    rng: &mut WedgeRng,
) -> Result<ServerConnection, TlsError> {
    let mut span = wedge_telemetry::trace::span(wedge_telemetry::SpanKind::Handshake, 0);
    let result = server_handshake_steps(link, keypair, session_cache, rng);
    if let Some(span) = span.as_mut() {
        span.set_ok(result.is_ok());
        if let Ok(conn) = &result {
            span.set_detail(conn.resumed as u32);
        }
    }
    result
}

fn server_handshake_steps(
    link: &Duplex,
    keypair: &RsaKeyPair,
    session_cache: &mut SessionCache,
    rng: &mut WedgeRng,
) -> Result<ServerConnection, TlsError> {
    let client_hello_bytes = recv(link)?;
    let client_hello = ClientHello::decode(&client_hello_bytes)?;
    let mut transcript = vec![client_hello_bytes];

    // Resumption decision.
    let cached_premaster = client_hello
        .session_id
        .and_then(|id| session_cache.lookup(&id).map(|pm| (id, pm)));
    let resumed = cached_premaster.is_some();
    let session_id = cached_premaster
        .as_ref()
        .map(|(id, _)| *id)
        .unwrap_or_else(|| fresh_session_id(rng));

    let server_random = fresh_random(rng);
    let server_hello = ServerHello {
        server_random,
        session_id,
        resumed,
    };
    let server_hello_bytes = server_hello.encode();
    link.send(&server_hello_bytes)?;
    transcript.push(server_hello_bytes);

    let premaster = match cached_premaster {
        Some((_, premaster)) => premaster,
        None => {
            let kx_bytes = recv(link)?;
            let kx = ClientKeyExchange::decode(&kx_bytes)?;
            transcript.push(kx_bytes);
            keypair
                .private
                .decrypt(&kx.encrypted_premaster)
                .map_err(|e| TlsError::Crypto(e.to_string()))?
        }
    };
    session_cache.insert(session_id, premaster.clone());

    let keys = SessionKeys::derive(&premaster, &client_hello.client_random, &server_random);
    let mut from_client = RecordLayer::new(
        &keys.material.client_write_key,
        &keys.material.client_mac_key,
    );
    let mut to_client = RecordLayer::new(
        &keys.material.server_write_key,
        &keys.material.server_mac_key,
    );

    // Client Finished.
    let client_finished_record = recv(link)?;
    let client_finished = Finished::decode(&from_client.open(&client_finished_record)?)?;
    let th = transcript_hash(&transcript);
    let expected = finished_verify_data(&keys.master_secret, CLIENT_FINISHED_LABEL, &th);
    if client_finished.verify_data != expected {
        return Err(TlsError::HandshakeFailed(
            "client Finished did not verify".to_string(),
        ));
    }
    transcript.push(client_finished.encode());

    // Server Finished.
    let th_final = transcript_hash(&transcript);
    let server_finished = Finished {
        verify_data: finished_verify_data(&keys.master_secret, SERVER_FINISHED_LABEL, &th_final),
    };
    link.send(&to_client.seal(&server_finished.encode()))?;

    Ok(ServerConnection {
        from_client,
        to_client,
        session_id,
        keys,
        resumed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wedge_net::duplex_pair;

    fn run_client_server(
        client: &mut TlsClient,
        keypair: RsaKeyPair,
        cache: &mut SessionCache,
    ) -> (TlsClientConnection, ServerConnection) {
        let (client_link, server_link) = duplex_pair("client", "server");
        let mut server_rng = WedgeRng::from_seed(99);
        // Drive the server on another thread; the client runs inline.
        let server = std::thread::spawn({
            let mut cache_local = std::mem::take(cache);
            move || {
                let conn =
                    server_handshake(&server_link, &keypair, &mut cache_local, &mut server_rng)
                        .expect("server handshake");
                (conn, cache_local, server_link)
            }
        });
        let client_conn = client.connect(&client_link).expect("client handshake");
        let (server_conn, cache_back, _server_link) = server.join().unwrap();
        *cache = cache_back;
        (client_conn, server_conn)
    }

    #[test]
    fn full_handshake_derives_matching_keys() {
        let keypair = RsaKeyPair::generate(&mut WedgeRng::from_seed(1));
        let mut client = TlsClient::new(keypair.public, WedgeRng::from_seed(2));
        let mut cache = SessionCache::new();
        let (client_conn, server_conn) = run_client_server(&mut client, keypair, &mut cache);
        assert_eq!(
            client_conn.keys.fingerprint(),
            server_conn.keys.fingerprint()
        );
        assert!(!client_conn.resumed);
        assert_eq!(client_conn.session_id, server_conn.session_id);
    }

    #[test]
    fn application_data_flows_both_ways() {
        let keypair = RsaKeyPair::generate(&mut WedgeRng::from_seed(3));
        let (client_link, server_link) = duplex_pair("client", "server");
        let server = std::thread::spawn(move || {
            let mut cache = SessionCache::new();
            let mut rng = WedgeRng::from_seed(4);
            let mut conn = server_handshake(&server_link, &keypair, &mut cache, &mut rng).unwrap();
            let request = conn.recv(&server_link).unwrap();
            assert_eq!(request, b"GET / HTTP/1.0");
            conn.send(&server_link, b"HTTP/1.0 200 OK\r\n\r\nhello")
                .unwrap();
        });
        let mut client = TlsClient::new(keypair.public, WedgeRng::from_seed(5));
        let mut conn = client.connect(&client_link).unwrap();
        conn.send(&client_link, b"GET / HTTP/1.0").unwrap();
        let response = conn.recv(&client_link).unwrap();
        assert!(response.starts_with(b"HTTP/1.0 200 OK"));
        server.join().unwrap();
    }

    #[test]
    fn session_resumption_skips_key_exchange_and_reuses_premaster() {
        let keypair = RsaKeyPair::generate(&mut WedgeRng::from_seed(6));
        let mut client = TlsClient::new(keypair.public, WedgeRng::from_seed(7));
        let mut cache = SessionCache::new();
        let (first, _server_first) = run_client_server(&mut client, keypair, &mut cache);
        assert!(!first.resumed);
        // Second connection with the same client (which cached the session).
        let (second, server_second) = run_client_server(&mut client, keypair, &mut cache);
        assert!(second.resumed);
        assert!(server_second.resumed);
        assert_eq!(second.premaster, first.premaster);
        // Keys still differ because the randoms differ per connection.
        assert_ne!(first.keys.fingerprint(), second.keys.fingerprint());
        assert_eq!(cache.stats().0, 1, "exactly one cache hit");
    }

    #[test]
    fn transcript_hash_is_order_sensitive() {
        let a = transcript_hash(&[b"one".to_vec(), b"two".to_vec()]);
        let b = transcript_hash(&[b"two".to_vec(), b"one".to_vec()]);
        let c = transcript_hash(&[b"onetwo".to_vec()]);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn finished_data_depends_on_master_label_and_transcript() {
        let th1 = transcript_hash(&[b"m1".to_vec()]);
        let th2 = transcript_hash(&[b"m2".to_vec()]);
        let base = finished_verify_data(b"master", CLIENT_FINISHED_LABEL, &th1);
        assert_ne!(
            base,
            finished_verify_data(b"other", CLIENT_FINISHED_LABEL, &th1)
        );
        assert_ne!(
            base,
            finished_verify_data(b"master", SERVER_FINISHED_LABEL, &th1)
        );
        assert_ne!(
            base,
            finished_verify_data(b"master", CLIENT_FINISHED_LABEL, &th2)
        );
    }

    #[test]
    fn tampered_client_finished_aborts_the_server() {
        let keypair = RsaKeyPair::generate(&mut WedgeRng::from_seed(8));
        let (client_link, server_link) = duplex_pair("client", "server");
        let server = std::thread::spawn(move || {
            let mut cache = SessionCache::new();
            let mut rng = WedgeRng::from_seed(9);
            server_handshake(&server_link, &keypair, &mut cache, &mut rng)
        });
        // A hand-rolled "client" that sends garbage instead of a proper
        // Finished record.
        let mut rng = WedgeRng::from_seed(10);
        let hello = ClientHello {
            client_random: fresh_random(&mut rng),
            session_id: None,
        };
        client_link.send(&hello.encode()).unwrap();
        let _server_hello = client_link
            .recv(RecvTimeout::After(HANDSHAKE_TIMEOUT))
            .unwrap();
        let premaster = fresh_premaster(&mut rng);
        let kx = ClientKeyExchange {
            encrypted_premaster: keypair.public.encrypt(&premaster),
        };
        client_link.send(&kx.encode()).unwrap();
        client_link.send(b"not a real record at all").unwrap();
        let result = server.join().unwrap();
        assert!(result.is_err(), "server must reject a bogus Finished");
    }
}
