//! The cachenet wire protocol: compact, length-prefixed, versioned
//! frames spoken over a [`wedge_net::Duplex`] link.
//!
//! One frame per link message. Every frame starts with the 3-byte header
//! `[MAGIC, VERSION, opcode]`; fixed-size fields follow little-endian,
//! variable-size fields carry a `u16` length prefix. The session id is
//! always its full 16 bytes. Responses additionally carry the serving
//! node's **epoch** (see `node.rs`) right after the header, so clients
//! can detect a restarted node from any reply.
//!
//! ```text
//! request  := hdr id(16)                 ; Lookup / Invalidate
//!           | hdr id(16) len(2) bytes    ; Insert
//!           | hdr                        ; Ping
//! response := hdr epoch(8) len(2) bytes  ; Hit / Err
//!           | hdr epoch(8)               ; Miss / Ok
//! ```
//!
//! Decoding is total: any byte string either decodes to exactly one frame
//! or fails with a structured [`ProtoError`] — never a panic, and never a
//! partial parse (trailing bytes are an error, so a frame boundary can
//! never silently swallow the start of the next frame). The fuzz tests in
//! `tests/proto_fuzz.rs` pin both properties.

use wedge_tls::SessionId;

/// First header byte of every cachenet frame.
pub const MAGIC: u8 = 0xC5;

/// Wire protocol version this build speaks. A node that receives a frame
/// with a different version answers [`Response::Err`] and ignores it —
/// mixed-version rings degrade to cache misses, not to corruption.
pub const WIRE_VERSION: u8 = 1;

/// Longest premaster secret (or error message) a frame can carry.
pub const MAX_PAYLOAD: usize = u16::MAX as usize;

const OP_LOOKUP: u8 = 0x01;
const OP_INSERT: u8 = 0x02;
const OP_INVALIDATE: u8 = 0x03;
const OP_PING: u8 = 0x04;
const OP_HIT: u8 = 0x81;
const OP_MISS: u8 = 0x82;
const OP_OK: u8 = 0x83;
const OP_ERR: u8 = 0x84;

const ID_LEN: usize = 16;

/// A client → node frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Fetch the premaster for a session id.
    Lookup(SessionId),
    /// Store the premaster for a session id (write-through from a ring).
    Insert(SessionId, Vec<u8>),
    /// Drop a session id outright (compromise response).
    Invalidate(SessionId),
    /// Health probe; also refreshes the client's view of the node epoch.
    Ping,
}

/// A node → client frame. Every variant carries the node's current epoch
/// so any response doubles as a restart detector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The session was found; its premaster follows.
    Hit {
        /// The serving node's epoch.
        epoch: u64,
        /// The stored premaster secret.
        premaster: Vec<u8>,
    },
    /// The session is unknown (or was stale and has been invalidated).
    Miss {
        /// The serving node's epoch.
        epoch: u64,
    },
    /// An `Insert`/`Invalidate`/`Ping` was applied.
    Ok {
        /// The serving node's epoch.
        epoch: u64,
    },
    /// The node could not act on the frame (bad version, malformed
    /// payload, oversize value). The link stays usable.
    Err {
        /// The serving node's epoch.
        epoch: u64,
        /// Human-readable reason, for logs and tests.
        message: String,
    },
}

/// Why a byte string failed to decode as a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// Fewer bytes than the smallest frame of this kind.
    Truncated,
    /// The first byte was not [`MAGIC`].
    BadMagic(u8),
    /// The version byte did not match [`WIRE_VERSION`].
    BadVersion(u8),
    /// The opcode is not defined (or is a response opcode in a request
    /// position, and vice versa).
    BadOpcode(u8),
    /// The declared payload length disagrees with the bytes present.
    BadLength {
        /// Bytes the length prefix promised.
        declared: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// Well-formed frame followed by garbage.
    TrailingBytes(usize),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "frame truncated"),
            ProtoError::BadMagic(b) => write!(f, "bad magic byte 0x{b:02x}"),
            ProtoError::BadVersion(v) => {
                write!(f, "unsupported wire version {v} (speaking {WIRE_VERSION})")
            }
            ProtoError::BadOpcode(op) => write!(f, "unknown opcode 0x{op:02x}"),
            ProtoError::BadLength {
                declared,
                available,
            } => write!(
                f,
                "length prefix says {declared} bytes, {available} present"
            ),
            ProtoError::TrailingBytes(n) => write!(f, "{n} trailing bytes after frame"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// Write a `u16`-length-prefixed field. Payloads are capped at
/// [`MAX_PAYLOAD`] by the frame format itself; encoding something larger
/// is a caller bug (real premasters are 48 bytes, error messages a few
/// dozen) — debug builds assert, release builds truncate rather than
/// emit an undecodable frame. Nodes independently refuse oversize
/// `Insert` values, so a truncated secret can never be *stored* silently.
fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    debug_assert!(
        bytes.len() <= MAX_PAYLOAD,
        "cachenet frame payload exceeds MAX_PAYLOAD ({} > {MAX_PAYLOAD})",
        bytes.len()
    );
    let len = bytes.len().min(MAX_PAYLOAD);
    out.extend_from_slice(&(len as u16).to_le_bytes());
    out.extend_from_slice(&bytes[..len]);
}

/// A cursor over a frame body with total (never-panicking) reads.
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        if self.bytes.len() - self.at < n {
            return Err(ProtoError::Truncated);
        }
        let slice = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(slice)
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn session_id(&mut self) -> Result<SessionId, ProtoError> {
        let bytes = self.take(ID_LEN)?;
        Ok(SessionId::from_bytes(bytes).expect("16 bytes"))
    }

    fn var_bytes(&mut self) -> Result<Vec<u8>, ProtoError> {
        let declared = u16::from_le_bytes(self.take(2)?.try_into().expect("2")) as usize;
        let available = self.bytes.len() - self.at;
        if available < declared {
            return Err(ProtoError::BadLength {
                declared,
                available,
            });
        }
        Ok(self.take(declared)?.to_vec())
    }

    fn finish(self) -> Result<(), ProtoError> {
        let rest = self.bytes.len() - self.at;
        if rest == 0 {
            Ok(())
        } else {
            Err(ProtoError::TrailingBytes(rest))
        }
    }
}

fn header(bytes: &[u8]) -> Result<(u8, Reader<'_>), ProtoError> {
    if bytes.len() < 3 {
        return Err(ProtoError::Truncated);
    }
    if bytes[0] != MAGIC {
        return Err(ProtoError::BadMagic(bytes[0]));
    }
    if bytes[1] != WIRE_VERSION {
        return Err(ProtoError::BadVersion(bytes[1]));
    }
    Ok((bytes[2], Reader { bytes, at: 3 }))
}

fn frame(opcode: u8) -> Vec<u8> {
    vec![MAGIC, WIRE_VERSION, opcode]
}

impl Request {
    /// Encode to one wire frame (one link message).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Request::Lookup(id) => {
                let mut out = frame(OP_LOOKUP);
                out.extend_from_slice(id.as_bytes());
                out
            }
            Request::Insert(id, premaster) => {
                let mut out = frame(OP_INSERT);
                out.extend_from_slice(id.as_bytes());
                put_bytes(&mut out, premaster);
                out
            }
            Request::Invalidate(id) => {
                let mut out = frame(OP_INVALIDATE);
                out.extend_from_slice(id.as_bytes());
                out
            }
            Request::Ping => frame(OP_PING),
        }
    }

    /// Decode one wire frame. Total: returns a structured error for any
    /// input that is not exactly one valid request frame.
    pub fn decode(bytes: &[u8]) -> Result<Request, ProtoError> {
        let (opcode, mut reader) = header(bytes)?;
        let request = match opcode {
            OP_LOOKUP => Request::Lookup(reader.session_id()?),
            OP_INSERT => {
                let id = reader.session_id()?;
                let premaster = reader.var_bytes()?;
                Request::Insert(id, premaster)
            }
            OP_INVALIDATE => Request::Invalidate(reader.session_id()?),
            OP_PING => Request::Ping,
            other => return Err(ProtoError::BadOpcode(other)),
        };
        reader.finish()?;
        Ok(request)
    }
}

impl Response {
    /// Encode to one wire frame (one link message).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Response::Hit { epoch, premaster } => {
                let mut out = frame(OP_HIT);
                out.extend_from_slice(&epoch.to_le_bytes());
                put_bytes(&mut out, premaster);
                out
            }
            Response::Miss { epoch } => {
                let mut out = frame(OP_MISS);
                out.extend_from_slice(&epoch.to_le_bytes());
                out
            }
            Response::Ok { epoch } => {
                let mut out = frame(OP_OK);
                out.extend_from_slice(&epoch.to_le_bytes());
                out
            }
            Response::Err { epoch, message } => {
                let mut out = frame(OP_ERR);
                out.extend_from_slice(&epoch.to_le_bytes());
                put_bytes(&mut out, message.as_bytes());
                out
            }
        }
    }

    /// Decode one wire frame. Total, like [`Request::decode`].
    pub fn decode(bytes: &[u8]) -> Result<Response, ProtoError> {
        let (opcode, mut reader) = header(bytes)?;
        let response = match opcode {
            OP_HIT => {
                let epoch = reader.u64()?;
                let premaster = reader.var_bytes()?;
                Response::Hit { epoch, premaster }
            }
            OP_MISS => Response::Miss {
                epoch: reader.u64()?,
            },
            OP_OK => Response::Ok {
                epoch: reader.u64()?,
            },
            OP_ERR => {
                let epoch = reader.u64()?;
                let message = String::from_utf8_lossy(&reader.var_bytes()?).into_owned();
                Response::Err { epoch, message }
            }
            other => return Err(ProtoError::BadOpcode(other)),
        };
        reader.finish()?;
        Ok(response)
    }

    /// The epoch stamped on this response, whatever the variant.
    pub fn epoch(&self) -> u64 {
        match self {
            Response::Hit { epoch, .. }
            | Response::Miss { epoch }
            | Response::Ok { epoch }
            | Response::Err { epoch, .. } => *epoch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(byte: u8) -> SessionId {
        SessionId::from_bytes(&[byte; 16]).unwrap()
    }

    #[test]
    fn requests_round_trip() {
        for request in [
            Request::Lookup(id(1)),
            Request::Insert(id(2), b"premaster-bytes".to_vec()),
            Request::Insert(id(3), Vec::new()),
            Request::Invalidate(id(4)),
            Request::Ping,
        ] {
            let wire = request.encode();
            assert_eq!(Request::decode(&wire).unwrap(), request, "{request:?}");
        }
    }

    #[test]
    fn responses_round_trip() {
        for response in [
            Response::Hit {
                epoch: 7,
                premaster: b"secret".to_vec(),
            },
            Response::Miss { epoch: 0 },
            Response::Ok { epoch: u64::MAX },
            Response::Err {
                epoch: 3,
                message: "bad version".to_string(),
            },
        ] {
            let wire = response.encode();
            assert_eq!(Response::decode(&wire).unwrap(), response, "{response:?}");
        }
    }

    #[test]
    fn header_errors_are_structured() {
        assert_eq!(Request::decode(&[]), Err(ProtoError::Truncated));
        assert_eq!(
            Request::decode(&[MAGIC, WIRE_VERSION]),
            Err(ProtoError::Truncated)
        );
        let mut wire = Request::Ping.encode();
        wire[0] ^= 0xFF;
        assert!(matches!(
            Request::decode(&wire),
            Err(ProtoError::BadMagic(_))
        ));
        let mut wire = Request::Ping.encode();
        wire[1] = WIRE_VERSION + 1;
        assert_eq!(
            Request::decode(&wire),
            Err(ProtoError::BadVersion(WIRE_VERSION + 1))
        );
        let mut wire = Request::Ping.encode();
        wire[2] = 0x7F;
        assert_eq!(Request::decode(&wire), Err(ProtoError::BadOpcode(0x7F)));
    }

    #[test]
    fn response_opcodes_do_not_decode_as_requests() {
        let wire = Response::Miss { epoch: 1 }.encode();
        assert!(matches!(
            Request::decode(&wire),
            Err(ProtoError::BadOpcode(_))
        ));
        let wire = Request::Ping.encode();
        assert!(matches!(
            Response::decode(&wire),
            Err(ProtoError::BadOpcode(_))
        ));
    }

    #[test]
    fn length_prefix_must_match_the_bytes_present() {
        let mut wire = Request::Insert(id(5), b"12345678".to_vec()).encode();
        // Claim more bytes than follow.
        let len_at = 3 + 16;
        wire[len_at] = 0xFF;
        wire[len_at + 1] = 0x00;
        assert!(matches!(
            Request::decode(&wire),
            Err(ProtoError::BadLength { .. })
        ));
        // Trailing garbage after a well-formed frame is refused too.
        let mut wire = Request::Lookup(id(6)).encode();
        wire.push(0xAA);
        assert_eq!(Request::decode(&wire), Err(ProtoError::TrailingBytes(1)));
    }
}
