//! The cachenet wire protocol: compact, length-prefixed, versioned
//! frames spoken over a [`wedge_net::Duplex`] link.
//!
//! One frame per link message. Version 2 — what this build speaks —
//! stamps every frame with a **`u16` request id** right after the 3-byte
//! header `[MAGIC, VERSION, opcode]`, so a client can keep many requests
//! in flight on one link (pipelining) and pair each reply with its
//! request no matter the order replies arrive in. Fixed-size fields are
//! little-endian, variable-size fields carry a `u16` length prefix, and
//! the session id is always its full 16 bytes. Responses additionally
//! carry the serving node's **epoch** (see `node.rs`) right after the
//! request id, so clients detect a restarted node from any reply.
//!
//! ```text
//! hdr      := MAGIC ver(1) opcode rid(2)       ; ver = 2
//! request  := hdr id(16)                       ; Lookup / Invalidate
//!           | hdr id(16) len(2) bytes          ; Insert
//!           | hdr                              ; Ping
//!           | hdr n(2) id(16)*n                ; LookupBatch
//!           | hdr n(2) (id(16) len(2) bytes)*n ; InsertBatch
//! response := hdr epoch(8) len(2) bytes        ; Hit / Err
//!           | hdr epoch(8)                     ; Miss / Ok
//!           | hdr epoch(8) n(2) result*n       ; Batch
//! result   := 0x00 | 0x01 len(2) bytes         ; per-key miss / hit
//! ext      := 0x54 trace_id(8) span_id(4)      ; optional, v2 requests only
//! ```
//!
//! **Trace extension:** a v2 *request* may append one optional trailing
//! block `ext := 0x54 trace_id(8) span_id(4)` carrying the sender's
//! request-trace context, so a remote node's server-side spans join the
//! same causal trace. The block is exactly [`TRACE_EXT_LEN`] bytes, so a
//! decoder can tell "body then extension" from "body then garbage"
//! without ambiguity: anything trailing that is not a whole, tagged
//! extension stays a [`ProtoError::TrailingBytes`] error. Peers that
//! predate the extension never send it ([`Request::encode`] emits none)
//! and never receive it unless asked ([`Request::encode_traced`] with
//! `None` is byte-identical to [`Request::encode`]). Responses and v1
//! frames never carry it.
//!
//! **Version negotiation:** decoders accept version 1 frames too (the
//! pre-pipelining format: same layouts, no request id, no batch ops) and
//! report them with `request_id: None`; a node answers a v1 frame with a
//! v1 reply. Batch ops do not exist in v1 — [`Request::encode_v1`]
//! returns `None` for them, and a v1 frame carrying a batch opcode fails
//! with [`ProtoError::BadOpcode`]. Any other version byte fails with
//! [`ProtoError::BadVersion`]; mixed-version rings degrade to cache
//! misses, never to corruption.
//!
//! Decoding is total: any byte string either decodes to exactly one frame
//! or fails with a structured [`ProtoError`] — never a panic, and never a
//! partial parse (trailing bytes are an error, so a frame boundary can
//! never silently swallow the start of the next frame). Batches are
//! bounded by [`MAX_BATCH_KEYS`] at decode time, so a hostile length
//! prefix cannot force a giant allocation. The fuzz tests in
//! `tests/proto_fuzz.rs` pin all of these properties.

use wedge_telemetry::TraceContext;
use wedge_tls::SessionId;

/// First header byte of every cachenet frame.
pub const MAGIC: u8 = 0xC5;

/// Tag byte opening the optional trailing trace extension on a v2
/// request frame (`'T'`).
pub const TRACE_EXT_TAG: u8 = 0x54;

/// Total size of the trace extension: tag + trace id + span id.
pub const TRACE_EXT_LEN: usize = 1 + 8 + 4;

/// Wire protocol version this build speaks: v2 (request ids + batch
/// ops). Decoders also accept [`V1_WIRE_VERSION`] frames.
pub const WIRE_VERSION: u8 = 2;

/// The pre-pipelining wire version, still decoded for compatibility: no
/// request id after the header, no batch opcodes.
pub const V1_WIRE_VERSION: u8 = 1;

/// Longest premaster secret (or error message) a frame can carry.
pub const MAX_PAYLOAD: usize = u16::MAX as usize;

/// Most keys one `LookupBatch`/`InsertBatch`/`Batch` frame can carry.
/// Decoders refuse larger counts with [`ProtoError::BatchTooLarge`]
/// before allocating, so a hostile count prefix cannot balloon memory.
pub const MAX_BATCH_KEYS: usize = 1024;

const OP_LOOKUP: u8 = 0x01;
const OP_INSERT: u8 = 0x02;
const OP_INVALIDATE: u8 = 0x03;
const OP_PING: u8 = 0x04;
const OP_LOOKUP_BATCH: u8 = 0x05;
const OP_INSERT_BATCH: u8 = 0x06;
const OP_HIT: u8 = 0x81;
const OP_MISS: u8 = 0x82;
const OP_OK: u8 = 0x83;
const OP_ERR: u8 = 0x84;
const OP_BATCH: u8 = 0x85;

const ID_LEN: usize = 16;

/// A client → node frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Fetch the premaster for a session id.
    Lookup(SessionId),
    /// Store the premaster for a session id (write-through from a ring).
    Insert(SessionId, Vec<u8>),
    /// Drop a session id outright (compromise response).
    Invalidate(SessionId),
    /// Health probe; also refreshes the client's view of the node epoch.
    Ping,
    /// Fetch many premasters in one round trip (v2 only). Answered by
    /// [`Response::Batch`] with one result per key, in key order.
    LookupBatch(Vec<SessionId>),
    /// Store many sessions in one round trip (v2 only). All-or-nothing:
    /// a single oversize premaster refuses the whole batch.
    InsertBatch(Vec<(SessionId, Vec<u8>)>),
}

/// A node → client frame. Every variant carries the node's current epoch
/// so any response doubles as a restart detector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The session was found; its premaster follows.
    Hit {
        /// The serving node's epoch.
        epoch: u64,
        /// The stored premaster secret.
        premaster: Vec<u8>,
    },
    /// The session is unknown (or was stale and has been invalidated).
    Miss {
        /// The serving node's epoch.
        epoch: u64,
    },
    /// An `Insert`/`Invalidate`/`Ping`/`InsertBatch` was applied.
    Ok {
        /// The serving node's epoch.
        epoch: u64,
    },
    /// The node could not act on the frame (bad version, malformed
    /// payload, oversize value). The link stays usable.
    Err {
        /// The serving node's epoch.
        epoch: u64,
        /// Human-readable reason, for logs and tests.
        message: String,
    },
    /// Per-key results for a `LookupBatch`, in request key order:
    /// `Some(premaster)` is a hit, `None` a miss (v2 only).
    Batch {
        /// The serving node's epoch.
        epoch: u64,
        /// One entry per requested key, in request order.
        results: Vec<Option<Vec<u8>>>,
    },
}

/// A decoded request plus its framing: `request_id` is `Some` for v2
/// frames and `None` for v1 frames (whose replies must also be v1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FramedRequest {
    /// The pipelining id to echo on the reply; `None` for a v1 frame.
    pub request_id: Option<u16>,
    /// The decoded request.
    pub request: Request,
    /// The sender's trace context, when the frame carried the trace
    /// extension (`parent_id` 0 — the wire does not ship span ancestry;
    /// a node joins the trace with [`wedge_telemetry::Tracer::join_remote`],
    /// parenting its server-side span on `span_id`).
    pub trace: Option<TraceContext>,
}

/// A decoded response plus its framing, mirroring [`FramedRequest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FramedResponse {
    /// The request id this reply answers; `None` for a v1 frame.
    pub request_id: Option<u16>,
    /// The decoded response.
    pub response: Response,
}

/// Why a byte string failed to decode as a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// Fewer bytes than the smallest frame of this kind.
    Truncated,
    /// The first byte was not [`MAGIC`].
    BadMagic(u8),
    /// The version byte was neither [`WIRE_VERSION`] nor
    /// [`V1_WIRE_VERSION`].
    BadVersion(u8),
    /// The opcode is not defined for the frame's version (or is a
    /// response opcode in a request position, and vice versa).
    BadOpcode(u8),
    /// The declared payload length disagrees with the bytes present.
    BadLength {
        /// Bytes the length prefix promised.
        declared: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// A batch frame declared more keys than [`MAX_BATCH_KEYS`].
    BatchTooLarge(usize),
    /// A `Batch` per-key result tag was neither miss (0) nor hit (1).
    BadBatchTag(u8),
    /// Well-formed frame followed by garbage.
    TrailingBytes(usize),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "frame truncated"),
            ProtoError::BadMagic(b) => write!(f, "bad magic byte 0x{b:02x}"),
            ProtoError::BadVersion(v) => {
                write!(f, "unsupported wire version {v} (speaking {WIRE_VERSION})")
            }
            ProtoError::BadOpcode(op) => write!(f, "unknown opcode 0x{op:02x}"),
            ProtoError::BadLength {
                declared,
                available,
            } => write!(
                f,
                "length prefix says {declared} bytes, {available} present"
            ),
            ProtoError::BatchTooLarge(n) => {
                write!(f, "batch declares {n} keys, limit {MAX_BATCH_KEYS}")
            }
            ProtoError::BadBatchTag(tag) => write!(f, "bad batch result tag 0x{tag:02x}"),
            ProtoError::TrailingBytes(n) => write!(f, "{n} trailing bytes after frame"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// Write a `u16`-length-prefixed field. Payloads are capped at
/// [`MAX_PAYLOAD`] by the frame format itself; encoding something larger
/// is a caller bug (real premasters are 48 bytes, error messages a few
/// dozen) — debug builds assert, release builds truncate rather than
/// emit an undecodable frame. Nodes independently refuse oversize
/// `Insert` values, so a truncated secret can never be *stored* silently.
fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    debug_assert!(
        bytes.len() <= MAX_PAYLOAD,
        "cachenet frame payload exceeds MAX_PAYLOAD ({} > {MAX_PAYLOAD})",
        bytes.len()
    );
    let len = bytes.len().min(MAX_PAYLOAD);
    out.extend_from_slice(&(len as u16).to_le_bytes());
    out.extend_from_slice(&bytes[..len]);
}

/// Write a batch count. Encoding more than [`MAX_BATCH_KEYS`] entries is
/// a caller bug (the ring caps its coalescing far below it) — debug
/// builds assert; release builds emit the true count, which the decoder
/// then refuses with [`ProtoError::BatchTooLarge`] rather than parsing a
/// silently truncated batch.
fn put_count(out: &mut Vec<u8>, n: usize) {
    debug_assert!(
        n <= MAX_BATCH_KEYS,
        "cachenet batch exceeds MAX_BATCH_KEYS ({n} > {MAX_BATCH_KEYS})"
    );
    out.extend_from_slice(&(n.min(u16::MAX as usize) as u16).to_le_bytes());
}

/// A cursor over a frame body with total (never-panicking) reads.
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        if self.bytes.len() - self.at < n {
            return Err(ProtoError::Truncated);
        }
        let slice = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtoError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn session_id(&mut self) -> Result<SessionId, ProtoError> {
        let bytes = self.take(ID_LEN)?;
        Ok(SessionId::from_bytes(bytes).expect("16 bytes"))
    }

    fn var_bytes(&mut self) -> Result<Vec<u8>, ProtoError> {
        let declared = self.u16()? as usize;
        let available = self.bytes.len() - self.at;
        if available < declared {
            return Err(ProtoError::BadLength {
                declared,
                available,
            });
        }
        Ok(self.take(declared)?.to_vec())
    }

    fn batch_count(&mut self) -> Result<usize, ProtoError> {
        let declared = self.u16()? as usize;
        if declared > MAX_BATCH_KEYS {
            return Err(ProtoError::BatchTooLarge(declared));
        }
        Ok(declared)
    }

    fn finish(self) -> Result<(), ProtoError> {
        let rest = self.bytes.len() - self.at;
        if rest == 0 {
            Ok(())
        } else {
            Err(ProtoError::TrailingBytes(rest))
        }
    }

    /// Consume the optional trailing trace extension of a v2 request.
    /// Exactly nothing, or exactly one whole tagged block, may follow
    /// the body — any other trailer is the same [`ProtoError::TrailingBytes`]
    /// garbage it always was.
    fn finish_with_trace_ext(mut self) -> Result<Option<TraceContext>, ProtoError> {
        let rest = self.bytes.len() - self.at;
        if rest == 0 {
            return Ok(None);
        }
        if rest != TRACE_EXT_LEN || self.bytes[self.at] != TRACE_EXT_TAG {
            return Err(ProtoError::TrailingBytes(rest));
        }
        self.at += 1;
        let trace_id = self.u64()?;
        let span_id = u32::from_le_bytes(self.take(4)?.try_into().expect("4"));
        self.finish()?;
        Ok(Some(TraceContext {
            trace_id,
            span_id,
            parent_id: 0,
        }))
    }
}

/// Parse the common header. Returns the version (1 or 2), the opcode,
/// the request id (`None` for v1) and a reader positioned at the body.
fn header(bytes: &[u8]) -> Result<(u8, Option<u16>, Reader<'_>), ProtoError> {
    if bytes.len() < 3 {
        return Err(ProtoError::Truncated);
    }
    if bytes[0] != MAGIC {
        return Err(ProtoError::BadMagic(bytes[0]));
    }
    match bytes[1] {
        V1_WIRE_VERSION => Ok((bytes[2], None, Reader { bytes, at: 3 })),
        WIRE_VERSION => {
            let mut reader = Reader { bytes, at: 3 };
            let request_id = reader.u16()?;
            Ok((bytes[2], Some(request_id), reader))
        }
        other => Err(ProtoError::BadVersion(other)),
    }
}

fn frame(opcode: u8, request_id: u16) -> Vec<u8> {
    let mut out = vec![MAGIC, WIRE_VERSION, opcode];
    out.extend_from_slice(&request_id.to_le_bytes());
    out
}

fn frame_v1(opcode: u8) -> Vec<u8> {
    vec![MAGIC, V1_WIRE_VERSION, opcode]
}

/// Cheaply extract the request id of a v2 frame without decoding the
/// body — what a node's error path uses to echo the id of a frame whose
/// body it could not parse. `None` for v1 frames and anything too
/// mangled to carry an id.
pub fn peek_request_id(bytes: &[u8]) -> Option<u16> {
    if bytes.len() >= 5 && bytes[0] == MAGIC && bytes[1] == WIRE_VERSION {
        Some(u16::from_le_bytes([bytes[3], bytes[4]]))
    } else {
        None
    }
}

impl Request {
    fn body(&self, out: &mut Vec<u8>) {
        match self {
            Request::Lookup(id) | Request::Invalidate(id) => {
                out.extend_from_slice(id.as_bytes());
            }
            Request::Insert(id, premaster) => {
                out.extend_from_slice(id.as_bytes());
                put_bytes(out, premaster);
            }
            Request::Ping => {}
            Request::LookupBatch(ids) => {
                put_count(out, ids.len());
                for id in ids.iter().take(MAX_BATCH_KEYS) {
                    out.extend_from_slice(id.as_bytes());
                }
            }
            Request::InsertBatch(entries) => {
                put_count(out, entries.len());
                for (id, premaster) in entries.iter().take(MAX_BATCH_KEYS) {
                    out.extend_from_slice(id.as_bytes());
                    put_bytes(out, premaster);
                }
            }
        }
    }

    fn opcode(&self) -> u8 {
        match self {
            Request::Lookup(_) => OP_LOOKUP,
            Request::Insert(..) => OP_INSERT,
            Request::Invalidate(_) => OP_INVALIDATE,
            Request::Ping => OP_PING,
            Request::LookupBatch(_) => OP_LOOKUP_BATCH,
            Request::InsertBatch(_) => OP_INSERT_BATCH,
        }
    }

    /// Encode to one v2 wire frame stamped with `request_id`.
    pub fn encode(&self, request_id: u16) -> Vec<u8> {
        let mut out = frame(self.opcode(), request_id);
        self.body(&mut out);
        out
    }

    /// [`Request::encode`], optionally appending the trace extension.
    /// `trace: None` is byte-identical to [`Request::encode`], so an
    /// untraced client is indistinguishable from one predating the
    /// extension.
    pub fn encode_traced(&self, request_id: u16, trace: Option<TraceContext>) -> Vec<u8> {
        let mut out = self.encode(request_id);
        if let Some(ctx) = trace {
            out.push(TRACE_EXT_TAG);
            out.extend_from_slice(&ctx.trace_id.to_le_bytes());
            out.extend_from_slice(&ctx.span_id.to_le_bytes());
        }
        out
    }

    /// Encode to a v1 frame (no request id). `None` for the batch ops,
    /// which do not exist in v1 — a v1-only peer can never be sent one.
    pub fn encode_v1(&self) -> Option<Vec<u8>> {
        if matches!(self, Request::LookupBatch(_) | Request::InsertBatch(_)) {
            return None;
        }
        let mut out = frame_v1(self.opcode());
        self.body(&mut out);
        Some(out)
    }

    /// Decode one wire frame, v2 or v1. Total: returns a structured
    /// error for any input that is not exactly one valid request frame.
    pub fn decode(bytes: &[u8]) -> Result<FramedRequest, ProtoError> {
        let (opcode, request_id, mut reader) = header(bytes)?;
        let request = match opcode {
            OP_LOOKUP => Request::Lookup(reader.session_id()?),
            OP_INSERT => {
                let id = reader.session_id()?;
                let premaster = reader.var_bytes()?;
                Request::Insert(id, premaster)
            }
            OP_INVALIDATE => Request::Invalidate(reader.session_id()?),
            OP_PING => Request::Ping,
            OP_LOOKUP_BATCH if request_id.is_some() => {
                let count = reader.batch_count()?;
                let mut ids = Vec::with_capacity(count);
                for _ in 0..count {
                    ids.push(reader.session_id()?);
                }
                Request::LookupBatch(ids)
            }
            OP_INSERT_BATCH if request_id.is_some() => {
                let count = reader.batch_count()?;
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    let id = reader.session_id()?;
                    let premaster = reader.var_bytes()?;
                    entries.push((id, premaster));
                }
                Request::InsertBatch(entries)
            }
            other => return Err(ProtoError::BadOpcode(other)),
        };
        // Only v2 requests may carry the trailing trace extension; a v1
        // trailer is garbage exactly as before.
        let trace = if request_id.is_some() {
            reader.finish_with_trace_ext()?
        } else {
            reader.finish()?;
            None
        };
        Ok(FramedRequest {
            request_id,
            request,
            trace,
        })
    }
}

impl Response {
    fn body(&self, out: &mut Vec<u8>) {
        match self {
            Response::Hit { epoch, premaster } => {
                out.extend_from_slice(&epoch.to_le_bytes());
                put_bytes(out, premaster);
            }
            Response::Miss { epoch } | Response::Ok { epoch } => {
                out.extend_from_slice(&epoch.to_le_bytes());
            }
            Response::Err { epoch, message } => {
                out.extend_from_slice(&epoch.to_le_bytes());
                put_bytes(out, message.as_bytes());
            }
            Response::Batch { epoch, results } => {
                out.extend_from_slice(&epoch.to_le_bytes());
                put_count(out, results.len());
                for result in results.iter().take(MAX_BATCH_KEYS) {
                    match result {
                        Some(premaster) => {
                            out.push(1);
                            put_bytes(out, premaster);
                        }
                        None => out.push(0),
                    }
                }
            }
        }
    }

    fn opcode(&self) -> u8 {
        match self {
            Response::Hit { .. } => OP_HIT,
            Response::Miss { .. } => OP_MISS,
            Response::Ok { .. } => OP_OK,
            Response::Err { .. } => OP_ERR,
            Response::Batch { .. } => OP_BATCH,
        }
    }

    /// Encode to one v2 wire frame echoing `request_id`.
    pub fn encode(&self, request_id: u16) -> Vec<u8> {
        let mut out = frame(self.opcode(), request_id);
        self.body(&mut out);
        out
    }

    /// Encode to a v1 frame (no request id). `None` for [`Response::Batch`],
    /// which does not exist in v1 — v1 requests never elicit one.
    pub fn encode_v1(&self) -> Option<Vec<u8>> {
        if matches!(self, Response::Batch { .. }) {
            return None;
        }
        let mut out = frame_v1(self.opcode());
        self.body(&mut out);
        Some(out)
    }

    /// Decode one wire frame, v2 or v1. Total, like [`Request::decode`].
    pub fn decode(bytes: &[u8]) -> Result<FramedResponse, ProtoError> {
        let (opcode, request_id, mut reader) = header(bytes)?;
        let response = match opcode {
            OP_HIT => {
                let epoch = reader.u64()?;
                let premaster = reader.var_bytes()?;
                Response::Hit { epoch, premaster }
            }
            OP_MISS => Response::Miss {
                epoch: reader.u64()?,
            },
            OP_OK => Response::Ok {
                epoch: reader.u64()?,
            },
            OP_ERR => {
                let epoch = reader.u64()?;
                let message = String::from_utf8_lossy(&reader.var_bytes()?).into_owned();
                Response::Err { epoch, message }
            }
            OP_BATCH if request_id.is_some() => {
                let epoch = reader.u64()?;
                let count = reader.batch_count()?;
                let mut results = Vec::with_capacity(count);
                for _ in 0..count {
                    match reader.u8()? {
                        0 => results.push(None),
                        1 => results.push(Some(reader.var_bytes()?)),
                        tag => return Err(ProtoError::BadBatchTag(tag)),
                    }
                }
                Response::Batch { epoch, results }
            }
            other => return Err(ProtoError::BadOpcode(other)),
        };
        reader.finish()?;
        Ok(FramedResponse {
            request_id,
            response,
        })
    }

    /// The epoch stamped on this response, whatever the variant.
    pub fn epoch(&self) -> u64 {
        match self {
            Response::Hit { epoch, .. }
            | Response::Miss { epoch }
            | Response::Ok { epoch }
            | Response::Err { epoch, .. }
            | Response::Batch { epoch, .. } => *epoch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(byte: u8) -> SessionId {
        SessionId::from_bytes(&[byte; 16]).unwrap()
    }

    #[test]
    fn requests_round_trip_with_their_ids() {
        for (rid, request) in [
            (0u16, Request::Lookup(id(1))),
            (1, Request::Insert(id(2), b"premaster-bytes".to_vec())),
            (u16::MAX, Request::Insert(id(3), Vec::new())),
            (7, Request::Invalidate(id(4))),
            (42, Request::Ping),
            (9, Request::LookupBatch(vec![])),
            (10, Request::LookupBatch(vec![id(5), id(6)])),
            (11, Request::InsertBatch(vec![])),
            (
                12,
                Request::InsertBatch(vec![(id(7), b"a".to_vec()), (id(8), Vec::new())]),
            ),
        ] {
            let wire = request.encode(rid);
            let framed = Request::decode(&wire).unwrap();
            assert_eq!(framed.request_id, Some(rid), "{request:?}");
            assert_eq!(framed.request, request, "{request:?}");
        }
    }

    #[test]
    fn responses_round_trip_with_their_ids() {
        for (rid, response) in [
            (
                3u16,
                Response::Hit {
                    epoch: 7,
                    premaster: b"secret".to_vec(),
                },
            ),
            (0, Response::Miss { epoch: 0 }),
            (u16::MAX, Response::Ok { epoch: u64::MAX }),
            (
                5,
                Response::Err {
                    epoch: 3,
                    message: "bad version".to_string(),
                },
            ),
            (
                6,
                Response::Batch {
                    epoch: 2,
                    results: vec![Some(b"pm".to_vec()), None, Some(Vec::new())],
                },
            ),
            (
                8,
                Response::Batch {
                    epoch: 1,
                    results: vec![],
                },
            ),
        ] {
            let wire = response.encode(rid);
            let framed = Response::decode(&wire).unwrap();
            assert_eq!(framed.request_id, Some(rid), "{response:?}");
            assert_eq!(framed.response, response, "{response:?}");
        }
    }

    #[test]
    fn v1_frames_still_decode_without_an_id() {
        let request = Request::Insert(id(9), b"pm".to_vec());
        let wire = request.encode_v1().expect("v1-expressible");
        assert_eq!(wire[1], V1_WIRE_VERSION);
        let framed = Request::decode(&wire).unwrap();
        assert_eq!(framed.request_id, None);
        assert_eq!(framed.request, request);

        let response = Response::Hit {
            epoch: 4,
            premaster: b"pm".to_vec(),
        };
        let wire = response.encode_v1().expect("v1-expressible");
        let framed = Response::decode(&wire).unwrap();
        assert_eq!(framed.request_id, None);
        assert_eq!(framed.response, response);
    }

    #[test]
    fn batch_ops_are_not_expressible_in_v1() {
        assert_eq!(Request::LookupBatch(vec![id(1)]).encode_v1(), None);
        assert_eq!(Request::InsertBatch(vec![]).encode_v1(), None);
        assert_eq!(
            Response::Batch {
                epoch: 1,
                results: vec![]
            }
            .encode_v1(),
            None
        );
        // A v1 frame smuggling a batch opcode is refused, not misparsed.
        let mut wire = Request::LookupBatch(vec![id(1)]).encode(0);
        wire[1] = V1_WIRE_VERSION;
        wire.drain(3..5); // strip the request id v1 never carries
        assert!(matches!(
            Request::decode(&wire),
            Err(ProtoError::BadOpcode(OP_LOOKUP_BATCH))
        ));
    }

    #[test]
    fn header_errors_are_structured() {
        assert_eq!(Request::decode(&[]), Err(ProtoError::Truncated));
        assert_eq!(
            Request::decode(&[MAGIC, WIRE_VERSION]),
            Err(ProtoError::Truncated)
        );
        // A v2 header cut off before its request id is truncated too.
        assert_eq!(
            Request::decode(&[MAGIC, WIRE_VERSION, OP_PING, 0]),
            Err(ProtoError::Truncated)
        );
        let mut wire = Request::Ping.encode(0);
        wire[0] ^= 0xFF;
        assert!(matches!(
            Request::decode(&wire),
            Err(ProtoError::BadMagic(_))
        ));
        let mut wire = Request::Ping.encode(0);
        wire[1] = WIRE_VERSION + 1;
        assert_eq!(
            Request::decode(&wire),
            Err(ProtoError::BadVersion(WIRE_VERSION + 1))
        );
        let mut wire = Request::Ping.encode(0);
        wire[2] = 0x7F;
        assert_eq!(Request::decode(&wire), Err(ProtoError::BadOpcode(0x7F)));
    }

    #[test]
    fn response_opcodes_do_not_decode_as_requests() {
        let wire = Response::Miss { epoch: 1 }.encode(0);
        assert!(matches!(
            Request::decode(&wire),
            Err(ProtoError::BadOpcode(_))
        ));
        let wire = Request::Ping.encode(0);
        assert!(matches!(
            Response::decode(&wire),
            Err(ProtoError::BadOpcode(_))
        ));
    }

    #[test]
    fn length_prefix_must_match_the_bytes_present() {
        let mut wire = Request::Insert(id(5), b"12345678".to_vec()).encode(0);
        // Claim more bytes than follow (header is 5 bytes in v2).
        let len_at = 5 + 16;
        wire[len_at] = 0xFF;
        wire[len_at + 1] = 0x00;
        assert!(matches!(
            Request::decode(&wire),
            Err(ProtoError::BadLength { .. })
        ));
        // Trailing garbage after a well-formed frame is refused too.
        let mut wire = Request::Lookup(id(6)).encode(0);
        wire.push(0xAA);
        assert_eq!(Request::decode(&wire), Err(ProtoError::TrailingBytes(1)));
    }

    #[test]
    fn oversize_and_truncated_batches_are_refused() {
        // A count beyond MAX_BATCH_KEYS fails before any allocation.
        let mut wire = frame(OP_LOOKUP_BATCH, 1);
        wire.extend_from_slice(&((MAX_BATCH_KEYS + 1) as u16).to_le_bytes());
        assert_eq!(
            Request::decode(&wire),
            Err(ProtoError::BatchTooLarge(MAX_BATCH_KEYS + 1))
        );
        // A count promising more keys than present is truncated.
        let mut wire = frame(OP_LOOKUP_BATCH, 1);
        wire.extend_from_slice(&3u16.to_le_bytes());
        wire.extend_from_slice(&[0u8; ID_LEN]); // only one key follows
        assert_eq!(Request::decode(&wire), Err(ProtoError::Truncated));
        // A batch response with a junk per-key tag is refused.
        let mut wire = frame(OP_BATCH, 1);
        wire.extend_from_slice(&1u64.to_le_bytes());
        wire.extend_from_slice(&1u16.to_le_bytes());
        wire.push(9);
        assert_eq!(Response::decode(&wire), Err(ProtoError::BadBatchTag(9)));
    }

    #[test]
    fn peek_request_id_reads_v2_headers_only() {
        let wire = Request::Ping.encode(0xBEEF);
        assert_eq!(peek_request_id(&wire), Some(0xBEEF));
        let wire = Request::Ping.encode_v1().unwrap();
        assert_eq!(peek_request_id(&wire), None);
        assert_eq!(peek_request_id(&[MAGIC, WIRE_VERSION]), None);
        assert_eq!(peek_request_id(b"junk-bytes"), None);
    }
}
