//! # wedge-cachenet — the distributed session-cache protocol
//!
//! PR 3/4 made TLS resumption survive landing on a different *shard*: the
//! shards of one front-end share an in-process
//! [`wedge_tls::SharedSessionCache`]. This crate is the next rung — a
//! cache **protocol**, so a client can resume on a different simulated
//! *machine* entirely:
//!
//! * [`proto`] — the compact, length-prefixed, versioned wire format
//!   ([`Request`]: `Lookup`/`Insert`/`Invalidate`/`Ping` plus the
//!   multi-key `LookupBatch`/`InsertBatch`; [`Response`]:
//!   `Hit`/`Miss`/`Ok`/`Err`/`Batch`, every response stamped with the
//!   serving node's epoch), spoken one frame per [`wedge_net::Duplex`]
//!   message. Wire **v2** stamps every frame with a `u16` request id
//!   that replies echo, so any number of requests pipeline over one
//!   link; v1 (id-less, single-key) frames still decode for mixed
//!   fleets. Decoding is total — fuzzed in `tests/proto_fuzz.rs`.
//! * [`node`] — [`CacheNode`], one partition of the distributed cache: a
//!   [`wedge_tls::SharedSessionCache`] behind a [`wedge_net::Listener`]
//!   accept loop whose accepted links are all driven by **one
//!   readiness-polling [`wedge_net::Reactor`] sthread** (not a thread
//!   per link), with **per-node epochs** — a restarted node bumps its
//!   epoch and *invalidates* surviving pre-restart entries on first touch
//!   instead of serving them.
//! * [`ring`] — [`CacheRing`], a machine's client: **rendezvous
//!   (consistent-hash) routing** of session ids to nodes, a persistent
//!   **pipelined** link per node (request-id demultiplexing, no
//!   head-of-line stall), concurrent lookups **coalesced** into
//!   `LookupBatch` frames with read-through prefetch of every batched
//!   hit, bounded-latency remote operations, per-node circuit breakers,
//!   a local miss-through tier and write-through inserts. The ring
//!   implements [`wedge_tls::SessionStore`], so any server that takes a
//!   session store — every sharded front-end does — can be pointed at a
//!   ring instead of its in-process cache without other changes.
//!
//! The wire format is documented alongside the rest of the network edge
//! in `crates/wedge-net/README.md`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod node;
pub mod proto;
pub mod ring;

pub use node::{CacheEndpoint, CacheNode, CacheNodeConfig, CacheNodeStats};
pub use proto::{
    peek_request_id, FramedRequest, FramedResponse, ProtoError, Request, Response, MAGIC,
    MAX_BATCH_KEYS, MAX_PAYLOAD, TRACE_EXT_LEN, TRACE_EXT_TAG, V1_WIRE_VERSION, WIRE_VERSION,
};
pub use ring::{CacheRing, CacheRingConfig, CacheRingStats};
