//! # wedge-cachenet — the distributed session-cache protocol
//!
//! PR 3/4 made TLS resumption survive landing on a different *shard*: the
//! shards of one front-end share an in-process
//! [`wedge_tls::SharedSessionCache`]. This crate is the next rung — a
//! cache **protocol**, so a client can resume on a different simulated
//! *machine* entirely:
//!
//! * [`proto`] — the compact, length-prefixed, versioned wire format
//!   ([`Request`]: `Lookup`/`Insert`/`Invalidate`/`Ping`; [`Response`]:
//!   `Hit`/`Miss`/`Ok`/`Err`, every response stamped with the serving
//!   node's epoch), spoken one frame per [`wedge_net::Duplex`] message.
//!   Decoding is total — fuzzed in `tests/proto_fuzz.rs`.
//! * [`node`] — [`CacheNode`], one partition of the distributed cache: a
//!   [`wedge_tls::SharedSessionCache`] behind a [`wedge_net::Listener`]
//!   accept loop, with **per-node epochs** — a restarted node bumps its
//!   epoch and *invalidates* surviving pre-restart entries on first touch
//!   instead of serving them.
//! * [`ring`] — [`CacheRing`], a machine's client: **rendezvous
//!   (consistent-hash) routing** of session ids to nodes, bounded-latency
//!   remote operations, per-node circuit breakers, a local miss-through
//!   tier and write-through inserts. The ring implements
//!   [`wedge_tls::SessionStore`], so any server that takes a session
//!   store — every sharded front-end does — can be pointed at a ring
//!   instead of its in-process cache without other changes.
//!
//! The wire format is documented alongside the rest of the network edge
//! in `crates/wedge-net/README.md`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod node;
pub mod proto;
pub mod ring;

pub use node::{CacheEndpoint, CacheNode, CacheNodeConfig, CacheNodeStats};
pub use proto::{ProtoError, Request, Response, MAGIC, MAX_PAYLOAD, WIRE_VERSION};
pub use ring::{CacheRing, CacheRingConfig, CacheRingStats};
