//! The cache node: one partition of the distributed session cache,
//! served over a [`wedge_net::Listener`] accept loop.
//!
//! A node owns a [`SharedSessionCache`] **partition** (the same bounded
//! LRU service a single machine's shards share) and speaks the `proto`
//! frames over every accepted link. Ring clients connect once and keep
//! the link; a node serves any number of concurrent links, one handler
//! thread each.
//!
//! ## Epochs
//!
//! Every node carries an **epoch**, stamped on every response. Entries
//! are stored with the epoch they were inserted under; a [`CacheNode::restart`]
//! bumps the epoch, so entries surviving from before the restart are
//! **stale**: the next lookup that touches one invalidates it and
//! answers `Miss` instead of serving it. This models the operational
//! hazard of a cache node coming back with outdated state (a partition
//! heals, a machine reboots with a warm disk cache) — the protocol
//! guarantees a restarted node never serves a pre-restart secret, and
//! clients observe the epoch change on the very first reply.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Mutex, RwLock};

use wedge_net::{Duplex, Listener, NetError, RecvTimeout, SourceAddr};
use wedge_tls::SharedSessionCache;

use crate::proto::{ProtoError, Request, Response, MAX_PAYLOAD};

/// How a cache node is sized and named.
#[derive(Debug, Clone)]
pub struct CacheNodeConfig {
    /// The node's name (listener name; shows up in link traces and is the
    /// ring's routing seed, so both "machines" must use the same names).
    pub name: String,
    /// Accept-queue depth of the node's listener.
    pub backlog: usize,
    /// Bound on sessions resident in this node's partition.
    pub capacity: usize,
}

impl CacheNodeConfig {
    /// A node named `name` with default sizing.
    pub fn named(name: &str) -> CacheNodeConfig {
        CacheNodeConfig {
            name: name.to_string(),
            backlog: 64,
            capacity: wedge_tls::DEFAULT_SESSION_CACHE_CAPACITY,
        }
    }
}

/// Counters a node accumulates (all monotonic).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheNodeStats {
    /// Lookup requests served.
    pub lookups: u64,
    /// Lookups answered `Hit`.
    pub hits: u64,
    /// Lookups answered `Miss` (unknown id).
    pub misses: u64,
    /// Lookups that found a **stale** (pre-restart) entry: invalidated
    /// and answered `Miss`, never served.
    pub stale_invalidated: u64,
    /// Insert requests applied.
    pub inserts: u64,
    /// Invalidate requests applied.
    pub invalidations: u64,
    /// Ping requests answered.
    pub pings: u64,
    /// Frames that failed to decode or were refused (answered `Err`).
    pub bad_frames: u64,
    /// Links accepted over the node's lifetime.
    pub links_accepted: u64,
}

impl std::ops::AddAssign<&CacheNodeStats> for CacheNodeStats {
    /// Fold node snapshots into a ring-wide total: every field is a
    /// monotonic counter and sums. Destructured exhaustively so a new
    /// field is a compile error here, not a silently dropped stat — the
    /// same convention as `SchedStats`.
    fn add_assign(&mut self, other: &CacheNodeStats) {
        let CacheNodeStats {
            lookups,
            hits,
            misses,
            stale_invalidated,
            inserts,
            invalidations,
            pings,
            bad_frames,
            links_accepted,
        } = other;
        self.lookups += lookups;
        self.hits += hits;
        self.misses += misses;
        self.stale_invalidated += stale_invalidated;
        self.inserts += inserts;
        self.invalidations += invalidations;
        self.pings += pings;
        self.bad_frames += bad_frames;
        self.links_accepted += links_accepted;
    }
}

#[derive(Debug, Default)]
struct NodeCounters {
    lookups: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    stale_invalidated: AtomicU64,
    inserts: AtomicU64,
    invalidations: AtomicU64,
    pings: AtomicU64,
    bad_frames: AtomicU64,
    links_accepted: AtomicU64,
}

/// The shared state behind a node and its endpoint handles.
struct NodeShared {
    name: String,
    /// The current listener. Swapped on restart; endpoint handles dial
    /// through this slot, so a node's "address" survives its restarts.
    listener: RwLock<Arc<Listener>>,
    /// The node's partition. Values are `epoch (8 bytes LE) ‖ premaster`.
    partition: SharedSessionCache,
    backlog: usize,
    epoch: AtomicU64,
    up: AtomicBool,
    /// Server ends of live links, so a kill can unblock their handlers.
    links: Mutex<Vec<Arc<Duplex>>>,
    counters: NodeCounters,
    /// Set once by [`CacheNode::instrument`]; restarts emit
    /// [`wedge_telemetry::TelemetryEvent::EpochBump`] through it.
    telemetry: std::sync::OnceLock<wedge_telemetry::Telemetry>,
}

/// A dialable handle to a node's "address": cloneable, cheap, and stable
/// across node restarts (the listener behind it is swapped in place).
#[derive(Clone)]
pub struct CacheEndpoint {
    shared: Arc<NodeShared>,
}

impl std::fmt::Debug for CacheEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheEndpoint")
            .field("node", &self.shared.name)
            .finish()
    }
}

impl CacheEndpoint {
    /// The node's name (the ring's routing seed).
    pub fn name(&self) -> &str {
        &self.shared.name
    }

    /// Dial the node from `source`. Fails with [`NetError::Disconnected`]
    /// while the node is down.
    pub fn dial(&self, source: SourceAddr) -> Result<Duplex, NetError> {
        let listener = self.shared.listener.read().clone();
        listener.connect(source)
    }
}

/// One partition of the distributed session cache, behind its own
/// listener accept loop. Dropping the node kills it and joins every
/// thread it spawned.
pub struct CacheNode {
    shared: Arc<NodeShared>,
    /// The accept-loop thread (one per bind; replaced on restart) plus
    /// every link handler it spawned.
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for CacheNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheNode")
            .field("name", &self.shared.name)
            .field("epoch", &self.epoch())
            .field("up", &self.is_up())
            .field("sessions", &self.shared.partition.len())
            .finish()
    }
}

impl CacheNode {
    /// Bind and start a node: its listener accepts immediately.
    pub fn spawn(config: CacheNodeConfig) -> CacheNode {
        let shared = Arc::new(NodeShared {
            listener: RwLock::new(Listener::bind(&config.name, config.backlog.max(1))),
            name: config.name,
            partition: SharedSessionCache::with_capacity(config.capacity.max(1)),
            backlog: config.backlog.max(1),
            epoch: AtomicU64::new(1),
            up: AtomicBool::new(true),
            links: Mutex::new(Vec::new()),
            counters: NodeCounters::default(),
            telemetry: std::sync::OnceLock::new(),
        });
        let node = CacheNode {
            shared,
            threads: Mutex::new(Vec::new()),
        };
        node.start_accept_loop();
        node
    }

    /// The dialable handle ring clients route to. Stable across
    /// [`CacheNode::restart`].
    pub fn endpoint(&self) -> CacheEndpoint {
        CacheEndpoint {
            shared: self.shared.clone(),
        }
    }

    /// The node's current epoch (starts at 1, +1 per restart).
    pub fn epoch(&self) -> u64 {
        self.shared.epoch.load(Ordering::SeqCst)
    }

    /// Is the node accepting links?
    pub fn is_up(&self) -> bool {
        self.shared.up.load(Ordering::SeqCst)
    }

    /// Sessions resident in the partition (stale ones included until a
    /// lookup invalidates them).
    pub fn len(&self) -> usize {
        self.shared.partition.len()
    }

    /// Is the partition empty?
    pub fn is_empty(&self) -> bool {
        self.shared.partition.is_empty()
    }

    /// Register this node on `telemetry` (idempotent): a pull collector
    /// summing its counters into the `cachenet.node.*` namespace (several
    /// instrumented nodes contribute to one ring-wide total), its
    /// partition residency and its epoch (max across nodes). After this,
    /// every [`CacheNode::restart`] emits an
    /// [`wedge_telemetry::TelemetryEvent::EpochBump`] audit event.
    pub fn instrument(&self, telemetry: &wedge_telemetry::Telemetry) {
        if self.shared.telemetry.set(telemetry.clone()).is_err() {
            return;
        }
        let shared = Arc::downgrade(&self.shared);
        telemetry.register_collector(move |sample| {
            let Some(shared) = shared.upgrade() else {
                return;
            };
            let c = &shared.counters;
            sample.counter("cachenet.node.lookups", c.lookups.load(Ordering::Relaxed));
            sample.counter("cachenet.node.hits", c.hits.load(Ordering::Relaxed));
            sample.counter("cachenet.node.misses", c.misses.load(Ordering::Relaxed));
            sample.counter(
                "cachenet.node.stale_invalidated",
                c.stale_invalidated.load(Ordering::Relaxed),
            );
            sample.counter("cachenet.node.inserts", c.inserts.load(Ordering::Relaxed));
            sample.counter(
                "cachenet.node.invalidations",
                c.invalidations.load(Ordering::Relaxed),
            );
            sample.counter(
                "cachenet.node.bad_frames",
                c.bad_frames.load(Ordering::Relaxed),
            );
            sample.counter(
                "cachenet.node.links_accepted",
                c.links_accepted.load(Ordering::Relaxed),
            );
            sample.gauge("cachenet.node.resident", shared.partition.len() as u64);
            sample.gauge_max("cachenet.node.epoch", shared.epoch.load(Ordering::SeqCst));
        });
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheNodeStats {
        let c = &self.shared.counters;
        CacheNodeStats {
            lookups: c.lookups.load(Ordering::Relaxed),
            hits: c.hits.load(Ordering::Relaxed),
            misses: c.misses.load(Ordering::Relaxed),
            stale_invalidated: c.stale_invalidated.load(Ordering::Relaxed),
            inserts: c.inserts.load(Ordering::Relaxed),
            invalidations: c.invalidations.load(Ordering::Relaxed),
            pings: c.pings.load(Ordering::Relaxed),
            bad_frames: c.bad_frames.load(Ordering::Relaxed),
            links_accepted: c.links_accepted.load(Ordering::Relaxed),
        }
    }

    /// Kill the node (fault injection / planned shutdown): the listener
    /// closes, every live link is hung up, every handler thread exits and
    /// is joined. The partition's contents are retained — that is the
    /// point of the epoch mechanism; see [`CacheNode::restart`].
    pub fn kill(&self) {
        self.shared.up.store(false, Ordering::SeqCst);
        self.shared.listener.read().close();
        for link in self.shared.links.lock().drain(..) {
            link.close();
        }
        let threads: Vec<_> = self.threads.lock().drain(..).collect();
        for handle in threads {
            let _ = handle.join();
        }
    }

    /// Bring a killed node back with a **bumped epoch**: a fresh listener
    /// is swapped into the endpoint slot (so existing [`CacheEndpoint`]s
    /// reconnect without new wiring), and every entry surviving from the
    /// previous epoch is now stale — served as `Miss` and invalidated on
    /// first touch, never handed out.
    pub fn restart(&self) {
        if self.is_up() {
            return;
        }
        let epoch = self.shared.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        *self.shared.listener.write() = Listener::bind(&self.shared.name, self.shared.backlog);
        self.shared.up.store(true, Ordering::SeqCst);
        if let Some(telemetry) = self.shared.telemetry.get() {
            telemetry.emit_with(|| wedge_telemetry::TelemetryEvent::EpochBump {
                node: self.shared.name.clone(),
                epoch,
            });
        }
        self.start_accept_loop();
    }

    fn start_accept_loop(&self) {
        let shared = self.shared.clone();
        let listener = shared.listener.read().clone();
        let node = self.shared.clone();
        let accept = std::thread::Builder::new()
            .name(format!("cachenode-{}", node.name))
            .spawn(move || {
                let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
                loop {
                    match listener.accept(RecvTimeout::After(Duration::from_millis(20))) {
                        Ok(link) => {
                            // Clients churn links (a ring re-dials after
                            // every failure), so a long-lived node must
                            // not keep one registry entry and one join
                            // handle per link *ever accepted*: reap
                            // finished handlers and dead links (only the
                            // registry still holds them) on each accept.
                            handlers = handlers
                                .into_iter()
                                .filter_map(|handler| {
                                    if handler.is_finished() {
                                        let _ = handler.join();
                                        None
                                    } else {
                                        Some(handler)
                                    }
                                })
                                .collect();
                            shared
                                .links
                                .lock()
                                .retain(|link| Arc::strong_count(link) > 1);
                            shared
                                .counters
                                .links_accepted
                                .fetch_add(1, Ordering::Relaxed);
                            let link = Arc::new(link);
                            shared.links.lock().push(link.clone());
                            let shared = shared.clone();
                            handlers.push(
                                std::thread::Builder::new()
                                    .name(format!("cachenode-{}-link", shared.name))
                                    .spawn(move || serve_link(&shared, &link))
                                    .expect("spawn link handler"),
                            );
                        }
                        Err(NetError::Timeout) => {
                            if !shared.up.load(Ordering::SeqCst) {
                                break;
                            }
                        }
                        Err(_) => break,
                    }
                }
                for handler in handlers {
                    let _ = handler.join();
                }
            })
            .expect("spawn accept loop");
        self.threads.lock().push(accept);
    }
}

impl Drop for CacheNode {
    fn drop(&mut self) {
        self.kill();
    }
}

/// Serve one client link until it hangs up or the node dies.
fn serve_link(shared: &NodeShared, link: &Duplex) {
    loop {
        let frame = match link.recv(RecvTimeout::After(Duration::from_millis(50))) {
            Ok(frame) => frame,
            Err(NetError::Timeout) => {
                if shared.up.load(Ordering::SeqCst) {
                    continue;
                }
                return;
            }
            Err(_) => return,
        };
        let epoch = shared.epoch.load(Ordering::SeqCst);
        let response = match Request::decode(&frame) {
            Ok(request) => apply(shared, epoch, request),
            Err(err) => {
                shared.counters.bad_frames.fetch_add(1, Ordering::Relaxed);
                Response::Err {
                    epoch,
                    message: refusal(&err),
                }
            }
        };
        if link.send(&response.encode()).is_err() {
            return;
        }
    }
}

fn refusal(err: &ProtoError) -> String {
    format!("refused: {err}")
}

/// Apply one request against the partition, epoch rules included.
fn apply(shared: &NodeShared, epoch: u64, request: Request) -> Response {
    let c = &shared.counters;
    match request {
        Request::Lookup(id) => {
            c.lookups.fetch_add(1, Ordering::Relaxed);
            match shared.partition.lookup(&id) {
                Some(value) => match split_epoch(&value) {
                    Some((entry_epoch, premaster)) if entry_epoch == epoch => {
                        c.hits.fetch_add(1, Ordering::Relaxed);
                        Response::Hit {
                            epoch,
                            premaster: premaster.to_vec(),
                        }
                    }
                    _ => {
                        // Stale (pre-restart) or unparseable: invalidate,
                        // never serve.
                        shared.partition.remove(&id);
                        c.stale_invalidated.fetch_add(1, Ordering::Relaxed);
                        Response::Miss { epoch }
                    }
                },
                None => {
                    c.misses.fetch_add(1, Ordering::Relaxed);
                    Response::Miss { epoch }
                }
            }
        }
        Request::Insert(id, premaster) => {
            if premaster.len() > MAX_PAYLOAD - 8 {
                c.bad_frames.fetch_add(1, Ordering::Relaxed);
                return Response::Err {
                    epoch,
                    message: "refused: oversize premaster".to_string(),
                };
            }
            c.inserts.fetch_add(1, Ordering::Relaxed);
            shared.partition.insert(id, join_epoch(epoch, &premaster));
            Response::Ok { epoch }
        }
        Request::Invalidate(id) => {
            c.invalidations.fetch_add(1, Ordering::Relaxed);
            shared.partition.remove(&id);
            Response::Ok { epoch }
        }
        Request::Ping => {
            c.pings.fetch_add(1, Ordering::Relaxed);
            Response::Ok { epoch }
        }
    }
}

/// Tag a premaster with the epoch it was inserted under.
fn join_epoch(epoch: u64, premaster: &[u8]) -> Vec<u8> {
    let mut value = Vec::with_capacity(8 + premaster.len());
    value.extend_from_slice(&epoch.to_le_bytes());
    value.extend_from_slice(premaster);
    value
}

/// Split a stored value back into `(epoch, premaster)`.
fn split_epoch(value: &[u8]) -> Option<(u64, &[u8])> {
    if value.len() < 8 {
        return None;
    }
    let epoch = u64::from_le_bytes(value[..8].try_into().ok()?);
    Some((epoch, &value[8..]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wedge_tls::SessionId;

    fn id(byte: u8) -> SessionId {
        SessionId::from_bytes(&[byte; 16]).unwrap()
    }

    fn source(last: u8) -> SourceAddr {
        SourceAddr::new([10, 1, 0, last], 50_000)
    }

    /// Dial, speak one request, await one response.
    fn roundtrip(endpoint: &CacheEndpoint, request: &Request) -> Response {
        let link = endpoint.dial(source(1)).expect("dial");
        link.send(&request.encode()).expect("send");
        let frame = link
            .recv(RecvTimeout::After(Duration::from_secs(5)))
            .expect("response");
        Response::decode(&frame).expect("decode")
    }

    #[test]
    fn insert_then_lookup_hits_with_the_node_epoch() {
        let node = CacheNode::spawn(CacheNodeConfig::named("n0"));
        let endpoint = node.endpoint();
        assert_eq!(
            roundtrip(&endpoint, &Request::Insert(id(1), b"pm".to_vec())),
            Response::Ok { epoch: 1 }
        );
        assert_eq!(
            roundtrip(&endpoint, &Request::Lookup(id(1))),
            Response::Hit {
                epoch: 1,
                premaster: b"pm".to_vec()
            }
        );
        assert_eq!(
            roundtrip(&endpoint, &Request::Lookup(id(2))),
            Response::Miss { epoch: 1 }
        );
        let stats = node.stats();
        assert_eq!(stats.inserts, 1);
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn one_link_serves_many_requests_in_order() {
        let node = CacheNode::spawn(CacheNodeConfig::named("pipelined"));
        let link = node.endpoint().dial(source(2)).expect("dial");
        for byte in 0..10u8 {
            link.send(&Request::Insert(id(byte), vec![byte]).encode())
                .unwrap();
            let frame = link
                .recv(RecvTimeout::After(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(Response::decode(&frame).unwrap(), Response::Ok { epoch: 1 });
        }
        assert_eq!(node.len(), 10);
        assert_eq!(node.stats().links_accepted, 1);
    }

    #[test]
    fn invalidate_removes_and_ping_reports_the_epoch() {
        let node = CacheNode::spawn(CacheNodeConfig::named("inval"));
        let endpoint = node.endpoint();
        roundtrip(&endpoint, &Request::Insert(id(3), b"x".to_vec()));
        assert_eq!(
            roundtrip(&endpoint, &Request::Invalidate(id(3))),
            Response::Ok { epoch: 1 }
        );
        assert_eq!(
            roundtrip(&endpoint, &Request::Lookup(id(3))),
            Response::Miss { epoch: 1 }
        );
        assert_eq!(
            roundtrip(&endpoint, &Request::Ping),
            Response::Ok { epoch: 1 }
        );
        assert!(node.is_empty());
    }

    #[test]
    fn malformed_frames_get_err_and_the_link_survives() {
        let node = CacheNode::spawn(CacheNodeConfig::named("rude"));
        let link = node.endpoint().dial(source(3)).expect("dial");
        link.send(b"not a frame").unwrap();
        let frame = link
            .recv(RecvTimeout::After(Duration::from_secs(5)))
            .unwrap();
        assert!(matches!(
            Response::decode(&frame).unwrap(),
            Response::Err { epoch: 1, .. }
        ));
        // The same link still serves well-formed traffic.
        link.send(&Request::Ping.encode()).unwrap();
        let frame = link
            .recv(RecvTimeout::After(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(Response::decode(&frame).unwrap(), Response::Ok { epoch: 1 });
        assert_eq!(node.stats().bad_frames, 1);
    }

    #[test]
    fn restart_bumps_the_epoch_and_invalidates_stale_entries() {
        let node = CacheNode::spawn(CacheNodeConfig::named("phoenix"));
        let endpoint = node.endpoint();
        roundtrip(&endpoint, &Request::Insert(id(7), b"old-secret".to_vec()));
        assert_eq!(node.len(), 1, "entry resident before the restart");

        node.kill();
        assert!(!node.is_up());
        assert!(
            endpoint.dial(source(4)).is_err(),
            "a dead node refuses dials"
        );
        node.restart();
        assert!(node.is_up());
        assert_eq!(node.epoch(), 2);
        assert_eq!(node.len(), 1, "the stale entry physically survived");

        // The stale entry is invalidated on first touch — answered Miss,
        // never served.
        assert_eq!(
            roundtrip(&endpoint, &Request::Lookup(id(7))),
            Response::Miss { epoch: 2 }
        );
        assert_eq!(node.stats().stale_invalidated, 1);
        assert!(node.is_empty(), "the stale entry is gone after the touch");

        // Fresh inserts under the new epoch serve normally.
        roundtrip(&endpoint, &Request::Insert(id(7), b"new-secret".to_vec()));
        assert_eq!(
            roundtrip(&endpoint, &Request::Lookup(id(7))),
            Response::Hit {
                epoch: 2,
                premaster: b"new-secret".to_vec()
            }
        );
    }

    #[test]
    fn kill_unblocks_live_links_without_hanging() {
        let node = CacheNode::spawn(CacheNodeConfig::named("killed"));
        let link = node.endpoint().dial(source(5)).expect("dial");
        node.kill();
        // The client's next receive resolves (disconnect), never hangs.
        let err = link.recv(RecvTimeout::After(Duration::from_secs(5)));
        assert!(err.is_err(), "dead node must hang up, not hang");
    }
}
