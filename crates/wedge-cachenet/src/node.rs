//! The cache node: one partition of the distributed session cache,
//! served over a [`wedge_net::Listener`] accept loop.
//!
//! A node owns a [`SharedSessionCache`] **partition** (the same bounded
//! LRU service a single machine's shards share) and speaks the `proto`
//! frames over every accepted link. Ring clients connect once and keep
//! the link; a node serves any number of concurrent links on **one
//! reactor sthread** ([`wedge_net::Reactor`]) — accepted links register
//! a drain handler and idle links cost a map entry, not a stack. Replies
//! echo the request's wire version: v2 frames get their request id
//! stamped back (so a pipelining client can demultiplex N in-flight
//! requests per link), v1 frames get v1 replies.
//!
//! ## Epochs
//!
//! Every node carries an **epoch**, stamped on every response. Entries
//! are stored with the epoch they were inserted under; a [`CacheNode::restart`]
//! bumps the epoch, so entries surviving from before the restart are
//! **stale**: the next lookup that touches one invalidates it and
//! answers `Miss` instead of serving it. This models the operational
//! hazard of a cache node coming back with outdated state (a partition
//! heals, a machine reboots with a warm disk cache) — the protocol
//! guarantees a restarted node never serves a pre-restart secret, and
//! clients observe the epoch change on the very first reply.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Mutex, RwLock};

use wedge_net::{
    Duplex, LinkEvent, LinkVerdict, Listener, NetError, Reactor, RecvTimeout, SourceAddr,
};
use wedge_tls::SharedSessionCache;

use crate::proto::{peek_request_id, ProtoError, Request, Response, MAX_PAYLOAD};

/// How a cache node is sized and named.
#[derive(Debug, Clone)]
pub struct CacheNodeConfig {
    /// The node's name (listener name; shows up in link traces and is the
    /// ring's routing seed, so both "machines" must use the same names).
    pub name: String,
    /// Accept-queue depth of the node's listener.
    pub backlog: usize,
    /// Bound on sessions resident in this node's partition.
    pub capacity: usize,
}

impl CacheNodeConfig {
    /// A node named `name` with default sizing.
    pub fn named(name: &str) -> CacheNodeConfig {
        CacheNodeConfig {
            name: name.to_string(),
            backlog: 64,
            capacity: wedge_tls::DEFAULT_SESSION_CACHE_CAPACITY,
        }
    }
}

/// Counters a node accumulates (all monotonic).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheNodeStats {
    /// Lookup requests served — batch ops count **one per key**, so this
    /// stays comparable with the single-op trajectory.
    pub lookups: u64,
    /// Lookups answered `Hit`.
    pub hits: u64,
    /// Lookups answered `Miss` (unknown id).
    pub misses: u64,
    /// Lookups that found a **stale** (pre-restart) entry: invalidated
    /// and answered `Miss`, never served.
    pub stale_invalidated: u64,
    /// Insert requests applied (batch ops count one per key).
    pub inserts: u64,
    /// Invalidate requests applied.
    pub invalidations: u64,
    /// Ping requests answered.
    pub pings: u64,
    /// Batch frames served (`LookupBatch` + `InsertBatch`), whatever
    /// their key count.
    pub batches: u64,
    /// Frames that failed to decode or were refused (answered `Err`).
    pub bad_frames: u64,
    /// Links accepted over the node's lifetime.
    pub links_accepted: u64,
}

impl std::ops::AddAssign<&CacheNodeStats> for CacheNodeStats {
    /// Fold node snapshots into a ring-wide total: every field is a
    /// monotonic counter and sums. Destructured exhaustively so a new
    /// field is a compile error here, not a silently dropped stat — the
    /// same convention as `SchedStats`.
    fn add_assign(&mut self, other: &CacheNodeStats) {
        let CacheNodeStats {
            lookups,
            hits,
            misses,
            stale_invalidated,
            inserts,
            invalidations,
            pings,
            batches,
            bad_frames,
            links_accepted,
        } = other;
        self.lookups += lookups;
        self.hits += hits;
        self.misses += misses;
        self.stale_invalidated += stale_invalidated;
        self.inserts += inserts;
        self.invalidations += invalidations;
        self.pings += pings;
        self.batches += batches;
        self.bad_frames += bad_frames;
        self.links_accepted += links_accepted;
    }
}

#[derive(Debug, Default)]
struct NodeCounters {
    lookups: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    stale_invalidated: AtomicU64,
    inserts: AtomicU64,
    invalidations: AtomicU64,
    pings: AtomicU64,
    batches: AtomicU64,
    bad_frames: AtomicU64,
    links_accepted: AtomicU64,
}

/// The shared state behind a node and its endpoint handles.
struct NodeShared {
    name: String,
    /// The current listener. Swapped on restart; endpoint handles dial
    /// through this slot, so a node's "address" survives its restarts.
    listener: RwLock<Arc<Listener>>,
    /// The node's partition. Values are `epoch (8 bytes LE) ‖ premaster`.
    partition: SharedSessionCache,
    backlog: usize,
    epoch: AtomicU64,
    up: AtomicBool,
    /// The reactor driving every accepted link. Swapped on restart;
    /// shutting it down hangs up all live links (the kill path).
    reactor: Mutex<Option<Arc<Reactor>>>,
    counters: NodeCounters,
    /// Set once by [`CacheNode::instrument`]; restarts emit
    /// [`wedge_telemetry::TelemetryEvent::EpochBump`] through it.
    telemetry: std::sync::OnceLock<wedge_telemetry::Telemetry>,
}

/// A dialable handle to a node's "address": cloneable, cheap, and stable
/// across node restarts (the listener behind it is swapped in place).
#[derive(Clone)]
pub struct CacheEndpoint {
    shared: Arc<NodeShared>,
}

impl std::fmt::Debug for CacheEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheEndpoint")
            .field("node", &self.shared.name)
            .finish()
    }
}

impl CacheEndpoint {
    /// The node's name (the ring's routing seed).
    pub fn name(&self) -> &str {
        &self.shared.name
    }

    /// Dial the node from `source`. Fails with [`NetError::Disconnected`]
    /// while the node is down.
    pub fn dial(&self, source: SourceAddr) -> Result<Duplex, NetError> {
        let listener = self.shared.listener.read().clone();
        listener.connect(source)
    }
}

/// One partition of the distributed session cache, behind its own
/// listener accept loop. Dropping the node kills it and joins every
/// thread it spawned.
pub struct CacheNode {
    shared: Arc<NodeShared>,
    /// The accept-loop thread (one per bind; replaced on restart). Link
    /// serving happens on the node's reactor, not here.
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for CacheNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheNode")
            .field("name", &self.shared.name)
            .field("epoch", &self.epoch())
            .field("up", &self.is_up())
            .field("sessions", &self.shared.partition.len())
            .finish()
    }
}

impl CacheNode {
    /// Bind and start a node: its listener accepts immediately.
    pub fn spawn(config: CacheNodeConfig) -> CacheNode {
        let shared = Arc::new(NodeShared {
            listener: RwLock::new(Listener::bind(&config.name, config.backlog.max(1))),
            name: config.name,
            partition: SharedSessionCache::with_capacity(config.capacity.max(1)),
            backlog: config.backlog.max(1),
            epoch: AtomicU64::new(1),
            up: AtomicBool::new(true),
            reactor: Mutex::new(None),
            counters: NodeCounters::default(),
            telemetry: std::sync::OnceLock::new(),
        });
        let node = CacheNode {
            shared,
            threads: Mutex::new(Vec::new()),
        };
        node.start_accept_loop();
        node
    }

    /// The dialable handle ring clients route to. Stable across
    /// [`CacheNode::restart`].
    pub fn endpoint(&self) -> CacheEndpoint {
        CacheEndpoint {
            shared: self.shared.clone(),
        }
    }

    /// The node's current epoch (starts at 1, +1 per restart).
    pub fn epoch(&self) -> u64 {
        self.shared.epoch.load(Ordering::SeqCst)
    }

    /// Is the node accepting links?
    pub fn is_up(&self) -> bool {
        self.shared.up.load(Ordering::SeqCst)
    }

    /// Sessions resident in the partition (stale ones included until a
    /// lookup invalidates them).
    pub fn len(&self) -> usize {
        self.shared.partition.len()
    }

    /// Is the partition empty?
    pub fn is_empty(&self) -> bool {
        self.shared.partition.is_empty()
    }

    /// Links currently registered on the node's reactor (live clients).
    pub fn live_links(&self) -> usize {
        self.shared
            .reactor
            .lock()
            .as_ref()
            .map_or(0, |reactor| reactor.links())
    }

    /// Register this node on `telemetry` (idempotent): a pull collector
    /// summing its counters into the `cachenet.node.*` namespace (several
    /// instrumented nodes contribute to one ring-wide total), its
    /// partition residency and its epoch (max across nodes). The node's
    /// reactor (current and post-restart replacements) is instrumented
    /// too, contributing to the `reactor.*` rows. After this, every
    /// [`CacheNode::restart`] emits an
    /// [`wedge_telemetry::TelemetryEvent::EpochBump`] audit event.
    pub fn instrument(&self, telemetry: &wedge_telemetry::Telemetry) {
        if self.shared.telemetry.set(telemetry.clone()).is_err() {
            return;
        }
        if let Some(reactor) = self.shared.reactor.lock().as_ref() {
            reactor.instrument(telemetry);
        }
        let shared = Arc::downgrade(&self.shared);
        telemetry.register_collector(move |sample| {
            let Some(shared) = shared.upgrade() else {
                return;
            };
            let c = &shared.counters;
            sample.counter("cachenet.node.lookups", c.lookups.load(Ordering::Relaxed));
            sample.counter("cachenet.node.hits", c.hits.load(Ordering::Relaxed));
            sample.counter("cachenet.node.misses", c.misses.load(Ordering::Relaxed));
            sample.counter(
                "cachenet.node.stale_invalidated",
                c.stale_invalidated.load(Ordering::Relaxed),
            );
            sample.counter("cachenet.node.inserts", c.inserts.load(Ordering::Relaxed));
            sample.counter(
                "cachenet.node.invalidations",
                c.invalidations.load(Ordering::Relaxed),
            );
            sample.counter("cachenet.node.batches", c.batches.load(Ordering::Relaxed));
            sample.counter(
                "cachenet.node.bad_frames",
                c.bad_frames.load(Ordering::Relaxed),
            );
            sample.counter(
                "cachenet.node.links_accepted",
                c.links_accepted.load(Ordering::Relaxed),
            );
            sample.gauge("cachenet.node.resident", shared.partition.len() as u64);
            sample.gauge_max("cachenet.node.epoch", shared.epoch.load(Ordering::SeqCst));
        });
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheNodeStats {
        let c = &self.shared.counters;
        CacheNodeStats {
            lookups: c.lookups.load(Ordering::Relaxed),
            hits: c.hits.load(Ordering::Relaxed),
            misses: c.misses.load(Ordering::Relaxed),
            stale_invalidated: c.stale_invalidated.load(Ordering::Relaxed),
            inserts: c.inserts.load(Ordering::Relaxed),
            invalidations: c.invalidations.load(Ordering::Relaxed),
            pings: c.pings.load(Ordering::Relaxed),
            batches: c.batches.load(Ordering::Relaxed),
            bad_frames: c.bad_frames.load(Ordering::Relaxed),
            links_accepted: c.links_accepted.load(Ordering::Relaxed),
        }
    }

    /// Kill the node (fault injection / planned shutdown): the listener
    /// closes, the accept thread exits and is joined, the reactor shuts
    /// down and hangs up every live link. The partition's contents are
    /// retained — that is the point of the epoch mechanism; see
    /// [`CacheNode::restart`].
    pub fn kill(&self) {
        self.shared.up.store(false, Ordering::SeqCst);
        self.shared.listener.read().close();
        let threads: Vec<_> = self.threads.lock().drain(..).collect();
        for handle in threads {
            let _ = handle.join();
        }
        if let Some(reactor) = self.shared.reactor.lock().take() {
            reactor.shutdown();
        }
    }

    /// Bring a killed node back with a **bumped epoch**: a fresh listener
    /// is swapped into the endpoint slot (so existing [`CacheEndpoint`]s
    /// reconnect without new wiring), and every entry surviving from the
    /// previous epoch is now stale — served as `Miss` and invalidated on
    /// first touch, never handed out.
    pub fn restart(&self) {
        if self.is_up() {
            return;
        }
        let epoch = self.shared.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        *self.shared.listener.write() = Listener::bind(&self.shared.name, self.shared.backlog);
        self.shared.up.store(true, Ordering::SeqCst);
        if let Some(telemetry) = self.shared.telemetry.get() {
            telemetry.emit_with(|| wedge_telemetry::TelemetryEvent::EpochBump {
                node: self.shared.name.clone(),
                epoch,
            });
        }
        self.start_accept_loop();
    }

    fn start_accept_loop(&self) {
        let shared = self.shared.clone();
        let listener = shared.listener.read().clone();
        let reactor = Arc::new(Reactor::spawn(&format!("cachenode-{}", shared.name)));
        if let Some(telemetry) = shared.telemetry.get() {
            reactor.instrument(telemetry);
        }
        *shared.reactor.lock() = Some(reactor.clone());
        let accept = std::thread::Builder::new()
            .name(format!("cachenode-{}", shared.name))
            .spawn(move || loop {
                match listener.accept(RecvTimeout::After(Duration::from_millis(20))) {
                    Ok(link) => {
                        shared
                            .counters
                            .links_accepted
                            .fetch_add(1, Ordering::Relaxed);
                        // The reactor owns the link from here: its drain
                        // handler decodes, applies and replies for every
                        // arriving frame, and dead links deregister on
                        // the hang-up event — no per-link thread, no
                        // per-link registry to reap.
                        let handler_shared = shared.clone();
                        reactor.register(Arc::new(link), move |link, event| match event {
                            LinkEvent::Message(frame) => serve_frame(&handler_shared, link, &frame),
                            LinkEvent::Closed => LinkVerdict::Done,
                        });
                    }
                    Err(NetError::Timeout) => {
                        if !shared.up.load(Ordering::SeqCst) {
                            break;
                        }
                    }
                    Err(_) => break,
                }
            })
            .expect("spawn accept loop");
        self.threads.lock().push(accept);
    }
}

impl Drop for CacheNode {
    fn drop(&mut self) {
        self.kill();
    }
}

/// Serve one inbound frame on the reactor thread: decode, apply, reply
/// in the request's own wire version (v2 replies echo the request id so
/// pipelining clients can demultiplex).
fn serve_frame(shared: &NodeShared, link: &Duplex, frame: &[u8]) -> LinkVerdict {
    let epoch = shared.epoch.load(Ordering::SeqCst);
    let (request_id, response) = match Request::decode(frame) {
        Ok(framed) => {
            // A frame carrying the trace extension joins the caller's
            // trace: the server-side span parents on the remote span id,
            // so the client's trace tree crosses the machine boundary.
            let span = framed.trace.and_then(|wire_ctx| {
                let tracer = shared.telemetry.get()?.tracer()?;
                let ctx = tracer.join_remote(wire_ctx.trace_id, wire_ctx.span_id);
                Some((tracer, ctx, framed.request_id))
            });
            let started_ns = span.as_ref().map(|(tracer, ..)| tracer.now_ns());
            let response = apply(shared, epoch, framed.request);
            if let (Some((tracer, ctx, rid)), Some(started_ns)) = (span, started_ns) {
                let ok = !matches!(response, Response::Err { .. });
                let detail = rid.map(u32::from).unwrap_or(0);
                tracer.record(
                    ctx,
                    wedge_telemetry::SpanKind::CachenetServe,
                    started_ns,
                    tracer.now_ns(),
                    ok,
                    detail,
                );
            }
            (framed.request_id, response)
        }
        Err(err) => {
            shared.counters.bad_frames.fetch_add(1, Ordering::Relaxed);
            // Undecodable frames still get a best-effort id echo: a
            // v2-magic header names the request it refuses, anything
            // else is answered in v1 framing.
            (
                peek_request_id(frame),
                Response::Err {
                    epoch,
                    message: refusal(&err),
                },
            )
        }
    };
    let reply = match request_id {
        Some(id) => response.encode(id),
        // `Batch` only answers v2 batch requests, so a v1 reply always
        // encodes.
        None => response.encode_v1().expect("v1-encodable response"),
    };
    if link.send(&reply).is_err() {
        return LinkVerdict::Done;
    }
    LinkVerdict::Keep
}

fn refusal(err: &ProtoError) -> String {
    format!("refused: {err}")
}

/// Apply one request against the partition, epoch rules included.
fn apply(shared: &NodeShared, epoch: u64, request: Request) -> Response {
    let c = &shared.counters;
    match request {
        Request::Lookup(id) => match lookup_one(shared, epoch, &id) {
            Some(premaster) => Response::Hit { epoch, premaster },
            None => Response::Miss { epoch },
        },
        Request::LookupBatch(ids) => {
            c.batches.fetch_add(1, Ordering::Relaxed);
            let results = ids.iter().map(|id| lookup_one(shared, epoch, id)).collect();
            Response::Batch { epoch, results }
        }
        Request::Insert(id, premaster) => match insert_one(shared, epoch, id, &premaster) {
            Ok(()) => Response::Ok { epoch },
            Err(response) => response,
        },
        Request::InsertBatch(entries) => {
            // Refuse the whole batch if any key oversizes: partial
            // application would leave the client guessing which keys
            // landed.
            if entries
                .iter()
                .any(|(_, premaster)| premaster.len() > MAX_PAYLOAD - 8)
            {
                c.bad_frames.fetch_add(1, Ordering::Relaxed);
                return Response::Err {
                    epoch,
                    message: "refused: oversize premaster".to_string(),
                };
            }
            c.batches.fetch_add(1, Ordering::Relaxed);
            for (id, premaster) in entries {
                c.inserts.fetch_add(1, Ordering::Relaxed);
                shared.partition.insert(id, join_epoch(epoch, &premaster));
            }
            Response::Ok { epoch }
        }
        Request::Invalidate(id) => {
            c.invalidations.fetch_add(1, Ordering::Relaxed);
            shared.partition.remove(&id);
            Response::Ok { epoch }
        }
        Request::Ping => {
            c.pings.fetch_add(1, Ordering::Relaxed);
            Response::Ok { epoch }
        }
    }
}

/// One key's lookup, shared by the single op and the batch op so stats
/// count **per key** and stale invalidation applies uniformly.
fn lookup_one(shared: &NodeShared, epoch: u64, id: &wedge_tls::SessionId) -> Option<Vec<u8>> {
    let c = &shared.counters;
    c.lookups.fetch_add(1, Ordering::Relaxed);
    match shared.partition.lookup(id) {
        Some(value) => match split_epoch(&value) {
            Some((entry_epoch, premaster)) if entry_epoch == epoch => {
                c.hits.fetch_add(1, Ordering::Relaxed);
                Some(premaster.to_vec())
            }
            _ => {
                // Stale (pre-restart) or unparseable: invalidate, never
                // serve.
                shared.partition.remove(id);
                c.stale_invalidated.fetch_add(1, Ordering::Relaxed);
                None
            }
        },
        None => {
            c.misses.fetch_add(1, Ordering::Relaxed);
            None
        }
    }
}

/// One key's insert, shared by the single op (batch refusal semantics
/// differ, so the batch arm checks sizes itself).
fn insert_one(
    shared: &NodeShared,
    epoch: u64,
    id: wedge_tls::SessionId,
    premaster: &[u8],
) -> Result<(), Response> {
    let c = &shared.counters;
    if premaster.len() > MAX_PAYLOAD - 8 {
        c.bad_frames.fetch_add(1, Ordering::Relaxed);
        return Err(Response::Err {
            epoch,
            message: "refused: oversize premaster".to_string(),
        });
    }
    c.inserts.fetch_add(1, Ordering::Relaxed);
    shared.partition.insert(id, join_epoch(epoch, premaster));
    Ok(())
}

/// Tag a premaster with the epoch it was inserted under.
fn join_epoch(epoch: u64, premaster: &[u8]) -> Vec<u8> {
    let mut value = Vec::with_capacity(8 + premaster.len());
    value.extend_from_slice(&epoch.to_le_bytes());
    value.extend_from_slice(premaster);
    value
}

/// Split a stored value back into `(epoch, premaster)`.
fn split_epoch(value: &[u8]) -> Option<(u64, &[u8])> {
    if value.len() < 8 {
        return None;
    }
    let epoch = u64::from_le_bytes(value[..8].try_into().ok()?);
    Some((epoch, &value[8..]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wedge_tls::SessionId;

    fn id(byte: u8) -> SessionId {
        SessionId::from_bytes(&[byte; 16]).unwrap()
    }

    fn source(last: u8) -> SourceAddr {
        SourceAddr::new([10, 1, 0, last], 50_000)
    }

    /// Dial, speak one v2 request, await one response; the echoed id is
    /// asserted on the way through.
    fn roundtrip(endpoint: &CacheEndpoint, request: &Request) -> Response {
        let link = endpoint.dial(source(1)).expect("dial");
        link.send(&request.encode(42)).expect("send");
        let frame = link
            .recv(RecvTimeout::After(Duration::from_secs(5)))
            .expect("response");
        let framed = Response::decode(&frame).expect("decode");
        assert_eq!(framed.request_id, Some(42), "v2 reply echoes the id");
        framed.response
    }

    #[test]
    fn insert_then_lookup_hits_with_the_node_epoch() {
        let node = CacheNode::spawn(CacheNodeConfig::named("n0"));
        let endpoint = node.endpoint();
        assert_eq!(
            roundtrip(&endpoint, &Request::Insert(id(1), b"pm".to_vec())),
            Response::Ok { epoch: 1 }
        );
        assert_eq!(
            roundtrip(&endpoint, &Request::Lookup(id(1))),
            Response::Hit {
                epoch: 1,
                premaster: b"pm".to_vec()
            }
        );
        assert_eq!(
            roundtrip(&endpoint, &Request::Lookup(id(2))),
            Response::Miss { epoch: 1 }
        );
        let stats = node.stats();
        assert_eq!(stats.inserts, 1);
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn one_link_serves_many_requests_in_order() {
        let node = CacheNode::spawn(CacheNodeConfig::named("pipelined"));
        let link = node.endpoint().dial(source(2)).expect("dial");
        for byte in 0..10u8 {
            link.send(&Request::Insert(id(byte), vec![byte]).encode(byte as u16))
                .unwrap();
            let frame = link
                .recv(RecvTimeout::After(Duration::from_secs(5)))
                .unwrap();
            let framed = Response::decode(&frame).unwrap();
            assert_eq!(framed.request_id, Some(byte as u16));
            assert_eq!(framed.response, Response::Ok { epoch: 1 });
        }
        assert_eq!(node.len(), 10);
        assert_eq!(node.stats().links_accepted, 1);
    }

    #[test]
    fn pipelined_requests_come_back_in_order_with_their_ids() {
        let node = CacheNode::spawn(CacheNodeConfig::named("depth"));
        let link = node.endpoint().dial(source(9)).expect("dial");
        // Fire 32 requests without reading a single reply: the node must
        // serve them all (no head-of-line deadlock on a full window).
        for n in 0..32u16 {
            link.send(&Request::Insert(id(n as u8), vec![n as u8]).encode(n))
                .unwrap();
        }
        for n in 0..32u16 {
            let frame = link
                .recv(RecvTimeout::After(Duration::from_secs(5)))
                .unwrap();
            let framed = Response::decode(&frame).unwrap();
            assert_eq!(framed.request_id, Some(n), "FIFO order, ids intact");
            assert_eq!(framed.response, Response::Ok { epoch: 1 });
        }
        assert_eq!(node.len(), 32);
    }

    #[test]
    fn v1_clients_are_served_with_v1_replies() {
        let node = CacheNode::spawn(CacheNodeConfig::named("legacy"));
        let link = node.endpoint().dial(source(6)).expect("dial");
        let frame = Request::Insert(id(1), b"pm".to_vec())
            .encode_v1()
            .expect("v1-encodable");
        link.send(&frame).unwrap();
        let reply = link
            .recv(RecvTimeout::After(Duration::from_secs(5)))
            .unwrap();
        let framed = Response::decode(&reply).unwrap();
        assert_eq!(framed.request_id, None, "v1 reply carries no id");
        assert_eq!(framed.response, Response::Ok { epoch: 1 });
    }

    #[test]
    fn lookup_batch_answers_per_key_and_counts_per_key() {
        let node = CacheNode::spawn(CacheNodeConfig::named("batch"));
        let endpoint = node.endpoint();
        roundtrip(&endpoint, &Request::Insert(id(1), b"a".to_vec()));
        roundtrip(&endpoint, &Request::Insert(id(3), b"c".to_vec()));
        let response = roundtrip(&endpoint, &Request::LookupBatch(vec![id(1), id(2), id(3)]));
        assert_eq!(
            response,
            Response::Batch {
                epoch: 1,
                results: vec![Some(b"a".to_vec()), None, Some(b"c".to_vec())],
            }
        );
        let stats = node.stats();
        assert_eq!(stats.batches, 1, "one batch frame");
        assert_eq!(stats.lookups, 3, "three keys looked up");
        assert_eq!((stats.hits, stats.misses), (2, 1));
    }

    #[test]
    fn insert_batch_applies_all_keys_or_refuses_whole() {
        let node = CacheNode::spawn(CacheNodeConfig::named("batchin"));
        let endpoint = node.endpoint();
        assert_eq!(
            roundtrip(
                &endpoint,
                &Request::InsertBatch(vec![(id(1), b"a".to_vec()), (id(2), b"b".to_vec()),]),
            ),
            Response::Ok { epoch: 1 }
        );
        assert_eq!(node.len(), 2);
        assert_eq!(node.stats().inserts, 2);

        // One oversize key poisons the whole batch — nothing lands.
        let oversize = vec![0u8; MAX_PAYLOAD - 7];
        assert!(matches!(
            roundtrip(
                &endpoint,
                &Request::InsertBatch(vec![(id(3), b"ok".to_vec()), (id(4), oversize)]),
            ),
            Response::Err { epoch: 1, .. }
        ));
        assert_eq!(node.len(), 2, "refused batch left no partial state");
    }

    #[test]
    fn invalidate_removes_and_ping_reports_the_epoch() {
        let node = CacheNode::spawn(CacheNodeConfig::named("inval"));
        let endpoint = node.endpoint();
        roundtrip(&endpoint, &Request::Insert(id(3), b"x".to_vec()));
        assert_eq!(
            roundtrip(&endpoint, &Request::Invalidate(id(3))),
            Response::Ok { epoch: 1 }
        );
        assert_eq!(
            roundtrip(&endpoint, &Request::Lookup(id(3))),
            Response::Miss { epoch: 1 }
        );
        assert_eq!(
            roundtrip(&endpoint, &Request::Ping),
            Response::Ok { epoch: 1 }
        );
        assert!(node.is_empty());
    }

    #[test]
    fn malformed_frames_get_err_and_the_link_survives() {
        let node = CacheNode::spawn(CacheNodeConfig::named("rude"));
        let link = node.endpoint().dial(source(3)).expect("dial");
        link.send(b"not a frame").unwrap();
        let frame = link
            .recv(RecvTimeout::After(Duration::from_secs(5)))
            .unwrap();
        assert!(matches!(
            Response::decode(&frame).unwrap().response,
            Response::Err { epoch: 1, .. }
        ));
        // The same link still serves well-formed traffic.
        link.send(&Request::Ping.encode(7)).unwrap();
        let frame = link
            .recv(RecvTimeout::After(Duration::from_secs(5)))
            .unwrap();
        let framed = Response::decode(&frame).unwrap();
        assert_eq!(framed.request_id, Some(7));
        assert_eq!(framed.response, Response::Ok { epoch: 1 });
        assert_eq!(node.stats().bad_frames, 1);
    }

    #[test]
    fn truncated_v2_frames_echo_the_peeked_id_in_the_refusal() {
        let node = CacheNode::spawn(CacheNodeConfig::named("peek"));
        let link = node.endpoint().dial(source(8)).expect("dial");
        // A v2 header with id 0x1234 and a truncated body.
        let mut frame = Request::Lookup(id(1)).encode(0x1234);
        frame.truncate(frame.len() - 1);
        link.send(&frame).unwrap();
        let reply = link
            .recv(RecvTimeout::After(Duration::from_secs(5)))
            .unwrap();
        let framed = Response::decode(&reply).unwrap();
        assert_eq!(framed.request_id, Some(0x1234), "refusal names the request");
        assert!(matches!(framed.response, Response::Err { .. }));
    }

    #[test]
    fn restart_bumps_the_epoch_and_invalidates_stale_entries() {
        let node = CacheNode::spawn(CacheNodeConfig::named("phoenix"));
        let endpoint = node.endpoint();
        roundtrip(&endpoint, &Request::Insert(id(7), b"old-secret".to_vec()));
        assert_eq!(node.len(), 1, "entry resident before the restart");

        node.kill();
        assert!(!node.is_up());
        assert!(
            endpoint.dial(source(4)).is_err(),
            "a dead node refuses dials"
        );
        node.restart();
        assert!(node.is_up());
        assert_eq!(node.epoch(), 2);
        assert_eq!(node.len(), 1, "the stale entry physically survived");

        // The stale entry is invalidated on first touch — answered Miss,
        // never served.
        assert_eq!(
            roundtrip(&endpoint, &Request::Lookup(id(7))),
            Response::Miss { epoch: 2 }
        );
        assert_eq!(node.stats().stale_invalidated, 1);
        assert!(node.is_empty(), "the stale entry is gone after the touch");

        // Fresh inserts under the new epoch serve normally.
        roundtrip(&endpoint, &Request::Insert(id(7), b"new-secret".to_vec()));
        assert_eq!(
            roundtrip(&endpoint, &Request::Lookup(id(7))),
            Response::Hit {
                epoch: 2,
                premaster: b"new-secret".to_vec()
            }
        );
    }

    #[test]
    fn kill_unblocks_live_links_without_hanging() {
        let node = CacheNode::spawn(CacheNodeConfig::named("killed"));
        let link = node.endpoint().dial(source(5)).expect("dial");
        node.kill();
        // The client's next receive resolves (disconnect), never hangs.
        let err = link.recv(RecvTimeout::After(Duration::from_secs(5)));
        assert!(err.is_err(), "dead node must hang up, not hang");
    }

    #[test]
    fn many_idle_links_ride_one_reactor_thread() {
        let node = CacheNode::spawn(CacheNodeConfig {
            backlog: 256,
            ..CacheNodeConfig::named("wide")
        });
        let endpoint = node.endpoint();
        let mut idle = Vec::new();
        for n in 0..200u8 {
            idle.push(endpoint.dial(source(n)).expect("dial"));
        }
        // Traffic on a fresh link still flows while the rest sit idle.
        assert_eq!(
            roundtrip(&endpoint, &Request::Ping),
            Response::Ok { epoch: 1 }
        );
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while node.live_links() < 200 {
            assert!(
                std::time::Instant::now() < deadline,
                "links never registered"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(node.stats().links_accepted, 201);
    }
}
