//! The cache ring: a machine's client for the distributed session cache.
//!
//! A [`CacheRing`] routes each [`SessionId`] to one [`CacheEndpoint`]
//! with **rendezvous (highest-random-weight) hashing** — every machine
//! holding the same node list agrees on the owner of every key with no
//! coordination, and when a node dies only its own keys move (to their
//! next-highest-scoring node), which is the consistent-hashing property
//! the ring needs to survive node churn.
//!
//! Remote I/O is **pipelined and batched** (wire v2). One persistent
//! link per node carries any number of concurrent requests: every frame
//! is stamped with a `u16` request id, replies echo it, and a
//! demultiplexer — a drain handler on the ring's own
//! [`wedge_net::Reactor`] — pairs each reply with its waiter by id, so
//! a slow request never head-of-line-blocks the ops queued behind it.
//! Concurrent lookups routed to the same node **coalesce** into
//! multi-key `LookupBatch` frames (at most [`CacheRingConfig::max_batch`]
//! keys, optionally lingering [`CacheRingConfig::batch_window`] to let a
//! burst fill the frame), amortising framing and round-trip cost across
//! the burst; every `Hit` in a batch **read-through-prefetches** into
//! the local miss-through tier, so sibling keys warm the machine even
//! when their own caller has already given up.
//!
//! Remote operations stay **bounded-latency**: one routed node, one
//! reply awaited for at most [`CacheRingConfig::op_timeout`]. A timeout
//! abandons only its own request id (the late reply finds no waiter and
//! is dropped — ids make this safe; v1 had to drop the whole link to
//! avoid desynchronised replies). Failures (dial refused, link dropped,
//! timeout) feed a per-node **circuit breaker** — after
//! [`CacheRingConfig::breaker_threshold`] consecutive failures the node is
//! skipped outright for [`CacheRingConfig::breaker_cooldown`], then
//! probed again (half-open). While a node's circuit is open its keys
//! route to their next-best node, so a dead node costs the ring one
//! timeout per key at most once per cooldown, not per lookup.
//!
//! The ring is itself a [`SessionStore`]: servers cannot tell it from the
//! in-process [`SharedSessionCache`]. Lookups **miss through** to a local
//! cache tier (so a machine keeps resuming its own sessions with every
//! cache node dead), inserts **write through** (local tier + routed
//! node), and every reply's epoch is tracked per node so a restarted
//! node is observable the moment it answers.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use wedge_net::duplex::fnv1a;
use wedge_net::{Duplex, LinkEvent, LinkVerdict, Reactor, SourceAddr};
use wedge_telemetry::trace::{self, SpanGuard};
use wedge_telemetry::{Histogram, SpanKind, Telemetry, TelemetryEvent, TraceContext};
use wedge_tls::{SessionId, SessionStore, SharedSessionCache};

use crate::node::CacheEndpoint;
use crate::proto::{Request, Response, MAX_BATCH_KEYS};

/// Ring-client tuning.
#[derive(Debug, Clone, Copy)]
pub struct CacheRingConfig {
    /// The machine's own source address (stamped on every dialed link, so
    /// node-side traces and rate limiters see who is asking).
    pub source: SourceAddr,
    /// Hard bound on one remote operation's reply wait.
    pub op_timeout: Duration,
    /// Consecutive failures that open a node's circuit (minimum 1).
    pub breaker_threshold: u32,
    /// How long an open circuit skips the node before a half-open probe.
    pub breaker_cooldown: Duration,
    /// Capacity of the local miss-through tier.
    pub local_capacity: usize,
    /// Most keys one coalesced `LookupBatch` / `InsertBatch` frame may
    /// carry (clamped to `1..=` [`MAX_BATCH_KEYS`]).
    pub max_batch: usize,
    /// Bounded flush window: how long a coalescing sender lingers for a
    /// concurrent burst to fill its frame before it flies.
    /// `Duration::ZERO` (the default) sends immediately — batching then
    /// comes only from genuine concurrency, never from added idle
    /// latency.
    pub batch_window: Duration,
}

impl Default for CacheRingConfig {
    fn default() -> Self {
        CacheRingConfig {
            source: SourceAddr::new([127, 0, 0, 1], 0),
            op_timeout: Duration::from_millis(250),
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_millis(250),
            local_capacity: wedge_tls::DEFAULT_SESSION_CACHE_CAPACITY,
            max_batch: 16,
            batch_window: Duration::ZERO,
        }
    }
}

/// Ring-level counters (all monotonic).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheRingStats {
    /// Lookups answered by a cache node's hit (batch ops count per key).
    pub remote_hits: u64,
    /// Lookups a cache node answered miss (batch ops count per key).
    pub remote_misses: u64,
    /// Lookups answered by the local tier after the remote path failed or
    /// missed.
    pub local_hits: u64,
    /// Write-through inserts acknowledged `Ok` by a node (batch ops count
    /// per key).
    pub write_throughs: u64,
    /// Remote operations that failed (dial, send, timeout, link death) —
    /// each also feeds the owning node's circuit breaker, once per wire
    /// frame.
    pub failures: u64,
    /// Times a node's circuit breaker opened.
    pub circuit_opens: u64,
    /// Epoch changes observed in node replies (each one is a detected
    /// node restart).
    pub epoch_changes: u64,
    /// Operations that found **no** routable node (every circuit open):
    /// served purely by the local tier.
    pub all_nodes_down: u64,
}

impl std::ops::AddAssign<&CacheRingStats> for CacheRingStats {
    /// Fold ring snapshots (e.g. across the machines of a fleet): every
    /// field is a monotonic counter and sums. Destructured exhaustively
    /// so a new field is a compile error here, not a silently dropped
    /// stat — the same convention as `SchedStats`.
    fn add_assign(&mut self, other: &CacheRingStats) {
        let CacheRingStats {
            remote_hits,
            remote_misses,
            local_hits,
            write_throughs,
            failures,
            circuit_opens,
            epoch_changes,
            all_nodes_down,
        } = other;
        self.remote_hits += remote_hits;
        self.remote_misses += remote_misses;
        self.local_hits += local_hits;
        self.write_throughs += write_throughs;
        self.failures += failures;
        self.circuit_opens += circuit_opens;
        self.epoch_changes += epoch_changes;
        self.all_nodes_down += all_nodes_down;
    }
}

/// Breaker state for one node.
#[derive(Debug)]
struct Breaker {
    consecutive_failures: u32,
    open_until: Option<Instant>,
    /// A half-open probe is in flight: one caller claimed the right to
    /// test the recovering node. Everyone else skips it (next-ranked
    /// node) until the probe resolves — without this, every concurrent
    /// lookup racing past an expired cooldown thundering-herds a node
    /// that may still be booting.
    probing: bool,
}

/// Live instruments installed by [`CacheRing::instrument`]: the overall
/// lookup latency plus the remote-answered / local-tier split, and the
/// key count of every batch frame sent.
struct RingProbes {
    telemetry: Telemetry,
    lookup: Histogram,
    lookup_remote: Histogram,
    lookup_local: Histogram,
    batch_size: Histogram,
}

/// A one-shot rendezvous between a request's caller and the reactor-side
/// demultiplexer that receives its reply.
struct Waiter<T> {
    slot: Mutex<Option<T>>,
    cv: Condvar,
}

impl<T> Waiter<T> {
    fn new() -> Waiter<T> {
        Waiter {
            slot: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn fulfill(&self, value: T) {
        *self.slot.lock() = Some(value);
        self.cv.notify_all();
    }

    /// Wait up to `timeout` for the value; `None` means timed out.
    fn wait(&self, timeout: Duration) -> Option<T> {
        let deadline = Instant::now() + timeout;
        let mut slot = self.slot.lock();
        while slot.is_none() {
            let now = Instant::now();
            let Some(remaining) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                break;
            };
            if self.cv.wait_for(&mut slot, remaining).timed_out() {
                break;
            }
        }
        slot.take()
    }
}

/// A whole-frame reply for a single-shot op.
enum Outcome {
    Response(Response),
    /// The link died before the reply; the breaker was already fed by
    /// the link-death path.
    LinkDead,
}

/// One key's result out of a (possibly coalesced) lookup frame.
enum KeyOutcome {
    Hit(Vec<u8>),
    Miss,
    /// The frame failed (link death or a refused batch): fall back to
    /// the local tier.
    Failed,
}

/// A key's routed node paired with its in-flight waiter, or `None` when
/// no node was routable (all breakers open).
type PendingKey = Option<(Arc<NodeState>, Arc<Waiter<KeyOutcome>>)>;

/// Write-through entries grouped by their routed node.
type NodeGroups = Vec<(Arc<NodeState>, Vec<(SessionId, Vec<u8>)>)>;

/// What the demultiplexer pairs with one in-flight request id.
enum Pending {
    /// A single-shot op: the caller wants the whole response.
    One(Arc<Waiter<Outcome>>),
    /// A coalesced `LookupBatch`: per-key waiters, in frame key order.
    Lookups(Vec<(SessionId, Arc<Waiter<KeyOutcome>>)>),
}

/// The persistent pipelined link to one node: a request-id allocator and
/// the id → waiter map the demultiplexer resolves replies against.
struct NodeLink {
    link: Arc<Duplex>,
    /// Wrapping id allocator. A collision needs 65,536 requests in
    /// flight on one link; `op_timeout` bounds real in-flight depth far
    /// below that.
    next_id: AtomicU32,
    inflight: Mutex<HashMap<u16, Pending>>,
    dead: AtomicBool,
}

impl NodeLink {
    fn alloc_id(&self) -> u16 {
        (self.next_id.fetch_add(1, Ordering::Relaxed) & 0xFFFF) as u16
    }
}

/// The coalescing queue: lookups bound for one node waiting for a
/// sender (flat combining — whichever caller finds no sender active
/// drains everyone's keys into shared frames).
#[derive(Default)]
struct LookupQueue {
    items: Vec<(SessionId, Arc<Waiter<KeyOutcome>>)>,
    sender_active: bool,
}

struct NodeState {
    /// This node's position in the ring's endpoint list (stable — the
    /// index [`TelemetryEvent::CircuitOpen`] reports).
    index: usize,
    endpoint: CacheEndpoint,
    /// Routing seed: FNV-1a of the node name. Machines sharing a node
    /// list derive identical seeds, hence identical routing.
    seed: u64,
    /// The persistent pipelined link (re-dialed on demand; marked dead —
    /// and every in-flight id failed — on dial/send failure or peer
    /// hang-up).
    conn: Mutex<Option<Arc<NodeLink>>>,
    breaker: Mutex<Breaker>,
    /// Last epoch seen in a reply from this node (0 = none yet).
    last_epoch: AtomicU64,
    queue: Mutex<LookupQueue>,
}

impl NodeState {
    /// May this node be routed to right now? (Pure read — the gauge and
    /// tests use this; the routing path claims via
    /// [`NodeState::claim_routable`].) An open circuit says no until its
    /// cooldown passes.
    fn routable(&self, now: Instant) -> bool {
        let breaker = self.breaker.lock();
        match breaker.open_until {
            Some(until) => now >= until,
            None => true,
        }
    }

    /// [`NodeState::routable`], but with the half-open probe cap: a node
    /// whose cooldown has passed admits exactly **one** caller (the
    /// probe) and reads unroutable to everyone else until that probe
    /// resolves — success closes the breaker, failure re-arms the
    /// cooldown. A closed breaker claims nothing.
    fn claim_routable(&self, now: Instant) -> bool {
        let mut breaker = self.breaker.lock();
        match breaker.open_until {
            None => true,
            Some(until) if now >= until => {
                if breaker.probing {
                    return false;
                }
                breaker.probing = true;
                true
            }
            Some(_) => false,
        }
    }
}

/// Counters, config and probes shared between the ring and the
/// reactor-side demultiplexer handlers.
struct RingShared {
    config: CacheRingConfig,
    remote_hits: AtomicU64,
    remote_misses: AtomicU64,
    local_hits: AtomicU64,
    write_throughs: AtomicU64,
    failures: AtomicU64,
    circuit_opens: AtomicU64,
    epoch_changes: AtomicU64,
    all_nodes_down: AtomicU64,
    /// Store-level hit/miss counters (the [`SessionStore`] contract).
    store_hits: AtomicU64,
    store_misses: AtomicU64,
    /// Set once by [`CacheRing::instrument`].
    probes: std::sync::OnceLock<RingProbes>,
}

impl RingShared {
    /// Success bookkeeping for one replied frame: close the breaker,
    /// release any half-open claim, track the node's epoch. Runs on the
    /// reactor thread for every decoded reply.
    fn op_succeeded(&self, node: &NodeState, epoch: u64) {
        {
            let mut breaker = node.breaker.lock();
            breaker.consecutive_failures = 0;
            breaker.open_until = None;
            breaker.probing = false;
        }
        let previous = node.last_epoch.swap(epoch, Ordering::Relaxed);
        if previous != 0 && previous != epoch {
            self.epoch_changes.fetch_add(1, Ordering::Relaxed);
            if let Some(probes) = self.probes.get() {
                probes.telemetry.emit_with(|| TelemetryEvent::EpochBump {
                    node: node.endpoint.name().to_string(),
                    epoch,
                });
            }
        }
    }

    /// Failure bookkeeping for one failed frame (dial, send, timeout or
    /// link death): count it and feed the node's breaker. Releases any
    /// half-open claim — a failed probe re-arms the cooldown, so the
    /// next probe waits it out again.
    fn op_failed(&self, node: &NodeState) {
        self.failures.fetch_add(1, Ordering::Relaxed);
        let mut breaker = node.breaker.lock();
        breaker.probing = false;
        breaker.consecutive_failures += 1;
        if breaker.consecutive_failures >= self.config.breaker_threshold {
            // (Re)open the circuit; a half-open probe that fails lands
            // here again and re-arms the cooldown.
            breaker.open_until = Some(Instant::now() + self.config.breaker_cooldown);
            self.circuit_opens.fetch_add(1, Ordering::Relaxed);
            if let Some(probes) = self.probes.get() {
                probes
                    .telemetry
                    .emit_with(|| TelemetryEvent::CircuitOpen { node: node.index });
            }
        }
    }
}

/// Mark a link dead, detach it from its node's conn slot, and fail every
/// id still in flight — one ring-level failure (and breaker feed) per
/// pending frame, matching what each frame's caller would have counted.
fn kill_link(shared: &RingShared, node: &NodeState, link: &Arc<NodeLink>) {
    link.dead.store(true, Ordering::Relaxed);
    {
        let mut conn = node.conn.lock();
        if conn
            .as_ref()
            .is_some_and(|current| Arc::ptr_eq(current, link))
        {
            *conn = None;
        }
    }
    let pending: Vec<Pending> = link.inflight.lock().drain().map(|(_, p)| p).collect();
    for entry in pending {
        shared.op_failed(node);
        match entry {
            Pending::One(waiter) => waiter.fulfill(Outcome::LinkDead),
            Pending::Lookups(keys) => {
                for (_, waiter) in keys {
                    waiter.fulfill(KeyOutcome::Failed);
                }
            }
        }
    }
}

/// The reactor-side demultiplexer: pair one reply frame with its waiter
/// by request id. Hits inside batch replies read-through-prefetch into
/// the local tier here, so sibling keys warm the machine regardless of
/// whether their own caller is still waiting.
fn demux(
    shared: &RingShared,
    node: &NodeState,
    local: &SharedSessionCache,
    link: &NodeLink,
    frame: &[u8],
) {
    let Ok(framed) = Response::decode(frame) else {
        return;
    };
    // The ring only speaks v2; an id-less (v1) reply pairs with nothing.
    let Some(id) = framed.request_id else { return };
    let response = framed.response;
    shared.op_succeeded(node, response.epoch());
    match link.inflight.lock().remove(&id) {
        Some(Pending::One(waiter)) => waiter.fulfill(Outcome::Response(response)),
        Some(Pending::Lookups(keys)) => match response {
            Response::Batch { results, .. } if results.len() == keys.len() => {
                for ((key, waiter), result) in keys.into_iter().zip(results) {
                    match result {
                        Some(premaster) => {
                            local.insert(key, premaster.clone());
                            waiter.fulfill(KeyOutcome::Hit(premaster));
                        }
                        None => waiter.fulfill(KeyOutcome::Miss),
                    }
                }
            }
            // A refused or malformed batch reply: every key falls back.
            _ => {
                for (_, waiter) in keys {
                    waiter.fulfill(KeyOutcome::Failed);
                }
            }
        },
        // Late reply after its caller timed out: the success bookkeeping
        // above still counts — the node *is* alive.
        None => {}
    }
}

/// The distributed session-cache client: rendezvous routing over the
/// node endpoints, pipelined per-node links, coalesced batches, circuit
/// breaking, local miss-through tier.
pub struct CacheRing {
    shared: Arc<RingShared>,
    nodes: Vec<Arc<NodeState>>,
    local: Arc<SharedSessionCache>,
    /// Drives the demultiplexer of every node link — one sthread for the
    /// whole ring, however many nodes and in-flight requests.
    reactor: Reactor,
}

impl std::fmt::Debug for CacheRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheRing")
            .field("nodes", &self.nodes.len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl CacheRing {
    /// A ring over `endpoints`. Routing depends only on the node *names*,
    /// so two machines given the same endpoints (in any order) route every
    /// key identically.
    pub fn new(endpoints: Vec<CacheEndpoint>, config: CacheRingConfig) -> CacheRing {
        CacheRing {
            nodes: endpoints
                .into_iter()
                .enumerate()
                .map(|(index, endpoint)| {
                    Arc::new(NodeState {
                        index,
                        seed: fnv1a(endpoint.name().as_bytes()),
                        endpoint,
                        conn: Mutex::new(None),
                        breaker: Mutex::new(Breaker {
                            consecutive_failures: 0,
                            open_until: None,
                            probing: false,
                        }),
                        last_epoch: AtomicU64::new(0),
                        queue: Mutex::new(LookupQueue::default()),
                    })
                })
                .collect(),
            local: Arc::new(SharedSessionCache::with_capacity(
                config.local_capacity.max(1),
            )),
            shared: Arc::new(RingShared {
                config: CacheRingConfig {
                    breaker_threshold: config.breaker_threshold.max(1),
                    max_batch: config.max_batch.clamp(1, MAX_BATCH_KEYS),
                    ..config
                },
                remote_hits: AtomicU64::new(0),
                remote_misses: AtomicU64::new(0),
                local_hits: AtomicU64::new(0),
                write_throughs: AtomicU64::new(0),
                failures: AtomicU64::new(0),
                circuit_opens: AtomicU64::new(0),
                epoch_changes: AtomicU64::new(0),
                all_nodes_down: AtomicU64::new(0),
                store_hits: AtomicU64::new(0),
                store_misses: AtomicU64::new(0),
                probes: std::sync::OnceLock::new(),
            }),
            reactor: Reactor::spawn("cachering"),
        }
    }

    /// Register the ring on `telemetry` (idempotent): live latency
    /// histograms `cachenet.lookup` (every lookup), its
    /// `cachenet.lookup.remote` / `cachenet.lookup.local` split by which
    /// tier answered (batch ops record one sample per **key**, so p99
    /// stays comparable with single-op traffic), the `cachenet.batch.size`
    /// key-count histogram, plus a pull collector for the ring counters
    /// (`cachenet.remote_hits`, `cachenet.failures`,
    /// `cachenet.circuit_opens`, …), the `cachenet.pipeline.inflight`
    /// gauge (requests currently in flight across all node links), the
    /// currently-open breaker count and the local tier's residency. The
    /// ring's reactor contributes to the `reactor.*` rows. Audit events
    /// ([`TelemetryEvent::CircuitOpen`], [`TelemetryEvent::EpochBump`])
    /// flow to an installed sink from the moment this returns.
    pub fn instrument(self: &Arc<Self>, telemetry: &Telemetry) {
        let probes = RingProbes {
            telemetry: telemetry.clone(),
            lookup: telemetry.histogram("cachenet.lookup"),
            lookup_remote: telemetry.histogram("cachenet.lookup.remote"),
            lookup_local: telemetry.histogram("cachenet.lookup.local"),
            batch_size: telemetry.histogram("cachenet.batch.size"),
        };
        if self.shared.probes.set(probes).is_err() {
            return;
        }
        self.reactor.instrument(telemetry);
        let ring = Arc::downgrade(self);
        telemetry.register_collector(move |sample| {
            let Some(ring) = ring.upgrade() else { return };
            let stats = ring.stats();
            sample.counter("cachenet.remote_hits", stats.remote_hits);
            sample.counter("cachenet.remote_misses", stats.remote_misses);
            sample.counter("cachenet.local_hits", stats.local_hits);
            sample.counter("cachenet.write_throughs", stats.write_throughs);
            sample.counter("cachenet.failures", stats.failures);
            sample.counter("cachenet.circuit_opens", stats.circuit_opens);
            sample.counter("cachenet.epoch_changes", stats.epoch_changes);
            sample.counter("cachenet.all_nodes_down", stats.all_nodes_down);
            let now = Instant::now();
            let open = ring.nodes.iter().filter(|n| !n.routable(now)).count();
            sample.gauge("cachenet.breaker_open", open as u64);
            sample.gauge("cachenet.local_resident", ring.local.len() as u64);
            let inflight: usize = ring
                .nodes
                .iter()
                .map(|node| {
                    node.conn
                        .lock()
                        .as_ref()
                        .map_or(0, |link| link.inflight.lock().len())
                })
                .sum();
            sample.gauge("cachenet.pipeline.inflight", inflight as u64);
        });
    }

    /// Number of nodes in the ring (routable or not).
    pub fn nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Ring counters so far.
    pub fn stats(&self) -> CacheRingStats {
        CacheRingStats {
            remote_hits: self.shared.remote_hits.load(Ordering::Relaxed),
            remote_misses: self.shared.remote_misses.load(Ordering::Relaxed),
            local_hits: self.shared.local_hits.load(Ordering::Relaxed),
            write_throughs: self.shared.write_throughs.load(Ordering::Relaxed),
            failures: self.shared.failures.load(Ordering::Relaxed),
            circuit_opens: self.shared.circuit_opens.load(Ordering::Relaxed),
            epoch_changes: self.shared.epoch_changes.load(Ordering::Relaxed),
            all_nodes_down: self.shared.all_nodes_down.load(Ordering::Relaxed),
        }
    }

    /// The last epoch each node reported, in node order (0 = no reply
    /// yet). A bump against an earlier snapshot is a detected restart.
    pub fn node_epochs(&self) -> Vec<u64> {
        self.nodes
            .iter()
            .map(|node| node.last_epoch.load(Ordering::Relaxed))
            .collect()
    }

    /// The node index `id` routes to when every node is routable —
    /// exposed so tests (and operators) can predict placement.
    pub fn route_of(&self, id: &SessionId) -> Option<usize> {
        self.ranked(id).first().copied()
    }

    /// Node indexes ranked by rendezvous score for `id`, best first.
    fn ranked(&self, id: &SessionId) -> Vec<usize> {
        let key = id.bucket_key();
        let mut scored: Vec<(u64, usize)> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(idx, node)| {
                // Mix the node seed with the key; Fibonacci-multiply and
                // keep the well-mixed high word as the score.
                let score = (node.seed ^ key).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                (score, idx)
            })
            .collect();
        scored.sort_unstable_by(|a, b| b.cmp(a));
        scored.into_iter().map(|(_, idx)| idx).collect()
    }

    /// The first routable node for `id`, honouring open circuits and the
    /// half-open probe cap: a recovering node admits one probe at a
    /// time; every other caller falls through to its next-ranked node.
    /// The claim is always resolved — success bookkeeping
    /// ([`RingShared::op_succeeded`], on the demux path) and failure
    /// bookkeeping ([`RingShared::op_failed`]) both clear it.
    fn routed_node(&self, id: &SessionId) -> Option<Arc<NodeState>> {
        let now = Instant::now();
        self.ranked(id)
            .into_iter()
            .map(|idx| self.nodes[idx].clone())
            .find(|node| node.claim_routable(now))
    }

    /// The node's live pipelined link, dialing (and registering the
    /// demultiplexer on the ring's reactor) if there is none. `None`
    /// means the dial failed — the caller owns that failure's breaker
    /// feed.
    fn link_of(&self, node: &Arc<NodeState>) -> Option<Arc<NodeLink>> {
        let mut conn = node.conn.lock();
        if let Some(existing) = conn.as_ref() {
            if !existing.dead.load(Ordering::Relaxed) {
                return Some(existing.clone());
            }
        }
        let duplex = match node.endpoint.dial(self.shared.config.source) {
            Ok(duplex) => Arc::new(duplex),
            Err(_) => {
                *conn = None;
                return None;
            }
        };
        let link = Arc::new(NodeLink {
            link: duplex.clone(),
            next_id: AtomicU32::new(0),
            inflight: Mutex::new(HashMap::new()),
            dead: AtomicBool::new(false),
        });
        *conn = Some(link.clone());
        drop(conn);
        let shared = self.shared.clone();
        let state = node.clone();
        let local = self.local.clone();
        let demux_link = link.clone();
        self.reactor
            .register(duplex, move |_link, event| match event {
                LinkEvent::Message(frame) => {
                    demux(&shared, &state, &local, &demux_link, &frame);
                    LinkVerdict::Keep
                }
                LinkEvent::Closed => {
                    kill_link(&shared, &state, &demux_link);
                    LinkVerdict::Done
                }
            });
        Some(link)
    }

    /// One pipelined round trip on `node`'s persistent link, bounded by
    /// `op_timeout`.
    ///
    /// The wire v2 request-id contract: the conn mutex is held only to
    /// *fetch* the link, never across the round trip. Every frame
    /// carries a fresh `u16` id, the node echoes it, and the
    /// demultiplexer resolves the reply by id — so any number of
    /// concurrent ops (and coalesced batches) share one link with no
    /// head-of-line serialisation. A timeout abandons only its own id
    /// (the late reply finds no waiter and is dropped; v1 had to drop
    /// the whole link to avoid pairing desynchronised replies), while
    /// dial failures, send failures and hang-ups fail every id in flight
    /// and feed the breaker once per pending frame.
    fn remote(&self, node: &Arc<NodeState>, request: &Request) -> Option<Response> {
        // A caller serving a traced request gets a client-side cachenet
        // span covering the whole round trip, and the frame carries the
        // span's context so the node's server-side span joins the trace.
        let mut span = trace::span(SpanKind::Cachenet, node.index as u32);
        let result = self.remote_framed(node, request, span.as_ref().map(SpanGuard::ctx));
        if let Some(span) = span.as_mut() {
            span.set_ok(result.is_some());
        }
        result
    }

    fn remote_framed(
        &self,
        node: &Arc<NodeState>,
        request: &Request,
        wire_trace: Option<TraceContext>,
    ) -> Option<Response> {
        let Some(link) = self.link_of(node) else {
            self.shared.op_failed(node);
            return None;
        };
        let waiter = Arc::new(Waiter::new());
        let id = link.alloc_id();
        link.inflight
            .lock()
            .insert(id, Pending::One(waiter.clone()));
        if link
            .link
            .send(&request.encode_traced(id, wire_trace))
            .is_err()
        {
            link.inflight.lock().remove(&id);
            kill_link(&self.shared, node, &link);
            self.shared.op_failed(node);
            return None;
        }
        match waiter.wait(self.shared.config.op_timeout) {
            Some(Outcome::Response(response)) => Some(response),
            // Link death already counted (once per frame) by kill_link.
            Some(Outcome::LinkDead) => None,
            None => {
                // Timed out: abandon this id and feed the breaker. The
                // link survives — the ops pipelined behind this one are
                // still in flight.
                link.inflight.lock().remove(&id);
                self.shared.op_failed(node);
                None
            }
        }
    }

    /// Enqueue one key on `node`'s coalescing queue, pump the sender,
    /// and wait for this key's slice of whatever frame carried it.
    fn remote_lookup(&self, node: &Arc<NodeState>, id: SessionId) -> KeyOutcome {
        let waiter = Arc::new(Waiter::new());
        node.queue.lock().items.push((id, waiter.clone()));
        self.pump(node);
        match waiter.wait(self.shared.config.op_timeout) {
            Some(outcome) => outcome,
            None => {
                self.shared.op_failed(node);
                KeyOutcome::Failed
            }
        }
    }

    /// The flat-combining sender: whichever caller finds no sender
    /// active drains the queue into `LookupBatch` frames — a lone key
    /// rides as a batch of one (single code path) — until the queue is
    /// empty. Sending never waits for replies, so the sender is not
    /// penalised relative to the callers it combines for.
    fn pump(&self, node: &Arc<NodeState>) {
        {
            let mut queue = node.queue.lock();
            if queue.sender_active || queue.items.is_empty() {
                // The active sender re-checks emptiness under this lock
                // before retiring, so our key cannot be stranded.
                return;
            }
            queue.sender_active = true;
        }
        let max_batch = self.shared.config.max_batch;
        loop {
            let mut batch: Vec<(SessionId, Arc<Waiter<KeyOutcome>>)> = {
                let mut queue = node.queue.lock();
                if queue.items.is_empty() {
                    queue.sender_active = false;
                    return;
                }
                let take = queue.items.len().min(max_batch);
                queue.items.drain(..take).collect()
            };
            let window = self.shared.config.batch_window;
            if batch.len() < max_batch && window > Duration::ZERO {
                // Bounded flush window: linger once so a concurrent
                // burst can fill the frame before it flies.
                std::thread::sleep(window);
                let mut queue = node.queue.lock();
                let take = queue.items.len().min(max_batch - batch.len());
                let extra: Vec<_> = queue.items.drain(..take).collect();
                drop(queue);
                batch.extend(extra);
            }
            self.send_batch(node, batch);
        }
    }

    /// Frame one coalesced batch and send it; the demultiplexer fulfils
    /// the per-key waiters when the reply lands.
    fn send_batch(&self, node: &Arc<NodeState>, batch: Vec<(SessionId, Arc<Waiter<KeyOutcome>>)>) {
        let Some(link) = self.link_of(node) else {
            self.shared.op_failed(node);
            for (_, waiter) in batch {
                waiter.fulfill(KeyOutcome::Failed);
            }
            return;
        };
        if let Some(probes) = self.shared.probes.get() {
            probes.batch_size.record(batch.len() as u64);
        }
        let keys: Vec<SessionId> = batch.iter().map(|(key, _)| *key).collect();
        let id = link.alloc_id();
        link.inflight.lock().insert(id, Pending::Lookups(batch));
        // The flat-combined frame flies under the *sender's* trace when
        // it has one (the span covers framing + send; replies land on
        // the reactor thread). Keys combined in from other callers ride
        // along untraced — one frame, one context.
        let mut span = trace::span(SpanKind::Cachenet, node.index as u32);
        let wire = Request::LookupBatch(keys).encode_traced(id, span.as_ref().map(SpanGuard::ctx));
        if link.link.send(&wire).is_err() {
            if let Some(span) = span.as_mut() {
                span.set_ok(false);
            }
            let removed = link.inflight.lock().remove(&id);
            kill_link(&self.shared, node, &link);
            self.shared.op_failed(node);
            if let Some(Pending::Lookups(keys)) = removed {
                for (_, waiter) in keys {
                    waiter.fulfill(KeyOutcome::Failed);
                }
            }
        }
    }

    /// Per-key lookup accounting shared by [`SessionStore::lookup`] and
    /// [`CacheRing::lookup_batch`]: counters, local fallback, store
    /// hit/miss, and **one histogram sample per key** (the satellite
    /// contract keeping batch-era p99 comparable with v1's).
    fn account_key(
        &self,
        id: &SessionId,
        outcome: KeyOutcome,
        started: Option<Instant>,
    ) -> Option<Vec<u8>> {
        let remote_answered = matches!(outcome, KeyOutcome::Hit(_));
        let found = match outcome {
            KeyOutcome::Hit(premaster) => {
                self.shared.remote_hits.fetch_add(1, Ordering::Relaxed);
                // The demultiplexer already warmed the local tier
                // (read-through prefetch covers this key too).
                Some(premaster)
            }
            other => {
                if matches!(other, KeyOutcome::Miss) {
                    self.shared.remote_misses.fetch_add(1, Ordering::Relaxed);
                }
                let local = self.local.lookup(id);
                if local.is_some() {
                    self.shared.local_hits.fetch_add(1, Ordering::Relaxed);
                }
                local
            }
        };
        if found.is_some() {
            self.shared.store_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.shared.store_misses.fetch_add(1, Ordering::Relaxed);
        }
        if let (Some(probes), Some(started)) = (self.shared.probes.get(), started) {
            let nanos = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            probes.lookup.record(nanos);
            if remote_answered {
                probes.lookup_remote.record(nanos);
            } else {
                probes.lookup_local.record(nanos);
            }
            let hit = found.is_some();
            probes
                .telemetry
                .emit_with(|| TelemetryEvent::CachenetLookup {
                    remote: remote_answered,
                    hit,
                    nanos,
                });
        }
        found
    }

    /// Multi-key lookup: keys group by their routed node and fly as
    /// (coalesced) `LookupBatch` frames; results come back in input
    /// order. Every remote hit read-through-prefetches into the local
    /// tier; failed keys fall back to it. Histograms record one sample
    /// per **key**.
    pub fn lookup_batch(&self, ids: &[SessionId]) -> Vec<Option<Vec<u8>>> {
        let started = self.shared.probes.get().map(|_| Instant::now());
        // Enqueue every key first — concurrent keys bound for the same
        // node coalesce into shared frames — then pump each touched node
        // and wait the waiters in input order.
        let mut waiters: Vec<PendingKey> = Vec::with_capacity(ids.len());
        let mut touched: Vec<Arc<NodeState>> = Vec::new();
        for id in ids {
            match self.routed_node(id) {
                Some(node) => {
                    let waiter = Arc::new(Waiter::new());
                    node.queue.lock().items.push((*id, waiter.clone()));
                    if !touched.iter().any(|seen| Arc::ptr_eq(seen, &node)) {
                        touched.push(node.clone());
                    }
                    waiters.push(Some((node, waiter)));
                }
                None => {
                    self.shared.all_nodes_down.fetch_add(1, Ordering::Relaxed);
                    waiters.push(None);
                }
            }
        }
        for node in &touched {
            self.pump(node);
        }
        ids.iter()
            .zip(waiters)
            .map(|(id, entry)| {
                let outcome = match entry {
                    Some((node, waiter)) => match waiter.wait(self.shared.config.op_timeout) {
                        Some(outcome) => outcome,
                        None => {
                            self.shared.op_failed(&node);
                            KeyOutcome::Failed
                        }
                    },
                    None => KeyOutcome::Failed,
                };
                self.account_key(id, outcome, started)
            })
            .collect()
    }

    /// Multi-key write-through: the local tier takes every entry, then
    /// the entries group by routed node and fly as `InsertBatch` frames
    /// (chunked to `max_batch` keys). `write_throughs` counts acked
    /// keys, not frames.
    pub fn insert_batch(&self, entries: Vec<(SessionId, Vec<u8>)>) {
        for (id, premaster) in &entries {
            self.local.insert(*id, premaster.clone());
        }
        let mut groups: NodeGroups = Vec::new();
        for (id, premaster) in entries {
            match self.routed_node(&id) {
                Some(node) => match groups.iter_mut().find(|(seen, _)| Arc::ptr_eq(seen, &node)) {
                    Some((_, group)) => group.push((id, premaster)),
                    None => groups.push((node, vec![(id, premaster)])),
                },
                None => {
                    self.shared.all_nodes_down.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        for (node, group) in groups {
            for chunk in group.chunks(self.shared.config.max_batch) {
                if let Some(probes) = self.shared.probes.get() {
                    probes.batch_size.record(chunk.len() as u64);
                }
                if let Some(Response::Ok { .. }) =
                    self.remote(&node, &Request::InsertBatch(chunk.to_vec()))
                {
                    self.shared
                        .write_throughs
                        .fetch_add(chunk.len() as u64, Ordering::Relaxed);
                }
            }
        }
    }

    /// The local miss-through tier (a machine's own recently seen
    /// sessions; also the only tier left when every circuit is open).
    pub fn local(&self) -> &SharedSessionCache {
        &self.local
    }
}

impl SessionStore for CacheRing {
    /// Write-through: the local tier always takes the session; the routed
    /// node takes it best-effort (a failure feeds the breaker and is
    /// absorbed — the handshake must never block on cache plumbing).
    fn insert(&self, id: SessionId, premaster: Vec<u8>) {
        self.local.insert(id, premaster.clone());
        match self.routed_node(&id) {
            Some(node) => {
                if let Some(Response::Ok { .. }) =
                    self.remote(&node, &Request::Insert(id, premaster))
                {
                    self.shared.write_throughs.fetch_add(1, Ordering::Relaxed);
                }
            }
            None => {
                self.shared.all_nodes_down.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Remote-first with local miss-through: the key joins its routed
    /// node's coalescing queue (a lone key flies as a batch of one), the
    /// reply's slice for this key comes back through the demultiplexer;
    /// on a hit the local tier is already warm (prefetch), on a miss,
    /// failure, or an all-open ring the local tier answers.
    fn lookup(&self, id: &SessionId) -> Option<Vec<u8>> {
        let started = self.shared.probes.get().map(|_| Instant::now());
        let outcome = match self.routed_node(id) {
            Some(node) => self.remote_lookup(&node, *id),
            None => {
                self.shared.all_nodes_down.fetch_add(1, Ordering::Relaxed);
                KeyOutcome::Failed
            }
        };
        self.account_key(id, outcome, started)
    }

    /// Remove everywhere: local tier immediately, then `Invalidate`
    /// **broadcast to every node, circuits ignored**. Removal is the
    /// compromise-response path, so it must not inherit the lookup
    /// path's availability trade-offs: the session may be resident on a
    /// non-owner node (inserted while the owner's circuit was open), and
    /// an owner skipped because its breaker is open would come back
    /// after cooldown still holding — and serving — the revoked
    /// premaster. Each send is still bounded by `op_timeout`; a node
    /// that is truly down holds nothing it can serve until it restarts,
    /// and a restart epoch-invalidates whatever it held.
    fn remove(&self, id: &SessionId) {
        self.local.remove(id);
        for node in &self.nodes {
            let node = node.clone();
            let _ = self.remote(&node, &Request::Invalidate(*id));
        }
    }

    /// `(hits, misses)` of ring lookups as a whole (remote and local
    /// tiers combined): one lookup, one count — the same contract
    /// [`SharedSessionCache::hit_rate`] documents.
    fn stats(&self) -> (u64, u64) {
        (
            self.shared.store_hits.load(Ordering::Relaxed),
            self.shared.store_misses.load(Ordering::Relaxed),
        )
    }

    /// Sessions resident in the **local** tier (the distributed total is
    /// a per-node property; see [`crate::CacheNode::len`]).
    fn len(&self) -> usize {
        self.local.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{CacheNode, CacheNodeConfig};

    fn id(byte: u8) -> SessionId {
        SessionId::from_bytes(&[byte; 16]).unwrap()
    }

    fn quick_config() -> CacheRingConfig {
        CacheRingConfig {
            source: SourceAddr::new([10, 2, 0, 1], 40_000),
            op_timeout: Duration::from_millis(200),
            breaker_threshold: 1,
            breaker_cooldown: Duration::from_millis(50),
            local_capacity: 128,
            ..CacheRingConfig::default()
        }
    }

    fn three_nodes() -> (Vec<CacheNode>, CacheRing) {
        let nodes: Vec<CacheNode> = (0..3)
            .map(|n| CacheNode::spawn(CacheNodeConfig::named(&format!("cache-{n}"))))
            .collect();
        let ring = CacheRing::new(
            nodes.iter().map(CacheNode::endpoint).collect(),
            quick_config(),
        );
        (nodes, ring)
    }

    #[test]
    fn routing_is_deterministic_and_spread() {
        let (_nodes, ring) = three_nodes();
        let (_nodes2, ring2) = three_nodes();
        let mut used = std::collections::HashSet::new();
        for byte in 0..64u8 {
            let route = ring.route_of(&id(byte)).unwrap();
            assert_eq!(
                route,
                ring2.route_of(&id(byte)).unwrap(),
                "two machines must agree on every key's owner"
            );
            used.insert(route);
        }
        assert_eq!(used.len(), 3, "64 keys must touch all 3 nodes");
    }

    #[test]
    fn insert_on_one_ring_is_visible_to_another_machine() {
        let (nodes, ring_a) = three_nodes();
        // Machine B: its own ring over the same endpoints.
        let ring_b = CacheRing::new(
            nodes.iter().map(CacheNode::endpoint).collect(),
            CacheRingConfig {
                source: SourceAddr::new([10, 2, 0, 2], 40_001),
                ..quick_config()
            },
        );
        ring_a.insert(id(1), b"premaster".to_vec());
        assert_eq!(
            ring_b.lookup(&id(1)).expect("cross-machine hit"),
            b"premaster"
        );
        assert_eq!(ring_b.stats_of_store(), (1, 0));
        assert_eq!(ring_b.stats().remote_hits, 1);
        assert_eq!(
            ring_b.local.len(),
            1,
            "a remote hit warms machine B's local tier"
        );
        // Totals live on the nodes, one of which holds the key.
        let resident: usize = nodes.iter().map(CacheNode::len).sum();
        assert_eq!(resident, 1);
    }

    #[test]
    fn dead_node_falls_back_to_local_tier_without_hanging() {
        let (nodes, ring) = three_nodes();
        ring.insert(id(9), b"pm".to_vec());
        let owner = ring.route_of(&id(9)).unwrap();
        nodes[owner].kill();
        let started = Instant::now();
        assert_eq!(
            ring.lookup(&id(9)).expect("local miss-through"),
            b"pm",
            "the local tier must still resume the session"
        );
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "bounded latency even with the owner dead"
        );
        assert_eq!(ring.stats().local_hits, 1);
        assert!(ring.stats().failures >= 1);
        assert!(ring.stats().circuit_opens >= 1);
    }

    #[test]
    fn open_circuit_reroutes_keys_to_the_next_node() {
        let (nodes, ring) = three_nodes();
        let owner = ring.route_of(&id(3)).unwrap();
        nodes[owner].kill();
        // First insert eats the failure and opens the circuit...
        ring.insert(id(3), b"pm".to_vec());
        assert!(ring.stats().circuit_opens >= 1);
        // ...the next insert routes straight to the runner-up node.
        ring.insert(id(3), b"pm".to_vec());
        assert_eq!(ring.stats().write_throughs, 1);
        let resident: usize = nodes
            .iter()
            .enumerate()
            .filter(|(idx, _)| *idx != owner)
            .map(|(_, node)| node.len())
            .sum();
        assert_eq!(resident, 1, "the key lives on a surviving node now");
        // And a lookup through the rerouted path hits remotely.
        assert!(ring.lookup(&id(3)).is_some());
        assert!(ring.stats().remote_hits >= 1);
    }

    #[test]
    fn half_open_probe_recovers_a_restarted_node() {
        let (nodes, ring) = three_nodes();
        let owner = ring.route_of(&id(5)).unwrap();
        // Seed an epoch observation so the restart is detectable.
        ring.insert(id(5), b"pm".to_vec());
        assert_eq!(ring.stats().write_throughs, 1);
        nodes[owner].kill();
        ring.insert(id(5), b"pm".to_vec()); // failure → circuit opens
        nodes[owner].restart();
        // After the cooldown the half-open probe finds it again.
        std::thread::sleep(Duration::from_millis(80));
        ring.insert(id(5), b"pm2".to_vec());
        assert_eq!(ring.stats().write_throughs, 2);
        let deadline = Instant::now() + Duration::from_secs(2);
        while ring.stats().epoch_changes == 0 && Instant::now() < deadline {
            ring.lookup(&id(5));
        }
        assert!(
            ring.stats().epoch_changes >= 1,
            "the bumped epoch must be observed: {:?}",
            ring.stats()
        );
    }

    #[test]
    fn half_open_probes_are_capped_at_one_per_node() {
        // A single-node ring whose node died: once the breaker cooldown
        // expires, 8 threads race to route to the recovering node at the
        // same instant. Exactly one may probe it — observable as exactly
        // one additional remote failure — while the rest fall through to
        // the local tier instead of thundering-herding the node.
        let node = CacheNode::spawn(CacheNodeConfig::named("cache-solo"));
        let ring = CacheRing::new(
            vec![node.endpoint()],
            CacheRingConfig {
                source: SourceAddr::new([10, 2, 0, 3], 40_002),
                breaker_cooldown: Duration::from_millis(500),
                ..quick_config()
            },
        );
        ring.insert(id(21), b"pm".to_vec());
        node.kill();
        assert_eq!(ring.lookup(&id(21)).expect("local miss-through"), b"pm");
        assert_eq!(ring.stats().failures, 1, "the dead node opened its circuit");
        // Let the cooldown expire, then race the half-open node.
        std::thread::sleep(Duration::from_millis(650));
        let barrier = std::sync::Barrier::new(8);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    barrier.wait();
                    assert_eq!(ring.lookup(&id(21)).expect("local tier"), b"pm");
                });
            }
        });
        assert_eq!(
            ring.stats().failures,
            2,
            "exactly one caller probes the recovering node: {:?}",
            ring.stats()
        );
    }

    #[test]
    fn all_nodes_down_serves_purely_locally_and_deterministically() {
        let (nodes, ring) = three_nodes();
        ring.insert(id(7), b"pm".to_vec());
        for node in &nodes {
            node.kill();
        }
        // Open every circuit (threshold 1: one failure each).
        for byte in 0..12u8 {
            ring.lookup(&id(byte));
        }
        let started = Instant::now();
        assert_eq!(ring.lookup(&id(7)).expect("local"), b"pm");
        assert!(ring.lookup(&id(200)).is_none(), "unknown id: clean miss");
        assert!(
            started.elapsed() < Duration::from_secs(1),
            "an all-dead ring must not hang"
        );
        assert!(ring.stats().all_nodes_down > 0);
    }

    #[test]
    fn remove_invalidates_the_remote_copy_too() {
        let (nodes, ring) = three_nodes();
        ring.insert(id(11), b"pm".to_vec());
        SessionStore::remove(&ring, &id(11));
        assert!(ring.lookup(&id(11)).is_none());
        let resident: usize = nodes.iter().map(CacheNode::len).sum();
        assert_eq!(resident, 0, "the invalidate reached the owner node");
    }

    #[test]
    fn remove_broadcast_reaches_copies_on_non_owner_nodes() {
        // A session inserted while its owner's circuit was open lives on
        // the runner-up node. Removal is the compromise-response path:
        // it must invalidate that copy too — routing the Invalidate only
        // to the (skipped) owner would leave the revoked premaster
        // resident and servable.
        let (nodes, ring) = three_nodes();
        let owner = ring.route_of(&id(13)).unwrap();
        nodes[owner].kill();
        ring.insert(id(13), b"pm".to_vec()); // failure → owner circuit opens
        ring.insert(id(13), b"pm".to_vec()); // lands on the runner-up
        let resident: usize = nodes.iter().map(CacheNode::len).sum();
        assert_eq!(resident, 1, "the copy lives on a non-owner node");
        SessionStore::remove(&ring, &id(13));
        let resident: usize = nodes.iter().map(CacheNode::len).sum();
        assert_eq!(resident, 0, "the broadcast reached the non-owner copy");
        assert!(ring.lookup(&id(13)).is_none(), "local tier cleared too");
    }

    #[test]
    fn concurrent_lookups_share_one_pipelined_link() {
        // 8 threads look up through one ring to one node at once. The
        // v2 pipeline multiplexes them over the single persistent link —
        // observable as exactly one accepted link on the node — and the
        // coalescer answers every key correctly (per-key node stats).
        let node = CacheNode::spawn(CacheNodeConfig::named("cache-pipe"));
        let ring = CacheRing::new(
            vec![node.endpoint()],
            CacheRingConfig {
                source: SourceAddr::new([10, 2, 0, 4], 40_003),
                ..quick_config()
            },
        );
        for byte in 0..8u8 {
            ring.insert(id(byte), vec![byte]);
        }
        assert_eq!(node.stats().links_accepted, 1);
        let barrier = std::sync::Barrier::new(8);
        std::thread::scope(|scope| {
            for byte in 0..8u8 {
                let ring = &ring;
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    assert_eq!(ring.lookup(&id(byte)).expect("hit"), vec![byte]);
                });
            }
        });
        let stats = node.stats();
        assert_eq!(
            stats.links_accepted, 1,
            "all 8 concurrent lookups rode the one pipelined link"
        );
        assert_eq!(stats.lookups, 8, "batch frames count per key");
        assert!(
            stats.batches >= 1 && stats.batches <= 8,
            "lookups flew as LookupBatch frames: {stats:?}"
        );
        assert_eq!(ring.stats().remote_hits, 8);
    }

    #[test]
    fn lookup_batch_returns_input_order_and_prefetches_hits() {
        let node = CacheNode::spawn(CacheNodeConfig::named("cache-batch"));
        let ring_a = CacheRing::new(
            vec![node.endpoint()],
            CacheRingConfig {
                source: SourceAddr::new([10, 2, 0, 5], 40_004),
                ..quick_config()
            },
        );
        ring_a.insert_batch(vec![(id(1), b"a".to_vec()), (id(3), b"c".to_vec())]);
        assert_eq!(ring_a.stats().write_throughs, 2, "acked keys, not frames");

        // A second machine: its local tier is cold.
        let ring_b = CacheRing::new(
            vec![node.endpoint()],
            CacheRingConfig {
                source: SourceAddr::new([10, 2, 0, 6], 40_005),
                ..quick_config()
            },
        );
        let results = ring_b.lookup_batch(&[id(1), id(2), id(3)]);
        assert_eq!(
            results,
            vec![Some(b"a".to_vec()), None, Some(b"c".to_vec())],
            "input order, per-key answers"
        );
        assert_eq!(
            ring_b.local.len(),
            2,
            "both hits read-through-prefetched into the local tier"
        );
        // The prefetched keys now resume locally with the node dead.
        node.kill();
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(ring_b.lookup(&id(3)).expect("prefetched"), b"c");
    }

    #[test]
    fn lookup_histograms_record_one_sample_per_key() {
        // The satellite regression: batch ops must record one
        // `cachenet.lookup*` sample per key, not per frame, so p99 stays
        // comparable with the single-op trajectory.
        let node = CacheNode::spawn(CacheNodeConfig::named("cache-hist"));
        let ring = Arc::new(CacheRing::new(
            vec![node.endpoint()],
            CacheRingConfig {
                source: SourceAddr::new([10, 2, 0, 7], 40_006),
                ..quick_config()
            },
        ));
        let telemetry = Telemetry::new();
        ring.instrument(&telemetry);
        ring.insert_batch(vec![(id(1), b"a".to_vec()), (id(2), b"b".to_vec())]);
        let results = ring.lookup_batch(&[id(1), id(2), id(9)]);
        assert_eq!(results.iter().filter(|r| r.is_some()).count(), 2);
        let snapshot = telemetry.snapshot();
        let lookup = snapshot.histogram("cachenet.lookup").expect("histogram");
        assert_eq!(lookup.count, 3, "one sample per key in the batch");
        let remote = snapshot
            .histogram("cachenet.lookup.remote")
            .expect("histogram");
        assert_eq!(remote.count, 2, "the two remote hits");
        let batch = snapshot
            .histogram("cachenet.batch.size")
            .expect("histogram");
        assert!(batch.count >= 2, "insert + lookup frames recorded");
    }

    impl CacheRing {
        /// Test helper naming the trait's `stats` unambiguously.
        fn stats_of_store(&self) -> (u64, u64) {
            SessionStore::stats(self)
        }
    }
}
