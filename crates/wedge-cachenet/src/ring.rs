//! The cache ring: a machine's client for the distributed session cache.
//!
//! A [`CacheRing`] routes each [`SessionId`] to one [`CacheEndpoint`]
//! with **rendezvous (highest-random-weight) hashing** — every machine
//! holding the same node list agrees on the owner of every key with no
//! coordination, and when a node dies only its own keys move (to their
//! next-highest-scoring node), which is the consistent-hashing property
//! the ring needs to survive node churn.
//!
//! Remote operations are **bounded-latency**: one routed node, one
//! request, one reply awaited for at most
//! [`CacheRingConfig::op_timeout`]. Failures (dial refused, link dropped,
//! timeout) feed a per-node **circuit breaker** — after
//! [`CacheRingConfig::breaker_threshold`] consecutive failures the node is
//! skipped outright for [`CacheRingConfig::breaker_cooldown`], then
//! probed again (half-open). While a node's circuit is open its keys
//! route to their next-best node, so a dead node costs the ring one
//! timeout per key at most once per cooldown, not per lookup.
//!
//! The ring is itself a [`SessionStore`]: servers cannot tell it from the
//! in-process [`SharedSessionCache`]. Lookups **miss through** to a local
//! cache tier (so a machine keeps resuming its own sessions with every
//! cache node dead), inserts **write through** (local tier + routed
//! node), and every reply's epoch is tracked per node so a restarted
//! node is observable the moment it answers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use wedge_net::duplex::fnv1a;
use wedge_net::{Duplex, RecvTimeout, SourceAddr};
use wedge_telemetry::{Histogram, Telemetry, TelemetryEvent};
use wedge_tls::{SessionId, SessionStore, SharedSessionCache};

use crate::node::CacheEndpoint;
use crate::proto::{Request, Response};

/// Ring-client tuning.
#[derive(Debug, Clone, Copy)]
pub struct CacheRingConfig {
    /// The machine's own source address (stamped on every dialed link, so
    /// node-side traces and rate limiters see who is asking).
    pub source: SourceAddr,
    /// Hard bound on one remote operation's reply wait.
    pub op_timeout: Duration,
    /// Consecutive failures that open a node's circuit (minimum 1).
    pub breaker_threshold: u32,
    /// How long an open circuit skips the node before a half-open probe.
    pub breaker_cooldown: Duration,
    /// Capacity of the local miss-through tier.
    pub local_capacity: usize,
}

impl Default for CacheRingConfig {
    fn default() -> Self {
        CacheRingConfig {
            source: SourceAddr::new([127, 0, 0, 1], 0),
            op_timeout: Duration::from_millis(250),
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_millis(250),
            local_capacity: wedge_tls::DEFAULT_SESSION_CACHE_CAPACITY,
        }
    }
}

/// Ring-level counters (all monotonic).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheRingStats {
    /// Lookups answered by a cache node's `Hit`.
    pub remote_hits: u64,
    /// Lookups a cache node answered `Miss`.
    pub remote_misses: u64,
    /// Lookups answered by the local tier after the remote path failed or
    /// missed.
    pub local_hits: u64,
    /// Write-through inserts acknowledged `Ok` by a node.
    pub write_throughs: u64,
    /// Remote operations that failed (dial, send, timeout, decode) —
    /// each also feeds the owning node's circuit breaker.
    pub failures: u64,
    /// Times a node's circuit breaker opened.
    pub circuit_opens: u64,
    /// Epoch changes observed in node replies (each one is a detected
    /// node restart).
    pub epoch_changes: u64,
    /// Operations that found **no** routable node (every circuit open):
    /// served purely by the local tier.
    pub all_nodes_down: u64,
}

impl std::ops::AddAssign<&CacheRingStats> for CacheRingStats {
    /// Fold ring snapshots (e.g. across the machines of a fleet): every
    /// field is a monotonic counter and sums. Destructured exhaustively
    /// so a new field is a compile error here, not a silently dropped
    /// stat — the same convention as `SchedStats`.
    fn add_assign(&mut self, other: &CacheRingStats) {
        let CacheRingStats {
            remote_hits,
            remote_misses,
            local_hits,
            write_throughs,
            failures,
            circuit_opens,
            epoch_changes,
            all_nodes_down,
        } = other;
        self.remote_hits += remote_hits;
        self.remote_misses += remote_misses;
        self.local_hits += local_hits;
        self.write_throughs += write_throughs;
        self.failures += failures;
        self.circuit_opens += circuit_opens;
        self.epoch_changes += epoch_changes;
        self.all_nodes_down += all_nodes_down;
    }
}

/// Breaker state for one node.
#[derive(Debug)]
struct Breaker {
    consecutive_failures: u32,
    open_until: Option<Instant>,
    /// A half-open probe is in flight: one caller claimed the right to
    /// test the recovering node. Everyone else skips it (next-ranked
    /// node) until the probe resolves — without this, every concurrent
    /// lookup racing past an expired cooldown thundering-herds a node
    /// that may still be booting.
    probing: bool,
}

/// Live instruments installed by [`CacheRing::instrument`]: the overall
/// lookup latency plus the remote-answered / local-tier split.
struct RingProbes {
    telemetry: Telemetry,
    lookup: Histogram,
    lookup_remote: Histogram,
    lookup_local: Histogram,
}

struct RingNode {
    /// This node's position in the ring's endpoint list (stable — the
    /// index [`TelemetryEvent::CircuitOpen`] reports).
    index: usize,
    endpoint: CacheEndpoint,
    /// Routing seed: FNV-1a of the node name. Machines sharing a node
    /// list derive identical seeds, hence identical routing.
    seed: u64,
    /// The persistent link to the node (re-dialed on demand; dropped on
    /// any failure so a desynchronised reply can never be mis-paired).
    conn: Mutex<Option<Duplex>>,
    breaker: Mutex<Breaker>,
    /// Last epoch seen in a reply from this node (0 = none yet).
    last_epoch: AtomicU64,
}

impl RingNode {
    /// May this node be routed to right now? (Pure read — the gauge and
    /// tests use this; the routing path claims via
    /// [`RingNode::claim_routable`].) An open circuit says no until its
    /// cooldown passes.
    fn routable(&self, now: Instant) -> bool {
        let breaker = self.breaker.lock();
        match breaker.open_until {
            Some(until) => now >= until,
            None => true,
        }
    }

    /// [`RingNode::routable`], but with the half-open probe cap: a node
    /// whose cooldown has passed admits exactly **one** caller (the
    /// probe) and reads unroutable to everyone else until that probe
    /// resolves in [`CacheRing::remote`] — success closes the breaker,
    /// failure re-arms the cooldown. A closed breaker claims nothing.
    fn claim_routable(&self, now: Instant) -> bool {
        let mut breaker = self.breaker.lock();
        match breaker.open_until {
            None => true,
            Some(until) if now >= until => {
                if breaker.probing {
                    return false;
                }
                breaker.probing = true;
                true
            }
            Some(_) => false,
        }
    }
}

/// The distributed session-cache client: rendezvous routing over the
/// node endpoints, circuit breaking, local miss-through tier.
pub struct CacheRing {
    nodes: Vec<RingNode>,
    local: SharedSessionCache,
    config: CacheRingConfig,
    remote_hits: AtomicU64,
    remote_misses: AtomicU64,
    local_hits: AtomicU64,
    write_throughs: AtomicU64,
    failures: AtomicU64,
    circuit_opens: AtomicU64,
    epoch_changes: AtomicU64,
    all_nodes_down: AtomicU64,
    /// Store-level hit/miss counters (the [`SessionStore`] contract).
    store_hits: AtomicU64,
    store_misses: AtomicU64,
    /// Set once by [`CacheRing::instrument`].
    probes: std::sync::OnceLock<RingProbes>,
}

impl std::fmt::Debug for CacheRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheRing")
            .field("nodes", &self.nodes.len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl CacheRing {
    /// A ring over `endpoints`. Routing depends only on the node *names*,
    /// so two machines given the same endpoints (in any order) route every
    /// key identically.
    pub fn new(endpoints: Vec<CacheEndpoint>, config: CacheRingConfig) -> CacheRing {
        CacheRing {
            nodes: endpoints
                .into_iter()
                .enumerate()
                .map(|(index, endpoint)| RingNode {
                    index,
                    seed: fnv1a(endpoint.name().as_bytes()),
                    endpoint,
                    conn: Mutex::new(None),
                    breaker: Mutex::new(Breaker {
                        consecutive_failures: 0,
                        open_until: None,
                        probing: false,
                    }),
                    last_epoch: AtomicU64::new(0),
                })
                .collect(),
            local: SharedSessionCache::with_capacity(config.local_capacity.max(1)),
            config: CacheRingConfig {
                breaker_threshold: config.breaker_threshold.max(1),
                ..config
            },
            remote_hits: AtomicU64::new(0),
            remote_misses: AtomicU64::new(0),
            local_hits: AtomicU64::new(0),
            write_throughs: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            circuit_opens: AtomicU64::new(0),
            epoch_changes: AtomicU64::new(0),
            all_nodes_down: AtomicU64::new(0),
            store_hits: AtomicU64::new(0),
            store_misses: AtomicU64::new(0),
            probes: std::sync::OnceLock::new(),
        }
    }

    /// Register the ring on `telemetry` (idempotent): live latency
    /// histograms `cachenet.lookup` (every lookup), and its
    /// `cachenet.lookup.remote` / `cachenet.lookup.local` split by which
    /// tier answered, plus a pull collector for the ring counters
    /// (`cachenet.remote_hits`, `cachenet.failures`,
    /// `cachenet.circuit_opens`, …), the currently-open breaker count and
    /// the local tier's residency. Audit events
    /// ([`TelemetryEvent::CircuitOpen`], [`TelemetryEvent::EpochBump`])
    /// flow to an installed sink from the moment this returns.
    pub fn instrument(self: &Arc<Self>, telemetry: &Telemetry) {
        let probes = RingProbes {
            telemetry: telemetry.clone(),
            lookup: telemetry.histogram("cachenet.lookup"),
            lookup_remote: telemetry.histogram("cachenet.lookup.remote"),
            lookup_local: telemetry.histogram("cachenet.lookup.local"),
        };
        if self.probes.set(probes).is_err() {
            return;
        }
        let ring = Arc::downgrade(self);
        telemetry.register_collector(move |sample| {
            let Some(ring) = ring.upgrade() else { return };
            let stats = ring.stats();
            sample.counter("cachenet.remote_hits", stats.remote_hits);
            sample.counter("cachenet.remote_misses", stats.remote_misses);
            sample.counter("cachenet.local_hits", stats.local_hits);
            sample.counter("cachenet.write_throughs", stats.write_throughs);
            sample.counter("cachenet.failures", stats.failures);
            sample.counter("cachenet.circuit_opens", stats.circuit_opens);
            sample.counter("cachenet.epoch_changes", stats.epoch_changes);
            sample.counter("cachenet.all_nodes_down", stats.all_nodes_down);
            let now = Instant::now();
            let open = ring.nodes.iter().filter(|n| !n.routable(now)).count();
            sample.gauge("cachenet.breaker_open", open as u64);
            sample.gauge("cachenet.local_resident", ring.local.len() as u64);
        });
    }

    /// Number of nodes in the ring (routable or not).
    pub fn nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Ring counters so far.
    pub fn stats(&self) -> CacheRingStats {
        CacheRingStats {
            remote_hits: self.remote_hits.load(Ordering::Relaxed),
            remote_misses: self.remote_misses.load(Ordering::Relaxed),
            local_hits: self.local_hits.load(Ordering::Relaxed),
            write_throughs: self.write_throughs.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            circuit_opens: self.circuit_opens.load(Ordering::Relaxed),
            epoch_changes: self.epoch_changes.load(Ordering::Relaxed),
            all_nodes_down: self.all_nodes_down.load(Ordering::Relaxed),
        }
    }

    /// The last epoch each node reported, in node order (0 = no reply
    /// yet). A bump against an earlier snapshot is a detected restart.
    pub fn node_epochs(&self) -> Vec<u64> {
        self.nodes
            .iter()
            .map(|node| node.last_epoch.load(Ordering::Relaxed))
            .collect()
    }

    /// The node index `id` routes to when every node is routable —
    /// exposed so tests (and operators) can predict placement.
    pub fn route_of(&self, id: &SessionId) -> Option<usize> {
        self.ranked(id).first().copied()
    }

    /// Node indexes ranked by rendezvous score for `id`, best first.
    fn ranked(&self, id: &SessionId) -> Vec<usize> {
        let key = id.bucket_key();
        let mut scored: Vec<(u64, usize)> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(idx, node)| {
                // Mix the node seed with the key; Fibonacci-multiply and
                // keep the well-mixed high word as the score.
                let score = (node.seed ^ key).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                (score, idx)
            })
            .collect();
        scored.sort_unstable_by(|a, b| b.cmp(a));
        scored.into_iter().map(|(_, idx)| idx).collect()
    }

    /// The first routable node for `id`, honouring open circuits and the
    /// half-open probe cap: a recovering node admits one probe at a
    /// time; every other caller falls through to its next-ranked node.
    /// The claim is always resolved — each caller feeds the routed node
    /// straight into [`CacheRing::remote`], whose success/failure paths
    /// both clear it.
    fn routed_node(&self, id: &SessionId) -> Option<&RingNode> {
        let now = Instant::now();
        self.ranked(id)
            .into_iter()
            .map(|idx| &self.nodes[idx])
            .find(|node| node.claim_routable(now))
    }

    /// One remote round trip on `node`'s persistent link, bounded by
    /// `op_timeout`. Any failure drops the link (the next call re-dials)
    /// and feeds the breaker.
    ///
    /// The conn mutex is held across the round trip, so concurrent ops
    /// from one machine to the same node serialize — `op_timeout` bounds
    /// each op once it holds the link, and a caller queued behind k ops
    /// can wait up to (k+1)× that. With sub-millisecond node round trips
    /// this is noise; per-node pipelining (request ids on the wire) is
    /// the upgrade path if node handlers ever become slow.
    fn remote(&self, node: &RingNode, request: &Request) -> Option<Response> {
        let mut conn = node.conn.lock();
        let outcome = self.remote_locked(&mut conn, node, request);
        match outcome {
            Some(response) => {
                {
                    let mut breaker = node.breaker.lock();
                    breaker.consecutive_failures = 0;
                    breaker.open_until = None;
                    breaker.probing = false;
                }
                let epoch = response.epoch();
                let previous = node.last_epoch.swap(epoch, Ordering::Relaxed);
                if previous != 0 && previous != epoch {
                    self.epoch_changes.fetch_add(1, Ordering::Relaxed);
                    if let Some(probes) = self.probes.get() {
                        probes.telemetry.emit_with(|| TelemetryEvent::EpochBump {
                            node: node.endpoint.name().to_string(),
                            epoch,
                        });
                    }
                }
                Some(response)
            }
            None => {
                *conn = None;
                drop(conn);
                self.failures.fetch_add(1, Ordering::Relaxed);
                let mut breaker = node.breaker.lock();
                // Release any half-open claim: a failed probe re-arms the
                // cooldown below, so the next probe waits it out again.
                breaker.probing = false;
                breaker.consecutive_failures += 1;
                if breaker.consecutive_failures >= self.config.breaker_threshold {
                    // (Re)open the circuit; a half-open probe that fails
                    // lands here again and re-arms the cooldown.
                    breaker.open_until = Some(Instant::now() + self.config.breaker_cooldown);
                    self.circuit_opens.fetch_add(1, Ordering::Relaxed);
                    if let Some(probes) = self.probes.get() {
                        probes
                            .telemetry
                            .emit_with(|| TelemetryEvent::CircuitOpen { node: node.index });
                    }
                }
                None
            }
        }
    }

    fn remote_locked(
        &self,
        conn: &mut Option<Duplex>,
        node: &RingNode,
        request: &Request,
    ) -> Option<Response> {
        if conn.is_none() {
            *conn = Some(node.endpoint.dial(self.config.source).ok()?);
        }
        let link = conn.as_ref().expect("dialed above");
        link.send(&request.encode()).ok()?;
        let frame = link.recv(RecvTimeout::After(self.config.op_timeout)).ok()?;
        Response::decode(&frame).ok()
    }

    /// The local miss-through tier (a machine's own recently seen
    /// sessions; also the only tier left when every circuit is open).
    pub fn local(&self) -> &SharedSessionCache {
        &self.local
    }
}

impl SessionStore for CacheRing {
    /// Write-through: the local tier always takes the session; the routed
    /// node takes it best-effort (a failure feeds the breaker and is
    /// absorbed — the handshake must never block on cache plumbing).
    fn insert(&self, id: SessionId, premaster: Vec<u8>) {
        self.local.insert(id, premaster.clone());
        match self.routed_node(&id) {
            Some(node) => {
                if let Some(Response::Ok { .. }) =
                    self.remote(node, &Request::Insert(id, premaster))
                {
                    self.write_throughs.fetch_add(1, Ordering::Relaxed);
                }
            }
            None => {
                self.all_nodes_down.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Remote-first with local miss-through: ask the routed node (one
    /// bounded round trip); on `Hit` warm the local tier and return; on
    /// `Miss`, failure, or an all-open ring fall back to the local tier.
    fn lookup(&self, id: &SessionId) -> Option<Vec<u8>> {
        let probes = self.probes.get();
        let started = probes.map(|_| Instant::now());
        let remote = match self.routed_node(id) {
            Some(node) => self.remote(node, &Request::Lookup(*id)),
            None => {
                self.all_nodes_down.fetch_add(1, Ordering::Relaxed);
                None
            }
        };
        let remote_answered = matches!(remote, Some(Response::Hit { .. }));
        let found = match remote {
            Some(Response::Hit { premaster, .. }) => {
                self.remote_hits.fetch_add(1, Ordering::Relaxed);
                // Warm the local tier so a node death right after this
                // still resumes the session locally.
                self.local.insert(*id, premaster.clone());
                Some(premaster)
            }
            other => {
                if matches!(other, Some(Response::Miss { .. })) {
                    self.remote_misses.fetch_add(1, Ordering::Relaxed);
                }
                let local = self.local.lookup(id);
                if local.is_some() {
                    self.local_hits.fetch_add(1, Ordering::Relaxed);
                }
                local
            }
        };
        if found.is_some() {
            self.store_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.store_misses.fetch_add(1, Ordering::Relaxed);
        }
        if let (Some(probes), Some(started)) = (probes, started) {
            let nanos = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            probes.lookup.record(nanos);
            if remote_answered {
                probes.lookup_remote.record(nanos);
            } else {
                probes.lookup_local.record(nanos);
            }
            let hit = found.is_some();
            probes
                .telemetry
                .emit_with(|| TelemetryEvent::CachenetLookup {
                    remote: remote_answered,
                    hit,
                    nanos,
                });
        }
        found
    }

    /// Remove everywhere: local tier immediately, then `Invalidate`
    /// **broadcast to every node, circuits ignored**. Removal is the
    /// compromise-response path, so it must not inherit the lookup
    /// path's availability trade-offs: the session may be resident on a
    /// non-owner node (inserted while the owner's circuit was open), and
    /// an owner skipped because its breaker is open would come back
    /// after cooldown still holding — and serving — the revoked
    /// premaster. Each send is still bounded by `op_timeout`; a node
    /// that is truly down holds nothing it can serve until it restarts,
    /// and a restart epoch-invalidates whatever it held.
    fn remove(&self, id: &SessionId) {
        self.local.remove(id);
        for node in &self.nodes {
            let _ = self.remote(node, &Request::Invalidate(*id));
        }
    }

    /// `(hits, misses)` of ring lookups as a whole (remote and local
    /// tiers combined): one lookup, one count — the same contract
    /// [`SharedSessionCache::hit_rate`] documents.
    fn stats(&self) -> (u64, u64) {
        (
            self.store_hits.load(Ordering::Relaxed),
            self.store_misses.load(Ordering::Relaxed),
        )
    }

    /// Sessions resident in the **local** tier (the distributed total is
    /// a per-node property; see [`crate::CacheNode::len`]).
    fn len(&self) -> usize {
        self.local.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{CacheNode, CacheNodeConfig};

    fn id(byte: u8) -> SessionId {
        SessionId::from_bytes(&[byte; 16]).unwrap()
    }

    fn quick_config() -> CacheRingConfig {
        CacheRingConfig {
            source: SourceAddr::new([10, 2, 0, 1], 40_000),
            op_timeout: Duration::from_millis(200),
            breaker_threshold: 1,
            breaker_cooldown: Duration::from_millis(50),
            local_capacity: 128,
        }
    }

    fn three_nodes() -> (Vec<CacheNode>, CacheRing) {
        let nodes: Vec<CacheNode> = (0..3)
            .map(|n| CacheNode::spawn(CacheNodeConfig::named(&format!("cache-{n}"))))
            .collect();
        let ring = CacheRing::new(
            nodes.iter().map(CacheNode::endpoint).collect(),
            quick_config(),
        );
        (nodes, ring)
    }

    #[test]
    fn routing_is_deterministic_and_spread() {
        let (_nodes, ring) = three_nodes();
        let (_nodes2, ring2) = three_nodes();
        let mut used = std::collections::HashSet::new();
        for byte in 0..64u8 {
            let route = ring.route_of(&id(byte)).unwrap();
            assert_eq!(
                route,
                ring2.route_of(&id(byte)).unwrap(),
                "two machines must agree on every key's owner"
            );
            used.insert(route);
        }
        assert_eq!(used.len(), 3, "64 keys must touch all 3 nodes");
    }

    #[test]
    fn insert_on_one_ring_is_visible_to_another_machine() {
        let (nodes, ring_a) = three_nodes();
        // Machine B: its own ring over the same endpoints.
        let ring_b = CacheRing::new(
            nodes.iter().map(CacheNode::endpoint).collect(),
            CacheRingConfig {
                source: SourceAddr::new([10, 2, 0, 2], 40_001),
                ..quick_config()
            },
        );
        ring_a.insert(id(1), b"premaster".to_vec());
        assert_eq!(
            ring_b.lookup(&id(1)).expect("cross-machine hit"),
            b"premaster"
        );
        assert_eq!(ring_b.stats_of_store(), (1, 0));
        assert_eq!(ring_b.stats().remote_hits, 1);
        assert_eq!(
            ring_b.local.len(),
            1,
            "a remote hit warms machine B's local tier"
        );
        // Totals live on the nodes, one of which holds the key.
        let resident: usize = nodes.iter().map(CacheNode::len).sum();
        assert_eq!(resident, 1);
    }

    #[test]
    fn dead_node_falls_back_to_local_tier_without_hanging() {
        let (nodes, ring) = three_nodes();
        ring.insert(id(9), b"pm".to_vec());
        let owner = ring.route_of(&id(9)).unwrap();
        nodes[owner].kill();
        let started = Instant::now();
        assert_eq!(
            ring.lookup(&id(9)).expect("local miss-through"),
            b"pm",
            "the local tier must still resume the session"
        );
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "bounded latency even with the owner dead"
        );
        assert_eq!(ring.stats().local_hits, 1);
        assert!(ring.stats().failures >= 1);
        assert_eq!(ring.stats().circuit_opens, 1);
    }

    #[test]
    fn open_circuit_reroutes_keys_to_the_next_node() {
        let (nodes, ring) = three_nodes();
        let owner = ring.route_of(&id(3)).unwrap();
        nodes[owner].kill();
        // First insert eats the failure and opens the circuit...
        ring.insert(id(3), b"pm".to_vec());
        assert_eq!(ring.stats().circuit_opens, 1);
        // ...the next insert routes straight to the runner-up node.
        ring.insert(id(3), b"pm".to_vec());
        assert_eq!(ring.stats().write_throughs, 1);
        let resident: usize = nodes
            .iter()
            .enumerate()
            .filter(|(idx, _)| *idx != owner)
            .map(|(_, node)| node.len())
            .sum();
        assert_eq!(resident, 1, "the key lives on a surviving node now");
        // And a lookup through the rerouted path hits remotely.
        assert!(ring.lookup(&id(3)).is_some());
        assert!(ring.stats().remote_hits >= 1);
    }

    #[test]
    fn half_open_probe_recovers_a_restarted_node() {
        let (nodes, ring) = three_nodes();
        let owner = ring.route_of(&id(5)).unwrap();
        // Seed an epoch observation so the restart is detectable.
        ring.insert(id(5), b"pm".to_vec());
        assert_eq!(ring.stats().write_throughs, 1);
        nodes[owner].kill();
        ring.insert(id(5), b"pm".to_vec()); // failure → circuit opens
        nodes[owner].restart();
        // After the cooldown the half-open probe finds it again.
        std::thread::sleep(Duration::from_millis(80));
        ring.insert(id(5), b"pm2".to_vec());
        assert_eq!(ring.stats().write_throughs, 2);
        let deadline = Instant::now() + Duration::from_secs(2);
        while ring.stats().epoch_changes == 0 && Instant::now() < deadline {
            ring.lookup(&id(5));
        }
        assert!(
            ring.stats().epoch_changes >= 1,
            "the bumped epoch must be observed: {:?}",
            ring.stats()
        );
    }

    #[test]
    fn half_open_probes_are_capped_at_one_per_node() {
        // A single-node ring whose node died: once the breaker cooldown
        // expires, 8 threads race to route to the recovering node at the
        // same instant. Exactly one may probe it — observable as exactly
        // one additional remote failure — while the rest fall through to
        // the local tier instead of thundering-herding the node.
        let node = CacheNode::spawn(CacheNodeConfig::named("cache-solo"));
        let ring = CacheRing::new(
            vec![node.endpoint()],
            CacheRingConfig {
                source: SourceAddr::new([10, 2, 0, 3], 40_002),
                op_timeout: Duration::from_millis(200),
                breaker_threshold: 1,
                breaker_cooldown: Duration::from_millis(500),
                local_capacity: 128,
            },
        );
        ring.insert(id(21), b"pm".to_vec());
        node.kill();
        assert_eq!(ring.lookup(&id(21)).expect("local miss-through"), b"pm");
        assert_eq!(ring.stats().failures, 1, "the dead node opened its circuit");
        // Let the cooldown expire, then race the half-open node.
        std::thread::sleep(Duration::from_millis(650));
        let barrier = std::sync::Barrier::new(8);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    barrier.wait();
                    assert_eq!(ring.lookup(&id(21)).expect("local tier"), b"pm");
                });
            }
        });
        assert_eq!(
            ring.stats().failures,
            2,
            "exactly one caller probes the recovering node: {:?}",
            ring.stats()
        );
    }

    #[test]
    fn all_nodes_down_serves_purely_locally_and_deterministically() {
        let (nodes, ring) = three_nodes();
        ring.insert(id(7), b"pm".to_vec());
        for node in &nodes {
            node.kill();
        }
        // Open every circuit (threshold 1: one failure each).
        for byte in 0..12u8 {
            ring.lookup(&id(byte));
        }
        let started = Instant::now();
        assert_eq!(ring.lookup(&id(7)).expect("local"), b"pm");
        assert!(ring.lookup(&id(200)).is_none(), "unknown id: clean miss");
        assert!(
            started.elapsed() < Duration::from_secs(1),
            "an all-dead ring must not hang"
        );
        assert!(ring.stats().all_nodes_down > 0);
    }

    #[test]
    fn remove_invalidates_the_remote_copy_too() {
        let (nodes, ring) = three_nodes();
        ring.insert(id(11), b"pm".to_vec());
        SessionStore::remove(&ring, &id(11));
        assert!(ring.lookup(&id(11)).is_none());
        let resident: usize = nodes.iter().map(CacheNode::len).sum();
        assert_eq!(resident, 0, "the invalidate reached the owner node");
    }

    #[test]
    fn remove_broadcast_reaches_copies_on_non_owner_nodes() {
        // A session inserted while its owner's circuit was open lives on
        // the runner-up node. Removal is the compromise-response path:
        // it must invalidate that copy too — routing the Invalidate only
        // to the (skipped) owner would leave the revoked premaster
        // resident and servable.
        let (nodes, ring) = three_nodes();
        let owner = ring.route_of(&id(13)).unwrap();
        nodes[owner].kill();
        ring.insert(id(13), b"pm".to_vec()); // failure → owner circuit opens
        ring.insert(id(13), b"pm".to_vec()); // lands on the runner-up
        let resident: usize = nodes.iter().map(CacheNode::len).sum();
        assert_eq!(resident, 1, "the copy lives on a non-owner node");
        SessionStore::remove(&ring, &id(13));
        let resident: usize = nodes.iter().map(CacheNode::len).sum();
        assert_eq!(resident, 0, "the broadcast reached the non-owner copy");
        assert!(ring.lookup(&id(13)).is_none(), "local tier cleared too");
    }

    impl CacheRing {
        /// Test helper naming the trait's `stats` unambiguously.
        fn stats_of_store(&self) -> (u64, u64) {
            SessionStore::stats(self)
        }
    }
}
