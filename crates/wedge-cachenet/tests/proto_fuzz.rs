//! Framing fuzz tests: decoding is *total* (never panics, never
//! over-reads) and round-trips every valid frame — v2 with its request
//! id bit-exact across the whole `u16` space, v1 without one — while
//! truncation, trailing garbage, foreign headers and hostile batch
//! counts are all refused with structured errors.

use proptest::prelude::*;

use wedge_cachenet::{
    peek_request_id, ProtoError, Request, Response, MAGIC, MAX_BATCH_KEYS, TRACE_EXT_LEN,
    TRACE_EXT_TAG, V1_WIRE_VERSION, WIRE_VERSION,
};
use wedge_telemetry::TraceContext;
use wedge_tls::SessionId;

fn arb_session_id() -> impl Strategy<Value = SessionId> {
    prop::collection::vec(any::<u8>(), 16)
        .prop_map(|bytes| SessionId::from_bytes(&bytes).expect("16 bytes"))
}

/// The v1-expressible (single-key) requests.
fn arb_request_v1() -> impl Strategy<Value = Request> {
    prop_oneof![
        arb_session_id().prop_map(Request::Lookup),
        (arb_session_id(), prop::collection::vec(any::<u8>(), 0..256))
            .prop_map(|(id, premaster)| Request::Insert(id, premaster)),
        arb_session_id().prop_map(Request::Invalidate),
        Just(Request::Ping),
    ]
}

/// Batch key counts biased to the edges: empty, single-key, and the
/// decoder's MAX_BATCH_KEYS ceiling, plus the space in between.
fn arb_batch_len() -> impl Strategy<Value = usize> {
    prop_oneof![Just(0usize), Just(1usize), Just(MAX_BATCH_KEYS), 2usize..64,]
}

/// Every v2 request, batch ops included. Batch bodies draw a small pool
/// of distinct entries and cycle it out to the chosen key count, so the
/// MAX_BATCH_KEYS edge is exercised without generating a thousand
/// independent values per case.
fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        arb_request_v1(),
        (
            arb_batch_len(),
            prop::collection::vec(arb_session_id(), 1..17)
        )
            .prop_map(|(n, pool)| {
                Request::LookupBatch((0..n).map(|i| pool[i % pool.len()]).collect())
            }),
        (
            arb_batch_len(),
            // Short premasters keep max-key InsertBatch frames well under
            // a megabyte while still exercising the count edge.
            prop::collection::vec(
                (arb_session_id(), prop::collection::vec(any::<u8>(), 0..16)),
                1..9
            )
        )
            .prop_map(|(n, pool)| {
                Request::InsertBatch((0..n).map(|i| pool[i % pool.len()].clone()).collect())
            }),
    ]
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        (any::<u64>(), prop::collection::vec(any::<u8>(), 0..256))
            .prop_map(|(epoch, premaster)| Response::Hit { epoch, premaster }),
        any::<u64>().prop_map(|epoch| Response::Miss { epoch }),
        any::<u64>().prop_map(|epoch| Response::Ok { epoch }),
        (
            any::<u64>(),
            prop::collection::vec(32u8..127, 0..64)
                .prop_map(|bytes| String::from_utf8(bytes).expect("printable ascii"))
        )
            .prop_map(|(epoch, message)| Response::Err { epoch, message }),
        (
            any::<u64>(),
            arb_batch_len(),
            prop::collection::vec(
                (any::<bool>(), prop::collection::vec(any::<u8>(), 0..16)),
                1..9
            )
        )
            .prop_map(|(epoch, n, pool)| {
                let results = (0..n)
                    .map(|i| {
                        let (hit, premaster) = &pool[i % pool.len()];
                        hit.then(|| premaster.clone())
                    })
                    .collect();
                Response::Batch { epoch, results }
            }),
    ]
}

proptest! {
    /// Any byte string decodes to exactly one frame or one structured
    /// error — never a panic (the "framing fuzz" half of the protocol's
    /// contract).
    #[test]
    fn arbitrary_bytes_never_panic_either_decoder(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
        let _ = peek_request_id(&bytes);
    }

    /// Every v2 request round-trips bit-exactly, request id included,
    /// across the whole `u16` id space — and `peek_request_id` agrees
    /// with the full decoder.
    #[test]
    fn requests_round_trip(request in arb_request(), rid in any::<u16>()) {
        let wire = request.encode(rid);
        let framed = Request::decode(&wire).expect("self-encoded frame");
        prop_assert_eq!(framed.request_id, Some(rid));
        prop_assert_eq!(peek_request_id(&wire), Some(rid));
        prop_assert_eq!(framed.request, request);
        prop_assert_eq!(framed.trace, None, "a plain frame carries no trace");
    }

    /// Every v2 response round-trips bit-exactly with its id, and the
    /// epoch accessor agrees with the decoded frame.
    #[test]
    fn responses_round_trip(response in arb_response(), rid in any::<u16>()) {
        let wire = response.encode(rid);
        let framed = Response::decode(&wire).expect("self-encoded frame");
        prop_assert_eq!(framed.request_id, Some(rid));
        prop_assert_eq!(framed.response.epoch(), response.epoch());
        prop_assert_eq!(framed.response, response);
    }

    /// v1 frames still decode — same payloads, `request_id: None` — so a
    /// v2 node keeps serving a pre-pipelining fleet. Batch ops are not
    /// expressible in v1 at all.
    #[test]
    fn v1_frames_still_decode_without_an_id(request in arb_request_v1()) {
        let wire = request.encode_v1().expect("single-key ops are v1-expressible");
        prop_assert_eq!(wire[1], V1_WIRE_VERSION);
        prop_assert_eq!(peek_request_id(&wire), None);
        let framed = Request::decode(&wire).expect("v1 frame");
        prop_assert_eq!(framed.request_id, None);
        prop_assert_eq!(framed.request, request);
    }

    /// A v1 frame can never smuggle a batch opcode: the decoder refuses
    /// it as an opcode unknown *to that version*.
    #[test]
    fn batch_opcodes_in_v1_frames_are_refused(n in arb_batch_len(), id in arb_session_id()) {
        let mut wire = Request::LookupBatch(vec![id; n]).encode(0);
        wire[1] = V1_WIRE_VERSION;
        wire.drain(3..5); // strip the request id v1 never carries
        prop_assert!(matches!(Request::decode(&wire), Err(ProtoError::BadOpcode(_))));
    }

    /// Truncating a valid frame anywhere never decodes to a frame — a
    /// partial read (of a batch body included) cannot be mistaken for a
    /// shorter valid message.
    #[test]
    fn truncations_never_decode(request in arb_request(), rid in any::<u16>(), cut in 0usize..64) {
        let wire = request.encode(rid);
        if cut < wire.len() {
            let truncated = &wire[..wire.len() - 1 - cut.min(wire.len() - 1)];
            prop_assert!(Request::decode(truncated).is_err());
        }
    }

    /// Appending garbage to a valid frame is always refused (frames are
    /// exact, so desynchronised framing surfaces loudly).
    #[test]
    fn trailing_garbage_never_decodes(request in arb_request(), extra in 1usize..16) {
        let mut wire = request.encode(7);
        wire.extend(std::iter::repeat_n(0xAAu8, extra));
        prop_assert!(matches!(
            Request::decode(&wire),
            Err(ProtoError::TrailingBytes(_)) | Err(ProtoError::BadLength { .. })
        ));
    }

    /// A batch count beyond MAX_BATCH_KEYS is refused before any
    /// allocation, whatever bytes follow the count.
    #[test]
    fn oversize_batch_counts_are_refused(
        count in (MAX_BATCH_KEYS as u16 + 1)..=u16::MAX,
        body in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut wire = vec![MAGIC, WIRE_VERSION, 0x05, 0, 0]; // LookupBatch, rid 0
        wire.extend_from_slice(&count.to_le_bytes());
        wire.extend_from_slice(&body);
        prop_assert_eq!(
            Request::decode(&wire),
            Err(ProtoError::BatchTooLarge(count as usize))
        );
    }

    /// A frame from an unknown protocol version is refused by the
    /// header, whatever follows. (Version 1 is *known* — see above.)
    #[test]
    fn foreign_versions_are_refused(request in arb_request(), version in any::<u8>()) {
        prop_assume!(version != WIRE_VERSION && version != V1_WIRE_VERSION);
        let mut wire = request.encode(3);
        wire[1] = version;
        prop_assert_eq!(Request::decode(&wire), Err(ProtoError::BadVersion(version)));
    }

    /// The magic byte gates everything: without it nothing decodes.
    #[test]
    fn foreign_magic_is_refused(request in arb_request(), magic in any::<u8>()) {
        prop_assume!(magic != MAGIC);
        let mut wire = request.encode(3);
        wire[0] = magic;
        prop_assert_eq!(Request::decode(&wire), Err(ProtoError::BadMagic(magic)));
    }

    /// The trace extension round-trips bit-exactly — trace id and span
    /// id over their whole spaces — without disturbing the request or
    /// its pipelining id. The wire does not carry ancestry, so the
    /// decoded context always has `parent_id` 0.
    #[test]
    fn trace_extension_round_trips(
        request in arb_request(),
        rid in any::<u16>(),
        trace_id in any::<u64>(),
        span_id in any::<u32>(),
    ) {
        let ctx = TraceContext { trace_id, span_id, parent_id: 0 };
        let wire = request.encode_traced(rid, Some(ctx));
        let framed = Request::decode(&wire).expect("traced frame");
        prop_assert_eq!(framed.trace, Some(ctx));
        prop_assert_eq!(framed.request_id, Some(rid));
        prop_assert_eq!(peek_request_id(&wire), Some(rid));
        prop_assert_eq!(framed.request, request);
    }

    /// `encode_traced(.., None)` is byte-identical to `encode` — an
    /// untraced client is indistinguishable from a peer that predates
    /// the extension, so the two interoperate by construction.
    #[test]
    fn untraced_encoding_is_byte_identical(request in arb_request(), rid in any::<u16>()) {
        prop_assert_eq!(request.encode_traced(rid, None), request.encode(rid));
    }

    /// Arbitrary bytes in the extension position never panic the
    /// decoder: only a whole, tagged block decodes (to *some* context);
    /// every other trailer stays structured trailing-bytes garbage.
    #[test]
    fn arbitrary_extension_bytes_never_panic(
        request in arb_request(),
        rid in any::<u16>(),
        trailer in prop::collection::vec(any::<u8>(), 1..2 * TRACE_EXT_LEN),
    ) {
        let mut wire = request.encode(rid);
        wire.extend_from_slice(&trailer);
        match Request::decode(&wire) {
            Ok(framed) => {
                // Decoding succeeded, so the trailer must have been a
                // well-formed extension block — nothing else is accepted.
                prop_assert_eq!(trailer.len(), TRACE_EXT_LEN);
                prop_assert_eq!(trailer[0], TRACE_EXT_TAG);
                prop_assert_eq!(framed.request, request);
                prop_assert!(framed.trace.is_some());
            }
            Err(err) => prop_assert!(matches!(
                err,
                ProtoError::TrailingBytes(_) | ProtoError::BadLength { .. }
            )),
        }
    }

    /// v1 frames never accept the extension — their trailer rules are
    /// unchanged, so a pre-v2 peer sees exactly the protocol it always
    /// spoke.
    #[test]
    fn v1_frames_refuse_the_extension(
        request in arb_request_v1(),
        trace_id in any::<u64>(),
        span_id in any::<u32>(),
    ) {
        let mut wire = request.encode_v1().expect("v1-expressible");
        wire.push(TRACE_EXT_TAG);
        wire.extend_from_slice(&trace_id.to_le_bytes());
        wire.extend_from_slice(&span_id.to_le_bytes());
        prop_assert!(matches!(
            Request::decode(&wire),
            Err(ProtoError::TrailingBytes(_)) | Err(ProtoError::BadLength { .. })
        ));
    }
}
