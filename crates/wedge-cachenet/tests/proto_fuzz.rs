//! Framing fuzz tests: decoding is *total* (never panics, never
//! over-reads) and round-trips every valid frame bit-exactly.

use proptest::prelude::*;

use wedge_cachenet::{ProtoError, Request, Response, MAGIC, WIRE_VERSION};
use wedge_tls::SessionId;

fn arb_session_id() -> impl Strategy<Value = SessionId> {
    prop::collection::vec(any::<u8>(), 16)
        .prop_map(|bytes| SessionId::from_bytes(&bytes).expect("16 bytes"))
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        arb_session_id().prop_map(Request::Lookup),
        (arb_session_id(), prop::collection::vec(any::<u8>(), 0..256))
            .prop_map(|(id, premaster)| Request::Insert(id, premaster)),
        arb_session_id().prop_map(Request::Invalidate),
        Just(Request::Ping),
    ]
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        (any::<u64>(), prop::collection::vec(any::<u8>(), 0..256))
            .prop_map(|(epoch, premaster)| Response::Hit { epoch, premaster }),
        any::<u64>().prop_map(|epoch| Response::Miss { epoch }),
        any::<u64>().prop_map(|epoch| Response::Ok { epoch }),
        (
            any::<u64>(),
            prop::collection::vec(32u8..127, 0..64)
                .prop_map(|bytes| String::from_utf8(bytes).expect("printable ascii"))
        )
            .prop_map(|(epoch, message)| Response::Err { epoch, message }),
    ]
}

proptest! {
    /// Any byte string decodes to exactly one frame or one structured
    /// error — never a panic (the "framing fuzz" half of the protocol's
    /// contract).
    #[test]
    fn arbitrary_bytes_never_panic_either_decoder(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
    }

    /// Every request round-trips bit-exactly.
    #[test]
    fn requests_round_trip(request in arb_request()) {
        let wire = request.encode();
        prop_assert_eq!(Request::decode(&wire).expect("self-encoded frame"), request);
    }

    /// Every response round-trips bit-exactly, and the epoch accessor
    /// agrees with the decoded frame.
    #[test]
    fn responses_round_trip(response in arb_response()) {
        let wire = response.encode();
        let decoded = Response::decode(&wire).expect("self-encoded frame");
        prop_assert_eq!(decoded.epoch(), response.epoch());
        prop_assert_eq!(decoded, response);
    }

    /// Truncating a valid frame anywhere never decodes to a frame — a
    /// partial read cannot be mistaken for a shorter valid message.
    #[test]
    fn truncations_never_decode(request in arb_request(), cut in 0usize..64) {
        let wire = request.encode();
        if cut < wire.len() {
            let truncated = &wire[..wire.len() - 1 - cut.min(wire.len() - 1)];
            prop_assert!(Request::decode(truncated).is_err());
        }
    }

    /// Appending garbage to a valid frame is always refused (frames are
    /// exact, so desynchronised framing surfaces loudly).
    #[test]
    fn trailing_garbage_never_decodes(request in arb_request(), extra in 1usize..16) {
        let mut wire = request.encode();
        wire.extend(std::iter::repeat_n(0xAAu8, extra));
        prop_assert!(matches!(
            Request::decode(&wire),
            Err(ProtoError::TrailingBytes(_)) | Err(ProtoError::BadLength { .. })
        ));
    }

    /// A frame from a different protocol version is refused by the
    /// header, whatever follows.
    #[test]
    fn foreign_versions_are_refused(request in arb_request(), version in any::<u8>()) {
        prop_assume!(version != WIRE_VERSION);
        let mut wire = request.encode();
        wire[1] = version;
        prop_assert_eq!(Request::decode(&wire), Err(ProtoError::BadVersion(version)));
    }

    /// The magic byte gates everything: without it nothing decodes.
    #[test]
    fn foreign_magic_is_refused(request in arb_request(), magic in any::<u8>()) {
        prop_assume!(magic != MAGIC);
        let mut wire = request.encode();
        wire[0] = magic;
        prop_assert_eq!(Request::decode(&wire), Err(ProtoError::BadMagic(magic)));
    }
}
