//! The monolithic SSH baseline (pre-privilege-separation OpenSSH 3.1p1).
//!
//! One compartment parses network input *and* holds the host private key,
//! the shadow file and every other credential store — so an exploit of the
//! network-facing code discloses all of them. It exists for the Table 2
//! latency comparison and as the attack baseline.

use wedge_core::{MemProt, SBuf, SecurityPolicy, Tag, Wedge, WedgeError};
use wedge_crypto::sha256::sha256;
use wedge_crypto::{RsaKeyPair, WedgeRng};
use wedge_net::{Duplex, RecvTimeout};

use crate::authdb::{AuthDb, ServerConfig};
use crate::protocol::{ClientMessage, ServerMessage};
use crate::server::SESSION_TIMEOUT;

/// Report for one monolithic session.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VanillaReport {
    /// Did the client authenticate?
    pub authenticated: bool,
    /// Commands served.
    pub commands: u32,
    /// Bytes accepted over the scp path.
    pub scp_bytes: u64,
}

/// The monolithic SSH server.
pub struct VanillaSsh {
    wedge: Wedge,
    keypair: RsaKeyPair,
    db: AuthDb,
    config: ServerConfig,
    key_tag: Tag,
    key_buf: SBuf,
    shadow_tag: Tag,
    shadow_buf: SBuf,
}

impl VanillaSsh {
    /// Build the baseline server. The private key and shadow file are placed
    /// in regions the (single) worker compartment can read — the monolithic
    /// arrangement.
    pub fn new(
        wedge: Wedge,
        keypair: RsaKeyPair,
        db: AuthDb,
        config: ServerConfig,
    ) -> Result<VanillaSsh, WedgeError> {
        let root = wedge.root();
        let key_tag = root.tag_new()?;
        let mut key_bytes = b"HOST-PRIVATE-KEY:".to_vec();
        key_bytes.extend_from_slice(&keypair.private.n.to_le_bytes());
        key_bytes.extend_from_slice(&keypair.private.d.to_le_bytes());
        let key_buf = root.smalloc_init(key_tag, &key_bytes)?;
        let shadow_tag = root.tag_new()?;
        let shadow_buf = root.smalloc_init(shadow_tag, &db.serialize_shadow())?;
        Ok(VanillaSsh {
            wedge,
            keypair,
            db,
            config,
            key_tag,
            key_buf,
            shadow_tag,
            shadow_buf,
        })
    }

    /// The Wedge runtime backing the server.
    pub fn wedge(&self) -> &Wedge {
        &self.wedge
    }

    /// The host public key.
    pub fn host_public(&self) -> wedge_crypto::RsaPublicKey {
        self.keypair.public
    }

    /// The private-key region.
    pub fn key_buf(&self) -> SBuf {
        self.key_buf
    }

    /// The shadow-file region.
    pub fn shadow_buf(&self) -> SBuf {
        self.shadow_buf
    }

    /// The single monolithic compartment's policy: everything is readable.
    pub fn worker_policy(&self) -> SecurityPolicy {
        let mut policy = SecurityPolicy::deny_all();
        policy.sc_mem_add(self.key_tag, MemProt::ReadWrite);
        policy.sc_mem_add(self.shadow_tag, MemProt::ReadWrite);
        policy
    }

    /// Serve one connection inline (the baseline has no per-connection
    /// compartment to create, which is exactly why its latency is the
    /// reference point in Table 2).
    pub fn serve_connection(&self, link: &Duplex) -> VanillaReport {
        let mut report = VanillaReport::default();
        let mut authenticated_uid: Option<u32> = None;
        let shadow = AuthDb::parse_shadow(&self.db.serialize_shadow());

        let Ok(first) = link.recv(RecvTimeout::After(SESSION_TIMEOUT)) else {
            return report;
        };
        if !matches!(
            ClientMessage::decode(&first),
            Some(ClientMessage::Hello { .. })
        ) {
            return report;
        }
        let mut rng = WedgeRng::from_entropy();
        let nonce = rng.bytes(32);
        let hello = ServerMessage::Hello {
            version: self.config.version_banner.clone(),
            host_key: self.keypair.public,
            host_proof: self.keypair.private.sign_digest(&sha256(&nonce)),
            nonce: nonce.clone(),
        };
        if link.send(&hello.encode()).is_err() {
            return report;
        }

        while let Ok(raw) = link.recv(RecvTimeout::After(SESSION_TIMEOUT)) {
            let Some(message) = ClientMessage::decode(&raw) else {
                continue;
            };
            match message {
                ClientMessage::Hello { .. } => {}
                ClientMessage::AuthPassword { user, password } => {
                    let result = AuthDb::check_password(&shadow, &user, &password);
                    let (success, uid) = match result {
                        Some((uid, _)) => {
                            authenticated_uid = Some(uid);
                            report.authenticated = true;
                            (true, uid)
                        }
                        None => (false, 0),
                    };
                    let _ = link.send(
                        &ServerMessage::AuthResult {
                            success,
                            uid,
                            detail: if success { "ok" } else { "permission denied" }.to_string(),
                        }
                        .encode(),
                    );
                }
                ClientMessage::AuthPubkey { user, signature } => {
                    // The monolithic baseline only supports password and
                    // S/Key in this reproduction; reject politely.
                    let _ = (user, signature);
                    let _ = link.send(
                        &ServerMessage::AuthResult {
                            success: false,
                            uid: 0,
                            detail: "permission denied".to_string(),
                        }
                        .encode(),
                    );
                }
                ClientMessage::AuthSkey { user, otp } => {
                    let skey = AuthDb::parse_skey(&self.db.serialize_skey());
                    let success = skey
                        .get(&user)
                        .map(|otps| otps.contains(&otp))
                        .unwrap_or(false);
                    if success {
                        report.authenticated = true;
                        authenticated_uid = shadow.iter().find(|e| e.user == user).map(|e| e.uid);
                    }
                    let _ = link.send(
                        &ServerMessage::AuthResult {
                            success,
                            uid: authenticated_uid.unwrap_or(0),
                            detail: if success { "ok" } else { "permission denied" }.to_string(),
                        }
                        .encode(),
                    );
                }
                ClientMessage::Exec { command } => {
                    let output = if let Some(uid) = authenticated_uid {
                        report.commands += 1;
                        match command.split_once(' ') {
                            Some(("echo", rest)) => rest.to_string(),
                            _ if command == "whoami" => format!("uid={uid}"),
                            _ => format!("unknown command: {command}"),
                        }
                    } else {
                        "permission denied".to_string()
                    };
                    let _ = link.send(&ServerMessage::ExecOutput { output }.encode());
                }
                ClientMessage::ScpChunk { data, last } => {
                    if authenticated_uid.is_some() {
                        report.scp_bytes += data.len() as u64;
                    }
                    let _ = link.send(
                        &ServerMessage::ScpAck {
                            received: report.scp_bytes,
                        }
                        .encode(),
                    );
                    if last && authenticated_uid.is_none() {
                        break;
                    }
                }
                ClientMessage::Disconnect => {
                    let _ = link.send(&ServerMessage::Goodbye.encode());
                    break;
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::SshClient;
    use wedge_core::Exploit;
    use wedge_net::duplex_pair;

    fn server() -> VanillaSsh {
        VanillaSsh::new(
            Wedge::init(),
            RsaKeyPair::generate(&mut WedgeRng::from_seed(1)),
            AuthDb::sample(),
            ServerConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn login_and_scp_work() {
        let server = server();
        let (client_link, server_link) = duplex_pair("client", "sshd");
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| server.serve_connection(&server_link));
            let mut client = SshClient::new();
            let hello = client.connect(&client_link).unwrap();
            assert!(hello.host_proof_valid);
            let (ok, uid, _) = client
                .auth_password(&client_link, "bob", "hunter2")
                .unwrap();
            assert!(ok);
            assert_eq!(uid, 1002);
            let acked = client
                .scp_upload(&client_link, 256 * 1024, 64 * 1024)
                .unwrap();
            assert_eq!(acked, 256 * 1024);
            client.disconnect(&client_link).unwrap();
            let report = handle.join().unwrap();
            assert!(report.authenticated);
            assert_eq!(report.scp_bytes, 256 * 1024);
        });
    }

    #[test]
    fn exploited_monolithic_worker_reads_everything() {
        let server = server();
        let key_buf = server.key_buf();
        let shadow_buf = server.shadow_buf();
        let policy = server.worker_policy();
        let handle = server
            .wedge()
            .root()
            .sthread_create("exploited-monolith", &policy, move |ctx| {
                let mut exploit = Exploit::seize(ctx);
                let key = exploit.try_read(&key_buf).is_ok();
                let shadow = exploit.try_read(&shadow_buf).is_ok();
                (key, shadow, exploit.loot_contains(b"HOST-PRIVATE-KEY"))
            })
            .unwrap();
        let (key, shadow, leaked) = handle.join().unwrap();
        assert!(
            key && shadow && leaked,
            "the monolithic server leaks everything"
        );
    }
}
