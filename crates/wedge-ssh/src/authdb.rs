//! Credential stores: the shadow password file, S/Key one-time passwords,
//! authorized public keys, and the server configuration.

use std::collections::BTreeMap;

use wedge_crypto::sha256::{sha256, to_hex};
use wedge_crypto::RsaPublicKey;

/// One `/etc/shadow`-style entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShadowEntry {
    /// Username.
    pub user: String,
    /// Hex-encoded SHA-256 of the password.
    pub password_hash: String,
    /// Numeric uid assigned on login.
    pub uid: u32,
    /// Home directory (becomes the worker's filesystem root after login).
    pub home: String,
}

/// All credential material the server needs, with text serialisations so
/// each store can live in its own tagged memory region.
#[derive(Debug, Clone, Default)]
pub struct AuthDb {
    shadow: BTreeMap<String, ShadowEntry>,
    /// user → remaining one-time passwords.
    skey: BTreeMap<String, Vec<String>>,
    /// user → authorized public keys.
    authorized: BTreeMap<String, Vec<RsaPublicKey>>,
}

impl AuthDb {
    /// An empty database.
    pub fn new() -> AuthDb {
        AuthDb::default()
    }

    /// A sample database used by tests, examples and benches.
    pub fn sample() -> AuthDb {
        let mut db = AuthDb::new();
        db.add_password_user("alice", "correct horse battery", 1001, "/home/alice");
        db.add_password_user("bob", "hunter2", 1002, "/home/bob");
        db.add_skey("alice", &["otp-one", "otp-two"]);
        db
    }

    /// Add a password-authenticated user.
    pub fn add_password_user(&mut self, user: &str, password: &str, uid: u32, home: &str) {
        self.shadow.insert(
            user.to_string(),
            ShadowEntry {
                user: user.to_string(),
                password_hash: to_hex(&sha256(password.as_bytes())),
                uid,
                home: home.to_string(),
            },
        );
    }

    /// Register S/Key one-time passwords for a user.
    pub fn add_skey(&mut self, user: &str, otps: &[&str]) {
        self.skey.insert(
            user.to_string(),
            otps.iter().map(|s| s.to_string()).collect(),
        );
    }

    /// Register an authorized public key for a user.
    pub fn add_authorized_key(&mut self, user: &str, key: RsaPublicKey) {
        self.authorized
            .entry(user.to_string())
            .or_default()
            .push(key);
    }

    /// Look up a shadow entry.
    pub fn shadow_entry(&self, user: &str) -> Option<&ShadowEntry> {
        self.shadow.get(user)
    }

    /// Number of users in the shadow file.
    pub fn user_count(&self) -> usize {
        self.shadow.len()
    }

    /// Serialise the shadow file (`user:hash:uid:home` per line).
    pub fn serialize_shadow(&self) -> Vec<u8> {
        let mut out = String::new();
        for entry in self.shadow.values() {
            out.push_str(&format!(
                "{}:{}:{}:{}\n",
                entry.user, entry.password_hash, entry.uid, entry.home
            ));
        }
        out.into_bytes()
    }

    /// Parse a serialised shadow file.
    pub fn parse_shadow(data: &[u8]) -> Vec<ShadowEntry> {
        String::from_utf8_lossy(data)
            .lines()
            .filter_map(|line| {
                let mut parts = line.split(':');
                Some(ShadowEntry {
                    user: parts.next()?.to_string(),
                    password_hash: parts.next()?.to_string(),
                    uid: parts.next()?.parse().ok()?,
                    home: parts.next()?.to_string(),
                })
            })
            .collect()
    }

    /// Serialise the S/Key store (`user:otp1,otp2,...`).
    pub fn serialize_skey(&self) -> Vec<u8> {
        let mut out = String::new();
        for (user, otps) in &self.skey {
            out.push_str(&format!("{user}:{}\n", otps.join(",")));
        }
        out.into_bytes()
    }

    /// Parse the S/Key store.
    pub fn parse_skey(data: &[u8]) -> BTreeMap<String, Vec<String>> {
        let mut out = BTreeMap::new();
        for line in String::from_utf8_lossy(data).lines() {
            if let Some((user, otps)) = line.split_once(':') {
                out.insert(
                    user.to_string(),
                    otps.split(',')
                        .filter(|s| !s.is_empty())
                        .map(|s| s.to_string())
                        .collect(),
                );
            }
        }
        out
    }

    /// Serialise the authorized-keys store (`user:n,e;n,e...`).
    pub fn serialize_authorized(&self) -> Vec<u8> {
        let mut out = String::new();
        for (user, keys) in &self.authorized {
            let rendered: Vec<String> = keys.iter().map(|k| format!("{},{}", k.n, k.e)).collect();
            out.push_str(&format!("{user}:{}\n", rendered.join(";")));
        }
        out.into_bytes()
    }

    /// Parse the authorized-keys store.
    pub fn parse_authorized(data: &[u8]) -> BTreeMap<String, Vec<RsaPublicKey>> {
        let mut out = BTreeMap::new();
        for line in String::from_utf8_lossy(data).lines() {
            let Some((user, keys)) = line.split_once(':') else {
                continue;
            };
            let parsed: Vec<RsaPublicKey> = keys
                .split(';')
                .filter_map(|pair| {
                    let (n, e) = pair.split_once(',')?;
                    Some(RsaPublicKey {
                        n: n.parse().ok()?,
                        e: e.parse().ok()?,
                    })
                })
                .collect();
            out.insert(user.to_string(), parsed);
        }
        out
    }

    /// Check a password against the shadow data. Free function form so both
    /// the monolithic server and the password callgate share it.
    pub fn check_password(
        shadow: &[ShadowEntry],
        user: &str,
        password: &str,
    ) -> Option<(u32, String)> {
        let entry = shadow.iter().find(|e| e.user == user)?;
        if entry.password_hash == to_hex(&sha256(password.as_bytes())) {
            Some((entry.uid, entry.home.clone()))
        } else {
            None
        }
    }
}

/// The server configuration the worker may read (version banner, allowed
/// authentication methods, etc.).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// The version banner sent to clients.
    pub version_banner: String,
    /// Whether password authentication is allowed.
    pub allow_password: bool,
    /// Whether empty passwords are permitted.
    pub permit_empty_passwords: bool,
    /// Ciphers advertised to the client.
    pub ciphers: Vec<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            version_banner: "SSH-2.0-wedge_ssh_0.1".to_string(),
            allow_password: true,
            permit_empty_passwords: false,
            ciphers: vec!["toy-stream".to_string(), "none".to_string()],
        }
    }
}

impl ServerConfig {
    /// Serialise for storage as a snapshot global.
    pub fn serialize(&self) -> Vec<u8> {
        format!(
            "{}\n{}\n{}\n{}",
            self.version_banner,
            self.allow_password,
            self.permit_empty_passwords,
            self.ciphers.join(",")
        )
        .into_bytes()
    }

    /// Parse the serialised form.
    pub fn parse(data: &[u8]) -> Option<ServerConfig> {
        let text = String::from_utf8_lossy(data);
        let mut lines = text.lines();
        Some(ServerConfig {
            version_banner: lines.next()?.to_string(),
            allow_password: lines.next()? == "true",
            permit_empty_passwords: lines.next()? == "true",
            ciphers: lines.next()?.split(',').map(|s| s.to_string()).collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wedge_crypto::{RsaKeyPair, WedgeRng};

    #[test]
    fn shadow_roundtrip_and_password_check() {
        let db = AuthDb::sample();
        let entries = AuthDb::parse_shadow(&db.serialize_shadow());
        assert_eq!(entries.len(), 2);
        assert!(AuthDb::check_password(&entries, "alice", "correct horse battery").is_some());
        assert!(AuthDb::check_password(&entries, "alice", "wrong").is_none());
        assert!(AuthDb::check_password(&entries, "nobody", "x").is_none());
        let (uid, home) = AuthDb::check_password(&entries, "bob", "hunter2").unwrap();
        assert_eq!(uid, 1002);
        assert_eq!(home, "/home/bob");
    }

    #[test]
    fn skey_roundtrip() {
        let db = AuthDb::sample();
        let skey = AuthDb::parse_skey(&db.serialize_skey());
        assert_eq!(skey["alice"], vec!["otp-one", "otp-two"]);
    }

    #[test]
    fn authorized_keys_roundtrip() {
        let mut db = AuthDb::sample();
        let kp = RsaKeyPair::generate(&mut WedgeRng::from_seed(1));
        db.add_authorized_key("alice", kp.public);
        let parsed = AuthDb::parse_authorized(&db.serialize_authorized());
        assert_eq!(parsed["alice"], vec![kp.public]);
    }

    #[test]
    fn config_roundtrip() {
        let config = ServerConfig::default();
        assert_eq!(ServerConfig::parse(&config.serialize()).unwrap(), config);
    }
}
