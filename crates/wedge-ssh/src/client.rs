//! The SSH client used by tests, examples and the Table 2 latency bench.

use std::time::Duration;

use wedge_crypto::sha256::sha256;
use wedge_crypto::{RsaPrivateKey, RsaPublicKey};
use wedge_net::{Duplex, RecvTimeout};

use crate::protocol::{ClientMessage, ServerMessage};

const TIMEOUT: Duration = Duration::from_secs(5);

/// What the client learned from the server's hello.
#[derive(Debug, Clone)]
pub struct ServerHelloInfo {
    /// The server's version banner.
    pub version: String,
    /// The host public key presented.
    pub host_key: RsaPublicKey,
    /// Whether the host-key proof verified against the nonce.
    pub host_proof_valid: bool,
    /// The nonce to sign for public-key authentication.
    pub nonce: Vec<u8>,
}

/// A small SSH client. All methods operate on a caller-provided link so one
/// client value can be reused across connections.
#[derive(Debug, Default)]
pub struct SshClient {
    nonce: Vec<u8>,
}

impl SshClient {
    /// Create a client.
    pub fn new() -> SshClient {
        SshClient::default()
    }

    fn transact(&self, link: &Duplex, message: &ClientMessage) -> Result<ServerMessage, String> {
        link.send(&message.encode()).map_err(|e| e.to_string())?;
        let raw = link
            .recv(RecvTimeout::After(TIMEOUT))
            .map_err(|e| e.to_string())?;
        ServerMessage::decode(&raw).ok_or_else(|| "undecodable server message".to_string())
    }

    /// Exchange hellos and validate the host-key proof.
    pub fn connect(&mut self, link: &Duplex) -> Result<ServerHelloInfo, String> {
        let reply = self.transact(
            link,
            &ClientMessage::Hello {
                version: "SSH-2.0-wedge_client_0.1".to_string(),
            },
        )?;
        match reply {
            ServerMessage::Hello {
                version,
                host_key,
                host_proof,
                nonce,
            } => {
                let host_proof_valid = host_key.verify_digest(&sha256(&nonce), &host_proof).is_ok();
                self.nonce = nonce.clone();
                Ok(ServerHelloInfo {
                    version,
                    host_key,
                    host_proof_valid,
                    nonce,
                })
            }
            other => Err(format!("unexpected reply: {other:?}")),
        }
    }

    fn auth(&self, link: &Duplex, message: ClientMessage) -> Result<(bool, u32, String), String> {
        match self.transact(link, &message)? {
            ServerMessage::AuthResult {
                success,
                uid,
                detail,
            } => Ok((success, uid, detail)),
            other => Err(format!("unexpected reply: {other:?}")),
        }
    }

    /// Password authentication. Returns `(success, uid, detail)`.
    pub fn auth_password(
        &self,
        link: &Duplex,
        user: &str,
        password: &str,
    ) -> Result<(bool, u32, String), String> {
        self.auth(
            link,
            ClientMessage::AuthPassword {
                user: user.to_string(),
                password: password.to_string(),
            },
        )
    }

    /// Public-key authentication: signs the server nonce with `key`.
    pub fn auth_pubkey(
        &self,
        link: &Duplex,
        user: &str,
        key: &RsaPrivateKey,
    ) -> Result<(bool, u32, String), String> {
        let mut challenge = user.as_bytes().to_vec();
        challenge.extend_from_slice(&self.nonce);
        let signature = key.sign_digest(&sha256(&challenge));
        self.auth(
            link,
            ClientMessage::AuthPubkey {
                user: user.to_string(),
                signature,
            },
        )
    }

    /// S/Key one-time-password authentication.
    pub fn auth_skey(
        &self,
        link: &Duplex,
        user: &str,
        otp: &str,
    ) -> Result<(bool, u32, String), String> {
        self.auth(
            link,
            ClientMessage::AuthSkey {
                user: user.to_string(),
                otp: otp.to_string(),
            },
        )
    }

    /// Run a command and return its output.
    pub fn exec(&self, link: &Duplex, command: &str) -> Result<String, String> {
        match self.transact(
            link,
            &ClientMessage::Exec {
                command: command.to_string(),
            },
        )? {
            ServerMessage::ExecOutput { output } => Ok(output),
            other => Err(format!("unexpected reply: {other:?}")),
        }
    }

    /// Upload `total` bytes in `chunk_size` chunks (the scp stand-in).
    /// Returns the byte count acknowledged by the server.
    pub fn scp_upload(
        &self,
        link: &Duplex,
        total: usize,
        chunk_size: usize,
    ) -> Result<u64, String> {
        let mut sent = 0usize;
        let mut acknowledged = 0u64;
        while sent < total {
            let this_chunk = chunk_size.min(total - sent);
            sent += this_chunk;
            let reply = self.transact(
                link,
                &ClientMessage::ScpChunk {
                    data: vec![0xC5u8; this_chunk],
                    last: sent >= total,
                },
            )?;
            match reply {
                ServerMessage::ScpAck { received } => acknowledged = received,
                other => return Err(format!("unexpected reply: {other:?}")),
            }
        }
        Ok(acknowledged)
    }

    /// Close the session.
    pub fn disconnect(&self, link: &Duplex) -> Result<(), String> {
        match self.transact(link, &ClientMessage::Disconnect)? {
            ServerMessage::Goodbye => Ok(()),
            other => Err(format!("unexpected reply: {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_client_has_empty_nonce() {
        let client = SshClient::new();
        assert!(client.nonce.is_empty());
    }
}
