//! Sharded privilege-separated monitors.
//!
//! In privilege-separated OpenSSH the *monitor* is the privileged process
//! that holds the credential stores and answers the slave's authentication
//! requests; in the Wedge partitioning that role is played by the auth
//! callgates of a [`WedgeSsh`] instance. One instance can only serve one
//! connection at a time (its `worker_slot` names the compartment the auth
//! gates escalate), so the reproduction's sshd was sequential.
//!
//! [`PooledWedgeSsh`] forks N fully partitioned monitor shards (all
//! sharing one host keypair and auth database) behind `wedge-sched`'s
//! generic [`ShardedFrontEnd`]: each shard boots its own monitor over an
//! independent simulated kernel (fork cost charged once at boot), and the
//! shared serving stack supplies acceptor placement, per-shard health and
//! admission backpressure, the listener accept loop, and — when
//! configured — supervisor auto-restart of killed monitors. Each
//! monitor's isolation story — credential stores in tagged memory
//! reachable only by their gate, dummy-passwd responses, uid escalation
//! only through successful authentication — is exactly that of the
//! sequential server.
//!
//! Exactly one piece of state deliberately crosses shard boundaries, as a
//! narrow shared service rather than shared tagged memory: the
//! [`crate::SkeyLedger`], so an S/Key password spent on any shard is spent
//! on all of them. Everything else each shard holds (host keypair, auth
//! database) is an independent copy inside its own kernel.

use std::sync::Arc;
use std::time::Duration;

use wedge_core::{KernelStats, Wedge, WedgeError};
use wedge_crypto::{RsaKeyPair, RsaPublicKey};
use wedge_net::{Duplex, Listener};
use wedge_sched::{
    AcceptPolicy, FrontEndConfig, KillReport, RestartStats, SchedStats, ShardJobHandle,
    ShardServer, ShardStats, ShardedFrontEnd, SupervisorConfig,
};

use crate::authdb::{AuthDb, ServerConfig};
use crate::server::{SessionReport, WedgeSsh};

/// Configuration of the sharded sshd front-end.
#[derive(Debug, Clone, Copy)]
pub struct PooledSshConfig {
    /// Monitor shards to fork — each an independent kernel.
    pub shards: usize,
    /// Bounded per-shard link-queue capacity.
    pub queue_capacity: usize,
    /// Per-shard admission limit on in-flight connections.
    pub max_inflight: Option<u64>,
    /// How the acceptor places links on shards.
    pub policy: AcceptPolicy,
    /// Enable the shard watchdog (auto-restart of killed monitors).
    pub supervisor: Option<SupervisorConfig>,
}

impl Default for PooledSshConfig {
    fn default() -> Self {
        PooledSshConfig {
            shards: 4,
            queue_capacity: 64,
            max_inflight: None,
            policy: AcceptPolicy::RoundRobin,
            supervisor: None,
        }
    }
}

impl ShardServer for WedgeSsh {
    type Report = SessionReport;

    fn serve_link(&self, shard: usize, link: Duplex) -> Result<SessionReport, WedgeError> {
        self.serve_connection(link)
            .and_then(|handle| handle.join())
            .map(|mut report| {
                report.shard = shard;
                report
            })
    }

    fn kernel_stats(&self) -> KernelStats {
        self.wedge().kernel().stats()
    }

    fn instrument(&self, telemetry: &wedge_telemetry::Telemetry) {
        self.wedge().kernel().instrument(telemetry);
    }
}

/// N Wedge-partitioned SSH monitor shards behind the shared front-end.
pub struct PooledWedgeSsh {
    front: ShardedFrontEnd<WedgeSsh>,
    host_public: RsaPublicKey,
}

impl PooledWedgeSsh {
    /// Fork `config.shards` monitor shards sharing `host_keypair`, `db`
    /// and one consumed-OTP ledger, plus the connection acceptor (and the
    /// supervisor, when configured).
    pub fn new(
        host_keypair: RsaKeyPair,
        db: &AuthDb,
        server_config: &ServerConfig,
        config: PooledSshConfig,
    ) -> Result<PooledWedgeSsh, WedgeError> {
        // One consumed-OTP ledger across the shard set: an S/Key password
        // spent on any monitor shard is spent on all of them, exactly as
        // on the sequential server.
        let skey_ledger: crate::SkeyLedger =
            Arc::new(parking_lot::Mutex::new(std::collections::HashSet::new()));
        let db = db.clone();
        let server_config = server_config.clone();
        let front = ShardedFrontEnd::new(
            FrontEndConfig {
                shards: config.shards,
                queue_capacity: config.queue_capacity,
                max_inflight: config.max_inflight,
                policy: config.policy,
                supervisor: config.supervisor,
                ..FrontEndConfig::default()
            },
            move |_shard| {
                WedgeSsh::with_skey_ledger(
                    Wedge::init(),
                    host_keypair,
                    &db,
                    &server_config,
                    skey_ledger.clone(),
                )
            },
        )?;
        Ok(PooledWedgeSsh {
            front,
            host_public: host_keypair.public,
        })
    }

    /// The host public key clients pin.
    pub fn host_public(&self) -> RsaPublicKey {
        self.host_public
    }

    /// Number of monitor shards.
    pub fn shards(&self) -> usize {
        self.front.shards()
    }

    /// Front-end counters (see [`ShardedFrontEnd::sched_stats`]).
    pub fn sched_stats(&self) -> SchedStats {
        self.front.sched_stats()
    }

    /// Per-shard snapshots (health, boot cost, restarts, depth, counters,
    /// kernel).
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.front.shard_stats()
    }

    /// Kernel counters summed across every monitor shard.
    pub fn kernel_stats(&self) -> KernelStats {
        self.front.kernel_stats()
    }

    /// The supervisor's restart counters (`None` when unsupervised).
    pub fn restart_stats(&self) -> Option<RestartStats> {
        self.front.restart_stats()
    }

    /// Register the whole front-end on `telemetry` (see
    /// [`ShardedFrontEnd::instrument`]).
    pub fn instrument(&self, telemetry: &wedge_telemetry::Telemetry) {
        self.front.instrument(telemetry);
    }

    /// One aggregated metric snapshot (`None` until
    /// [`PooledWedgeSsh::instrument`] is called).
    pub fn telemetry_snapshot(&self) -> Option<wedge_telemetry::TelemetrySnapshot> {
        self.front.telemetry_snapshot()
    }

    /// Kill shard `idx` (fault injection): queued links re-route to
    /// healthy shards; a configured supervisor respawns the monitor.
    pub fn kill_shard(&self, idx: usize) -> KillReport {
        self.front.kill_shard(idx)
    }

    /// Manually revive killed monitor shard `idx`.
    pub fn restart_shard(&self, idx: usize) -> Result<Duration, WedgeError> {
        self.front.restart_shard(idx)
    }

    /// Block until shard `idx` is healthy again, up to `timeout`.
    pub fn await_healthy(&self, idx: usize, timeout: Duration) -> bool {
        self.front.await_healthy(idx, timeout)
    }

    /// Submit one connection; the handle resolves to the session report,
    /// whose `shard` field names the monitor shard that served it. Fails
    /// with [`WedgeError::ResourceExhausted`] only when every shard
    /// rejects.
    pub fn serve(&self, link: Duplex) -> Result<ShardJobHandle<SessionReport>, WedgeError> {
        self.front.serve(link)
    }

    /// Serve every link and return the outcomes **in link order** —
    /// `result[i]` is `links[i]`'s outcome — backing off briefly whenever
    /// every shard pushes back.
    pub fn serve_all(&self, links: Vec<Duplex>) -> Vec<Result<SessionReport, WedgeError>> {
        self.front.serve_all(links)
    }

    /// Run the accept loop over `listener` until it closes, serving every
    /// accepted connection with source-address affinity (see
    /// [`ShardedFrontEnd::serve_listener`]).
    pub fn serve_listener(
        &self,
        listener: &Listener,
        batch: usize,
    ) -> Vec<Result<SessionReport, WedgeError>> {
        self.front.serve_listener(listener, batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SshClient;
    use wedge_crypto::WedgeRng;
    use wedge_net::duplex_pair;

    #[test]
    fn sharded_monitors_serve_simultaneous_logins() {
        let keypair = RsaKeyPair::generate(&mut WedgeRng::from_seed(61));
        let server = PooledWedgeSsh::new(
            keypair,
            &AuthDb::sample(),
            &ServerConfig::default(),
            PooledSshConfig {
                shards: 3,
                ..PooledSshConfig::default()
            },
        )
        .unwrap();

        let connections = 9;
        let mut clients = Vec::new();
        let mut handles = Vec::new();
        for i in 0..connections {
            let (client_link, server_link) = duplex_pair(&format!("c{i}"), &format!("s{i}"));
            handles.push(server.serve(server_link).unwrap());
            clients.push(std::thread::spawn(move || {
                let mut client = SshClient::new();
                client.connect(&client_link).expect("hello");
                let (ok, _, _) = client
                    .auth_password(&client_link, "alice", "correct horse battery")
                    .expect("auth");
                assert!(ok, "login {i} must succeed");
                client.disconnect(&client_link).expect("disconnect");
            }));
        }
        for client in clients {
            client.join().expect("client thread");
        }
        let mut shards_used = std::collections::HashSet::new();
        for handle in handles {
            let report = handle.join().expect("session");
            assert!(report.authenticated);
            assert_eq!(report.uid, 1001);
            shards_used.insert(report.shard);
        }
        assert_eq!(shards_used.len(), 3, "round-robin uses every shard");

        let sched = server.sched_stats();
        assert_eq!(sched.submitted, connections as u64);
        assert_eq!(sched.completed, connections as u64);
        // One worker sthread per connection across the shard kernels.
        assert_eq!(server.kernel_stats().sthreads_created, connections as u64);
    }

    #[test]
    fn serve_all_preserves_link_order() {
        // Alternate alice/bob logins; the in-order reports must show the
        // alternating uids even though shards complete out of order.
        let keypair = RsaKeyPair::generate(&mut WedgeRng::from_seed(62));
        let server = PooledWedgeSsh::new(
            keypair,
            &AuthDb::sample(),
            &ServerConfig::default(),
            PooledSshConfig {
                shards: 2,
                ..PooledSshConfig::default()
            },
        )
        .unwrap();
        let users = ["alice", "bob", "alice", "bob", "alice", "bob"];
        let mut clients = Vec::new();
        let mut server_links = Vec::new();
        for (i, user) in users.iter().enumerate() {
            let (client_link, server_link) = duplex_pair(&format!("c{i}"), &format!("s{i}"));
            server_links.push(server_link);
            let user = user.to_string();
            clients.push(std::thread::spawn(move || {
                let password = if user == "alice" {
                    "correct horse battery"
                } else {
                    "hunter2"
                };
                let mut client = SshClient::new();
                client.connect(&client_link).expect("hello");
                let (ok, _, _) = client
                    .auth_password(&client_link, &user, password)
                    .expect("auth");
                assert!(ok);
                client.disconnect(&client_link).expect("disconnect");
            }));
        }
        let reports = server.serve_all(server_links);
        for client in clients {
            client.join().expect("client thread");
        }
        let uids: Vec<u32> = reports
            .into_iter()
            .map(|r| r.expect("session").uid)
            .collect();
        assert_eq!(
            uids,
            vec![1001, 1002, 1001, 1002, 1001, 1002],
            "reports must come back in link order"
        );
    }

    #[test]
    fn skey_otp_spent_on_one_monitor_is_dead_on_every_other() {
        // Two monitors built the way PooledWedgeSsh builds them: independent
        // kernels, one shared consumed-OTP ledger. Each monitor's private
        // S/Key store still lists "otp-one" after the other consumed it —
        // the ledger is what keeps one-time passwords one-time shard-wide.
        let keypair = RsaKeyPair::generate(&mut WedgeRng::from_seed(71));
        let db = AuthDb::sample();
        let config = ServerConfig::default();
        let ledger: crate::SkeyLedger =
            Arc::new(parking_lot::Mutex::new(std::collections::HashSet::new()));
        let monitor_a =
            WedgeSsh::with_skey_ledger(Wedge::init(), keypair, &db, &config, ledger.clone())
                .unwrap();
        let monitor_b =
            WedgeSsh::with_skey_ledger(Wedge::init(), keypair, &db, &config, ledger).unwrap();

        let login = |monitor: &WedgeSsh, otp: &str| -> bool {
            let (client_link, server_link) = duplex_pair("skey-client", "sshd");
            let handle = monitor.serve_connection(server_link).unwrap();
            let mut client = SshClient::new();
            client.connect(&client_link).expect("hello");
            let (ok, _, _) = client
                .auth_skey(&client_link, "alice", otp)
                .expect("skey auth");
            client.disconnect(&client_link).expect("disconnect");
            handle.join().expect("session");
            ok
        };

        assert!(login(&monitor_a, "otp-one"), "first use must succeed");
        assert!(
            !login(&monitor_b, "otp-one"),
            "replay on a sibling monitor must be refused"
        );
        assert!(
            login(&monitor_b, "otp-two"),
            "unspent OTPs still work everywhere"
        );
    }

    #[test]
    fn admission_limit_sheds_excess_logins() {
        let keypair = RsaKeyPair::generate(&mut WedgeRng::from_seed(67));
        let server = PooledWedgeSsh::new(
            keypair,
            &AuthDb::sample(),
            &ServerConfig::default(),
            PooledSshConfig {
                shards: 1,
                queue_capacity: 1,
                max_inflight: Some(1),
                ..PooledSshConfig::default()
            },
        )
        .unwrap();
        let (_silent_client, silent_server) = duplex_pair("silent", "sshd");
        let _busy = server.serve(silent_server).unwrap();
        let (_c2, s2) = duplex_pair("c2", "s2");
        let err = server.serve(s2).unwrap_err();
        assert!(matches!(err, WedgeError::ResourceExhausted { .. }));
        assert_eq!(server.sched_stats().rejected, 1);
    }
}
