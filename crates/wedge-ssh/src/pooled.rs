//! Pooled privilege-separated monitors.
//!
//! In privilege-separated OpenSSH the *monitor* is the privileged process
//! that holds the credential stores and answers the slave's authentication
//! requests; in the Wedge partitioning that role is played by the auth
//! callgates of a [`WedgeSsh`] instance. One instance can only serve one
//! connection at a time (its `worker_slot` names the compartment the auth
//! gates escalate), so the reproduction's sshd was sequential.
//!
//! [`PooledWedgeSsh`] pools N fully partitioned monitor instances (all
//! sharing one host keypair and auth database) behind a `wedge-sched`
//! work-stealing scheduler: each incoming connection job claims a free
//! monitor, serves login + session on it, and returns it. Admission
//! control bounds in-flight connections, and each monitor's isolation
//! story — credential stores in tagged memory reachable only by their
//! gate, dummy-passwd responses, uid escalation only through successful
//! authentication — is exactly that of the sequential server.

use std::sync::Arc;

use wedge_core::{KernelStats, Wedge, WedgeError};
use wedge_crypto::{RsaKeyPair, RsaPublicKey};
use wedge_net::Duplex;
use wedge_sched::{InstancePool, JobHandle, SchedStats, Scheduler, SchedulerConfig};

use crate::authdb::{AuthDb, ServerConfig};
use crate::server::{SessionReport, WedgeSsh};

/// Configuration of the pooled sshd front-end.
#[derive(Debug, Clone, Copy)]
pub struct PooledSshConfig {
    /// Monitor instances in the pool — also the scheduler worker count.
    pub workers: usize,
    /// Bounded per-worker run-queue capacity.
    pub queue_capacity: usize,
    /// Admission limit on in-flight connections.
    pub max_pending: Option<u64>,
}

impl Default for PooledSshConfig {
    fn default() -> Self {
        PooledSshConfig {
            workers: 4,
            queue_capacity: 64,
            max_pending: None,
        }
    }
}

/// N Wedge-partitioned SSH monitors behind one scheduler.
pub struct PooledWedgeSsh {
    monitors: Vec<Arc<WedgeSsh>>,
    pool: Arc<InstancePool>,
    sched: Scheduler,
    host_public: RsaPublicKey,
}

impl PooledWedgeSsh {
    /// Build `config.workers` monitor instances sharing `host_keypair` and
    /// `db`, plus the connection scheduler.
    pub fn new(
        host_keypair: RsaKeyPair,
        db: &AuthDb,
        server_config: &ServerConfig,
        config: PooledSshConfig,
    ) -> Result<PooledWedgeSsh, WedgeError> {
        let workers = config.workers.max(1);
        // One consumed-OTP ledger across the pool: an S/Key password spent
        // on any monitor is spent on all of them, exactly as on the
        // sequential server.
        let skey_ledger: crate::SkeyLedger =
            Arc::new(parking_lot::Mutex::new(std::collections::HashSet::new()));
        let mut monitors = Vec::with_capacity(workers);
        for _ in 0..workers {
            monitors.push(Arc::new(WedgeSsh::with_skey_ledger(
                Wedge::init(),
                host_keypair,
                db,
                server_config,
                skey_ledger.clone(),
            )?));
        }
        Ok(PooledWedgeSsh {
            monitors,
            pool: Arc::new(InstancePool::new(workers)),
            sched: Scheduler::new(SchedulerConfig {
                workers,
                queue_capacity: config.queue_capacity,
                max_pending: config.max_pending,
            }),
            host_public: host_keypair.public,
        })
    }

    /// The host public key clients pin.
    pub fn host_public(&self) -> RsaPublicKey {
        self.host_public
    }

    /// Pool width.
    pub fn workers(&self) -> usize {
        self.monitors.len()
    }

    /// Scheduler counters.
    pub fn sched_stats(&self) -> SchedStats {
        self.sched.stats()
    }

    /// Kernel counters summed across every pooled monitor.
    pub fn kernel_stats(&self) -> KernelStats {
        let mut total = KernelStats::default();
        for monitor in &self.monitors {
            total += &monitor.wedge().kernel().stats();
        }
        total
    }

    /// Submit one connection. The job claims a free monitor (the claim
    /// guard releases it even on a panic), runs the whole session on it
    /// (spawning that monitor's per-connection worker sthread and joining
    /// it), and releases the monitor.
    pub fn serve(
        &self,
        link: Duplex,
    ) -> Result<JobHandle<Result<SessionReport, WedgeError>>, WedgeError> {
        let monitors = self.monitors.clone();
        let pool = self.pool.clone();
        self.sched.submit(move || {
            let claim = pool.claim();
            monitors[claim.index()]
                .serve_connection(link)
                .and_then(|handle| handle.join())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SshClient;
    use wedge_crypto::WedgeRng;
    use wedge_net::duplex_pair;

    #[test]
    fn pooled_monitors_serve_simultaneous_logins() {
        let keypair = RsaKeyPair::generate(&mut WedgeRng::from_seed(61));
        let server = PooledWedgeSsh::new(
            keypair,
            &AuthDb::sample(),
            &ServerConfig::default(),
            PooledSshConfig {
                workers: 3,
                ..PooledSshConfig::default()
            },
        )
        .unwrap();

        let connections = 9;
        let mut clients = Vec::new();
        let mut handles = Vec::new();
        for i in 0..connections {
            let (client_link, server_link) = duplex_pair(&format!("c{i}"), &format!("s{i}"));
            handles.push(server.serve(server_link).unwrap());
            clients.push(std::thread::spawn(move || {
                let mut client = SshClient::new();
                client.connect(&client_link).expect("hello");
                let (ok, _, _) = client
                    .auth_password(&client_link, "alice", "correct horse battery")
                    .expect("auth");
                assert!(ok, "login {i} must succeed");
                client.disconnect(&client_link).expect("disconnect");
            }));
        }
        for client in clients {
            client.join().expect("client thread");
        }
        for handle in handles {
            let report = handle.join().expect("job").expect("session");
            assert!(report.authenticated);
            assert_eq!(report.uid, 1001);
        }

        let sched = server.sched_stats();
        assert_eq!(sched.submitted, connections as u64);
        assert_eq!(sched.completed, connections as u64);
        // One worker sthread per connection across the monitor pool.
        assert_eq!(server.kernel_stats().sthreads_created, connections as u64);
    }

    #[test]
    fn skey_otp_spent_on_one_monitor_is_dead_on_every_other() {
        // Two monitors built the way PooledWedgeSsh builds them: independent
        // kernels, one shared consumed-OTP ledger. Each monitor's private
        // S/Key store still lists "otp-one" after the other consumed it —
        // the ledger is what keeps one-time passwords one-time pool-wide.
        let keypair = RsaKeyPair::generate(&mut WedgeRng::from_seed(71));
        let db = AuthDb::sample();
        let config = ServerConfig::default();
        let ledger: crate::SkeyLedger =
            Arc::new(parking_lot::Mutex::new(std::collections::HashSet::new()));
        let monitor_a =
            WedgeSsh::with_skey_ledger(Wedge::init(), keypair, &db, &config, ledger.clone())
                .unwrap();
        let monitor_b =
            WedgeSsh::with_skey_ledger(Wedge::init(), keypair, &db, &config, ledger).unwrap();

        let login = |monitor: &WedgeSsh, otp: &str| -> bool {
            let (client_link, server_link) = duplex_pair("skey-client", "sshd");
            let handle = monitor.serve_connection(server_link).unwrap();
            let mut client = SshClient::new();
            client.connect(&client_link).expect("hello");
            let (ok, _, _) = client
                .auth_skey(&client_link, "alice", otp)
                .expect("skey auth");
            client.disconnect(&client_link).expect("disconnect");
            handle.join().expect("session");
            ok
        };

        assert!(login(&monitor_a, "otp-one"), "first use must succeed");
        assert!(
            !login(&monitor_b, "otp-one"),
            "replay on a sibling monitor must be refused"
        );
        assert!(
            login(&monitor_b, "otp-two"),
            "unspent OTPs still work everywhere"
        );
    }

    #[test]
    fn admission_limit_sheds_excess_logins() {
        let keypair = RsaKeyPair::generate(&mut WedgeRng::from_seed(67));
        let server = PooledWedgeSsh::new(
            keypair,
            &AuthDb::sample(),
            &ServerConfig::default(),
            PooledSshConfig {
                workers: 1,
                queue_capacity: 1,
                max_pending: Some(1),
            },
        )
        .unwrap();
        let (_silent_client, silent_server) = duplex_pair("silent", "sshd");
        let _busy = server.serve(silent_server).unwrap();
        let (_c2, s2) = duplex_pair("c2", "s2");
        let err = server.serve(s2).unwrap_err();
        assert!(matches!(err, WedgeError::ResourceExhausted { .. }));
        assert_eq!(server.sched_stats().rejected, 1);
    }
}
