//! The two "lessons" of §5.2, as executable comparisons.
//!
//! 1. **Username probing.** In Provos-style privilege-separated OpenSSH the
//!    slave asks the monitor for a user's `passwd` structure; the monitor
//!    returns `NULL` when the username does not exist. An exploited slave
//!    can therefore use the monitor as an oracle for valid usernames (the
//!    paper notes the vulnerability is still present in portable OpenSSH
//!    4.7). The Wedge partitioning's password callgate instead returns a
//!    dummy structure, so the two cases are indistinguishable.
//! 2. **Inherited scratch memory.** A PAM-style library that leaves secrets
//!    in scratch storage exposes them to a fork-based slave, because fork
//!    inherits all of the parent's memory. A callgate's scratch allocations
//!    live in the callgate compartment's *private* (untagged) memory, which
//!    cannot even be named in another compartment's policy.

use wedge_core::{Exploit, SBuf, SecurityPolicy, Wedge, WedgeError};

use crate::authdb::ShadowEntry;

/// A minimal `struct passwd`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PasswdStruct {
    /// Username.
    pub name: String,
    /// Numeric uid.
    pub uid: u32,
    /// Home directory.
    pub home: String,
}

/// The privilege-separated monitor's behaviour: `None` for unknown users —
/// an information leak usable by an exploited slave.
pub fn monitor_lookup_user(shadow: &[ShadowEntry], user: &str) -> Option<PasswdStruct> {
    shadow
        .iter()
        .find(|e| e.user == user)
        .map(|e| PasswdStruct {
            name: e.user.clone(),
            uid: e.uid,
            home: e.home.clone(),
        })
}

/// The Wedge password callgate's behaviour: a dummy structure for unknown
/// users, indistinguishable (to the caller) from a real one.
pub fn wedge_lookup_user(shadow: &[ShadowEntry], user: &str) -> PasswdStruct {
    monitor_lookup_user(shadow, user).unwrap_or(PasswdStruct {
        name: user.to_string(),
        uid: 0xFFFF_FFFE,
        home: "/nonexistent".to_string(),
    })
}

/// Can a caller distinguish existing from non-existing users through the
/// given lookup behaviour? (The probe the paper describes.)
pub fn probing_leak_exists(
    lookup: impl Fn(&str) -> Option<PasswdStruct>,
    known_user: &str,
    unknown_user: &str,
) -> bool {
    lookup(known_user).is_some() != lookup(unknown_user).is_some()
}

/// Outcome of the PAM scratch-memory comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScratchLeakOutcome {
    /// Could the fork-style child read the library's scratch secret?
    pub forked_child_reads_scratch: bool,
    /// Could a sibling sthread read the callgate's scratch secret?
    pub sthread_reads_callgate_scratch: bool,
}

/// Demonstrate the PAM scratch-storage lesson on a live Wedge runtime.
///
/// The "library" writes a secret into scratch memory. In the fork model the
/// child inherits that memory (modelled here by granting the child the
/// scratch tag, as fork would); in the Wedge model the scratch is a private
/// allocation inside a callgate-like compartment and cannot be granted at
/// all.
pub fn demonstrate_scratch_leak(wedge: &Wedge) -> Result<ScratchLeakOutcome, WedgeError> {
    let root = wedge.root();

    // Fork model: scratch lives in shared (inheritable) memory.
    let inherited_tag = root.tag_new()?;
    let inherited_scratch = root.smalloc_init(inherited_tag, b"pam-password=hunter2")?;
    let mut forked_policy = SecurityPolicy::deny_all();
    forked_policy.sc_mem_add(inherited_tag, wedge_core::MemProt::Read);
    let forked = root.sthread_create("forked-slave", &forked_policy, move |ctx| {
        let mut exploit = Exploit::seize(ctx);
        exploit.try_read(&inherited_scratch).is_ok()
    })?;
    let forked_child_reads_scratch = forked.join()?;

    // Wedge model: the callgate's scratch is a private allocation; the
    // worker cannot even name it in a policy, so the best an exploited
    // worker can do is try the handle directly — and fault.
    let callgate_like = root.sthread_create(
        "pam-callgate",
        &SecurityPolicy::deny_all(),
        |ctx| -> Result<SBuf, WedgeError> {
            let scratch = ctx.malloc(64)?;
            ctx.write(&scratch, 0, b"pam-password=hunter2")?;
            Ok(scratch)
        },
    )?;
    let private_scratch = callgate_like.join()??;
    let worker = root.sthread_create(
        "exploited-worker",
        &SecurityPolicy::deny_all(),
        move |ctx| {
            let mut exploit = Exploit::seize(ctx);
            exploit.try_read(&private_scratch).is_ok()
        },
    )?;
    let sthread_reads_callgate_scratch = worker.join()?;

    Ok(ScratchLeakOutcome {
        forked_child_reads_scratch,
        sthread_reads_callgate_scratch,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authdb::AuthDb;

    #[test]
    fn monitor_lookup_leaks_username_validity_and_wedge_does_not() {
        let db = AuthDb::sample();
        let shadow = AuthDb::parse_shadow(&db.serialize_shadow());
        assert!(probing_leak_exists(
            |user| monitor_lookup_user(&shadow, user),
            "alice",
            "mallory"
        ));
        assert!(!probing_leak_exists(
            |user| Some(wedge_lookup_user(&shadow, user)),
            "alice",
            "mallory"
        ));
        // The dummy struct still differs in content, but the *caller-visible
        // shape* (a struct is always returned) is identical.
        assert_eq!(wedge_lookup_user(&shadow, "alice").uid, 1001);
        assert_ne!(wedge_lookup_user(&shadow, "mallory").uid, 1001);
    }

    #[test]
    fn scratch_memory_leaks_under_fork_but_not_under_callgates() {
        let wedge = Wedge::init();
        let outcome = demonstrate_scratch_leak(&wedge).unwrap();
        assert!(outcome.forked_child_reads_scratch);
        assert!(!outcome.sthread_reads_callgate_scratch);
    }
}
