//! The SSH-like wire protocol used by every server variant.
//!
//! It is a deliberately small, message-per-link-message protocol: the §5.2
//! experiments are about *which compartment holds which credential* and
//! *how authentication changes privilege*, not about the SSH transport
//! layer, so messages travel as tagged text/binary frames. The host-key
//! proof and the three authentication methods mirror the paper's callgates.

use wedge_crypto::RsaPublicKey;

/// A client → server message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientMessage {
    /// Protocol + software version announcement.
    Hello {
        /// Client version banner.
        version: String,
    },
    /// Password authentication attempt.
    AuthPassword {
        /// Claimed username.
        user: String,
        /// Supplied password.
        password: String,
    },
    /// Public-key authentication attempt: a signature over the server's
    /// nonce made with the user's private key.
    AuthPubkey {
        /// Claimed username.
        user: String,
        /// Signature over SHA-256(user ‖ nonce).
        signature: Vec<u8>,
    },
    /// S/Key one-time-password attempt.
    AuthSkey {
        /// Claimed username.
        user: String,
        /// The one-time password.
        otp: String,
    },
    /// Run a command in the established session.
    Exec {
        /// The command line.
        command: String,
    },
    /// Upload a blob (the scp stand-in).
    ScpChunk {
        /// Chunk payload.
        data: Vec<u8>,
        /// Is this the final chunk?
        last: bool,
    },
    /// Close the session.
    Disconnect,
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerMessage {
    /// Version banner, host public key and the session nonce to sign for
    /// public-key authentication.
    Hello {
        /// Server version banner.
        version: String,
        /// The host public key.
        host_key: RsaPublicKey,
        /// Signature by the host key over this session's nonce (the host
        /// authentication step — produced by the `host_sign` callgate).
        host_proof: Vec<u8>,
        /// The nonce clients sign for public-key auth.
        nonce: Vec<u8>,
    },
    /// Result of an authentication attempt.
    AuthResult {
        /// Did authentication succeed?
        success: bool,
        /// The uid granted (0 when failed).
        uid: u32,
        /// Human-readable detail. For failed attempts this is identical
        /// whether or not the username exists (the anti-probing fix).
        detail: String,
    },
    /// Output of an `Exec` command.
    ExecOutput {
        /// Command output.
        output: String,
    },
    /// Acknowledgement of uploaded scp bytes.
    ScpAck {
        /// Total bytes received so far.
        received: u64,
    },
    /// The server is closing the session.
    Goodbye,
}

fn put(out: &mut Vec<u8>, data: &[u8]) {
    out.extend_from_slice(&(data.len() as u32).to_be_bytes());
    out.extend_from_slice(data);
}

fn get<'a>(input: &mut &'a [u8]) -> Option<&'a [u8]> {
    if input.len() < 4 {
        return None;
    }
    let len = u32::from_be_bytes(input[..4].try_into().ok()?) as usize;
    if input.len() < 4 + len {
        return None;
    }
    let (data, rest) = input[4..].split_at(len);
    *input = rest;
    Some(data)
}

fn get_string(input: &mut &[u8]) -> Option<String> {
    Some(String::from_utf8_lossy(get(input)?).to_string())
}

impl ClientMessage {
    /// Encode to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            ClientMessage::Hello { version } => {
                out.push(1);
                put(&mut out, version.as_bytes());
            }
            ClientMessage::AuthPassword { user, password } => {
                out.push(2);
                put(&mut out, user.as_bytes());
                put(&mut out, password.as_bytes());
            }
            ClientMessage::AuthPubkey { user, signature } => {
                out.push(3);
                put(&mut out, user.as_bytes());
                put(&mut out, signature);
            }
            ClientMessage::AuthSkey { user, otp } => {
                out.push(4);
                put(&mut out, user.as_bytes());
                put(&mut out, otp.as_bytes());
            }
            ClientMessage::Exec { command } => {
                out.push(5);
                put(&mut out, command.as_bytes());
            }
            ClientMessage::ScpChunk { data, last } => {
                out.push(6);
                put(&mut out, data);
                out.push(u8::from(*last));
            }
            ClientMessage::Disconnect => out.push(7),
        }
        out
    }

    /// Decode from wire bytes.
    pub fn decode(input: &[u8]) -> Option<ClientMessage> {
        let (&tag, mut rest) = input.split_first()?;
        match tag {
            1 => Some(ClientMessage::Hello {
                version: get_string(&mut rest)?,
            }),
            2 => Some(ClientMessage::AuthPassword {
                user: get_string(&mut rest)?,
                password: get_string(&mut rest)?,
            }),
            3 => Some(ClientMessage::AuthPubkey {
                user: get_string(&mut rest)?,
                signature: get(&mut rest)?.to_vec(),
            }),
            4 => Some(ClientMessage::AuthSkey {
                user: get_string(&mut rest)?,
                otp: get_string(&mut rest)?,
            }),
            5 => Some(ClientMessage::Exec {
                command: get_string(&mut rest)?,
            }),
            6 => {
                let data = get(&mut rest)?.to_vec();
                let last = *rest.first()? != 0;
                Some(ClientMessage::ScpChunk { data, last })
            }
            7 => Some(ClientMessage::Disconnect),
            _ => None,
        }
    }
}

impl ServerMessage {
    /// Encode to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            ServerMessage::Hello {
                version,
                host_key,
                host_proof,
                nonce,
            } => {
                out.push(101);
                put(&mut out, version.as_bytes());
                out.extend_from_slice(&host_key.n.to_be_bytes());
                out.extend_from_slice(&host_key.e.to_be_bytes());
                put(&mut out, host_proof);
                put(&mut out, nonce);
            }
            ServerMessage::AuthResult {
                success,
                uid,
                detail,
            } => {
                out.push(102);
                out.push(u8::from(*success));
                out.extend_from_slice(&uid.to_be_bytes());
                put(&mut out, detail.as_bytes());
            }
            ServerMessage::ExecOutput { output } => {
                out.push(103);
                put(&mut out, output.as_bytes());
            }
            ServerMessage::ScpAck { received } => {
                out.push(104);
                out.extend_from_slice(&received.to_be_bytes());
            }
            ServerMessage::Goodbye => out.push(105),
        }
        out
    }

    /// Decode from wire bytes.
    pub fn decode(input: &[u8]) -> Option<ServerMessage> {
        let (&tag, mut rest) = input.split_first()?;
        match tag {
            101 => {
                let version = get_string(&mut rest)?;
                if rest.len() < 16 {
                    return None;
                }
                let n = u64::from_be_bytes(rest[..8].try_into().ok()?);
                let e = u64::from_be_bytes(rest[8..16].try_into().ok()?);
                rest = &rest[16..];
                Some(ServerMessage::Hello {
                    version,
                    host_key: RsaPublicKey { n, e },
                    host_proof: get(&mut rest)?.to_vec(),
                    nonce: get(&mut rest)?.to_vec(),
                })
            }
            102 => {
                let success = *rest.first()? != 0;
                rest = &rest[1..];
                if rest.len() < 4 {
                    return None;
                }
                let uid = u32::from_be_bytes(rest[..4].try_into().ok()?);
                rest = &rest[4..];
                Some(ServerMessage::AuthResult {
                    success,
                    uid,
                    detail: get_string(&mut rest)?,
                })
            }
            103 => Some(ServerMessage::ExecOutput {
                output: get_string(&mut rest)?,
            }),
            104 => Some(ServerMessage::ScpAck {
                received: u64::from_be_bytes(rest.get(..8)?.try_into().ok()?),
            }),
            105 => Some(ServerMessage::Goodbye),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_messages_roundtrip() {
        let messages = vec![
            ClientMessage::Hello {
                version: "SSH-2.0-test".into(),
            },
            ClientMessage::AuthPassword {
                user: "alice".into(),
                password: "pw".into(),
            },
            ClientMessage::AuthPubkey {
                user: "bob".into(),
                signature: vec![1, 2, 3],
            },
            ClientMessage::AuthSkey {
                user: "alice".into(),
                otp: "otp-one".into(),
            },
            ClientMessage::Exec {
                command: "echo hi".into(),
            },
            ClientMessage::ScpChunk {
                data: vec![0u8; 100],
                last: true,
            },
            ClientMessage::Disconnect,
        ];
        for msg in messages {
            assert_eq!(ClientMessage::decode(&msg.encode()).unwrap(), msg);
        }
    }

    #[test]
    fn server_messages_roundtrip() {
        let messages = vec![
            ServerMessage::Hello {
                version: "SSH-2.0-wedge".into(),
                host_key: RsaPublicKey { n: 12345, e: 65537 },
                host_proof: vec![9; 16],
                nonce: vec![7; 32],
            },
            ServerMessage::AuthResult {
                success: true,
                uid: 1001,
                detail: "ok".into(),
            },
            ServerMessage::ExecOutput {
                output: "hi".into(),
            },
            ServerMessage::ScpAck {
                received: 10 * 1024 * 1024,
            },
            ServerMessage::Goodbye,
        ];
        for msg in messages {
            assert_eq!(ServerMessage::decode(&msg.encode()).unwrap(), msg);
        }
    }

    #[test]
    fn garbage_decodes_to_none() {
        assert!(ClientMessage::decode(&[]).is_none());
        assert!(ClientMessage::decode(&[99, 1, 2]).is_none());
        assert!(ServerMessage::decode(&[1, 2, 3]).is_none());
        assert!(ServerMessage::decode(&[102]).is_none());
    }
}
