//! # wedge-ssh — the OpenSSH case study (§5.2)
//!
//! A small SSH-like login server reproduced in three forms so the paper's
//! §5.2 goals can be exercised:
//!
//! * [`vanilla::VanillaSsh`] — monolithic: host private key, shadow file and
//!   request parsing share one compartment (pre-privilege-separation
//!   OpenSSH 3.1p1, the paper's starting point).
//! * [`privsep`] — the *lesson* modules: the username-probing information
//!   leak present in Provos-style privilege-separated OpenSSH (the monitor
//!   returns `NULL` for unknown users), and the PAM scratch-memory leak a
//!   fork-based slave inherits — both of which the Wedge partitioning
//!   avoids.
//! * [`server::WedgeSsh`] — the Wedge partitioning: an unprivileged,
//!   network-facing **worker** sthread per connection (uid `sshd`, empty
//!   filesystem root, read access only to the host *public* key and the
//!   server configuration), and four callgates — `host_sign` (the only code
//!   able to touch the host private key; it signs only hashes it computes
//!   itself), `password_auth`, `pubkey_auth` and `skey_auth` (each with
//!   access to its own credential store; on success they escalate the
//!   worker's uid and filesystem root). Authentication cannot be bypassed:
//!   the only way for the worker to change its uid is a successful callgate.
//!
//! [`pooled::PooledWedgeSsh`] pools N partitioned monitors behind a
//! `wedge-sched` scheduler so many logins proceed simultaneously with
//! admission control — the concurrent front-end the sequential server
//! lacks.
//!
//! [`client::SshClient`] is the test/bench client, including the 10 MB
//! `scp`-style upload used by Table 2.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod authdb;
pub mod client;
pub mod pooled;
pub mod privsep;
pub mod protocol;
pub mod server;
pub mod vanilla;

pub use authdb::{AuthDb, ShadowEntry};
pub use client::SshClient;
pub use pooled::{PooledSshConfig, PooledWedgeSsh};
pub use server::{AuthMethod, SkeyLedger, WedgeSsh};
pub use vanilla::VanillaSsh;
