//! The Wedge-partitioned SSH server (§5.2).

use std::sync::Arc;

use parking_lot::Mutex;

use wedge_core::callgate::typed_entry;
use wedge_core::{
    CgEntryId, CompartmentId, MemProt, SBuf, SecurityPolicy, SthreadCtx, SthreadHandle, Tag,
    TrustedArg, Uid, Wedge, WedgeError,
};
use wedge_crypto::sha256::sha256;
use wedge_crypto::{RsaKeyPair, RsaPrivateKey, RsaPublicKey, WedgeRng};
use wedge_net::{Duplex, RecvTimeout};

use crate::authdb::{AuthDb, ServerConfig};
use crate::protocol::{ClientMessage, ServerMessage};

/// How long the worker waits for the next client message.
pub const SESSION_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(5);

/// The uid the worker runs as before authentication (the unprivileged
/// `sshd` user).
pub const UNPRIVILEGED_UID: Uid = Uid(74);

/// The authentication methods the server supports (one callgate each).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuthMethod {
    /// Password authentication.
    Password,
    /// Public-key ("DSA" in the paper) authentication.
    Pubkey,
    /// S/Key one-time-password authentication.
    Skey,
}

/// The verdict returned by every authentication callgate. The `detail`
/// string is identical for "no such user" and "wrong credential" — the
/// dummy-passwd fix for the username-probing leak the paper found in
/// privilege-separated OpenSSH.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuthVerdict {
    /// Did authentication succeed?
    pub success: bool,
    /// The uid granted on success (0 otherwise).
    pub uid: u32,
    /// Constant-for-failures human-readable detail.
    pub detail: String,
}

impl AuthVerdict {
    fn denied() -> AuthVerdict {
        AuthVerdict {
            success: false,
            uid: 0,
            detail: "permission denied".to_string(),
        }
    }
}

/// Report returned by the worker when the session ends.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SessionReport {
    /// Did the client authenticate?
    pub authenticated: bool,
    /// The uid granted.
    pub uid: u32,
    /// Exec commands served.
    pub commands: u32,
    /// Bytes accepted over the scp path.
    pub scp_bytes: u64,
    /// The shard that served the session (0 outside a sharded front-end),
    /// so callers can attribute outcomes and failures.
    pub shard: usize,
}

fn serialize_private_key(keypair: &RsaKeyPair) -> Vec<u8> {
    let mut out = b"HOST-PRIVATE-KEY:".to_vec();
    out.extend_from_slice(&keypair.private.n.to_le_bytes());
    out.extend_from_slice(&keypair.private.d.to_le_bytes());
    out
}

fn parse_private_key(bytes: &[u8]) -> Option<RsaPrivateKey> {
    let rest = bytes.strip_prefix(b"HOST-PRIVATE-KEY:")?;
    if rest.len() < 16 {
        return None;
    }
    Some(RsaPrivateKey {
        n: u64::from_le_bytes(rest[0..8].try_into().ok()?),
        d: u64::from_le_bytes(rest[8..16].try_into().ok()?),
    })
}

/// The master-written slot naming the worker compartment of the connection
/// currently being served; the auth callgates escalate exactly that
/// compartment on success.
type WorkerSlot = Arc<Mutex<Option<CompartmentId>>>;

struct HostSignTrusted {
    host_key: SBuf,
}

struct PasswordTrusted {
    shadow: SBuf,
    worker: WorkerSlot,
}

struct PubkeyTrusted {
    authorized: SBuf,
    shadow: SBuf,
    worker: WorkerSlot,
}

struct SkeyTrusted {
    skey: SBuf,
    shadow: SBuf,
    worker: WorkerSlot,
    ledger: SkeyLedger,
}

/// Cross-server ledger of consumed one-time passwords, shared by every
/// monitor of a pooled front-end. Each `WedgeSsh` consumes OTPs in its own
/// tagged S/Key region; without a shared ledger, an OTP spent on one pooled
/// monitor would still be listed — and accepted — by its siblings. The
/// ledger is creator-held state inside the skey callgate's trusted argument
/// (the same pattern as the Apache session cache), so workers can neither
/// read nor tamper with it.
pub type SkeyLedger = Arc<Mutex<std::collections::HashSet<(String, String)>>>;

/// The Wedge-partitioned SSH server.
pub struct WedgeSsh {
    wedge: Wedge,
    host_public: RsaPublicKey,
    skey_ledger: SkeyLedger,
    host_key_tag: Tag,
    host_key_buf: SBuf,
    shadow_tag: Tag,
    shadow_buf: SBuf,
    skey_tag: Tag,
    skey_buf: SBuf,
    authorized_tag: Tag,
    authorized_buf: SBuf,
    worker_slot: WorkerSlot,
    gates: Gates,
}

#[derive(Clone, Copy)]
struct Gates {
    host_sign: CgEntryId,
    password_auth: CgEntryId,
    pubkey_auth: CgEntryId,
    skey_auth: CgEntryId,
}

impl WedgeSsh {
    /// Build the server: place every credential store in its own tagged
    /// region, publish the configuration and host public key as snapshot
    /// globals (the worker may read those), and register the callgates.
    pub fn new(
        wedge: Wedge,
        host_keypair: RsaKeyPair,
        db: &AuthDb,
        config: &ServerConfig,
    ) -> Result<WedgeSsh, WedgeError> {
        Self::with_skey_ledger(
            wedge,
            host_keypair,
            db,
            config,
            Arc::new(Mutex::new(std::collections::HashSet::new())),
        )
    }

    /// Like [`WedgeSsh::new`], but sharing a consumed-OTP [`SkeyLedger`]
    /// with other server instances (pooled front-ends pass one ledger to
    /// every monitor so one-time passwords stay one-time across the pool).
    pub fn with_skey_ledger(
        wedge: Wedge,
        host_keypair: RsaKeyPair,
        db: &AuthDb,
        config: &ServerConfig,
        skey_ledger: SkeyLedger,
    ) -> Result<WedgeSsh, WedgeError> {
        let root = wedge.root();
        let host_key_tag = root.tag_new()?;
        let host_key_buf =
            root.smalloc_init(host_key_tag, &serialize_private_key(&host_keypair))?;
        let shadow_tag = root.tag_new()?;
        let shadow_buf = root.smalloc_init(shadow_tag, &db.serialize_shadow())?;
        let skey_tag = root.tag_new()?;
        let skey_buf = root.smalloc_init(skey_tag, &db.serialize_skey())?;
        let authorized_tag = root.tag_new()?;
        let authorized_buf = root.smalloc_init(authorized_tag, &db.serialize_authorized())?;

        wedge
            .kernel()
            .register_global("sshd_config", &config.serialize());
        wedge.kernel().register_global(
            "host_public_key",
            format!("{},{}", host_keypair.public.n, host_keypair.public.e).as_bytes(),
        );

        let kernel = wedge.kernel();
        let gates = Gates {
            host_sign: kernel.cgate_register(
                "host_sign",
                typed_entry(|ctx: &SthreadCtx, trusted, data: Vec<u8>| {
                    let _f = ctx.trace_fn("host_sign");
                    let t = trusted
                        .and_then(|t| t.downcast::<HostSignTrusted>())
                        .ok_or(WedgeError::BadCallgateValue)?;
                    host_sign(ctx, t, &data)
                }),
            ),
            password_auth: kernel.cgate_register(
                "password_auth",
                typed_entry(|ctx: &SthreadCtx, trusted, input: (String, String)| {
                    let _f = ctx.trace_fn("password_auth");
                    let t = trusted
                        .and_then(|t| t.downcast::<PasswordTrusted>())
                        .ok_or(WedgeError::BadCallgateValue)?;
                    password_auth(ctx, t, &input.0, &input.1)
                }),
            ),
            pubkey_auth: kernel.cgate_register(
                "pubkey_auth",
                typed_entry(
                    |ctx: &SthreadCtx, trusted, input: (String, Vec<u8>, Vec<u8>)| {
                        let _f = ctx.trace_fn("pubkey_auth");
                        let t = trusted
                            .and_then(|t| t.downcast::<PubkeyTrusted>())
                            .ok_or(WedgeError::BadCallgateValue)?;
                        pubkey_auth(ctx, t, &input.0, &input.1, &input.2)
                    },
                ),
            ),
            skey_auth: kernel.cgate_register(
                "skey_auth",
                typed_entry(|ctx: &SthreadCtx, trusted, input: (String, String)| {
                    let _f = ctx.trace_fn("skey_auth");
                    let t = trusted
                        .and_then(|t| t.downcast::<SkeyTrusted>())
                        .ok_or(WedgeError::BadCallgateValue)?;
                    skey_auth(ctx, t, &input.0, &input.1)
                }),
            ),
        };

        Ok(WedgeSsh {
            wedge,
            host_public: host_keypair.public,
            skey_ledger,
            host_key_tag,
            host_key_buf,
            shadow_tag,
            shadow_buf,
            skey_tag,
            skey_buf,
            authorized_tag,
            authorized_buf,
            worker_slot: Arc::new(Mutex::new(None)),
            gates,
        })
    }

    /// The Wedge runtime backing the server.
    pub fn wedge(&self) -> &Wedge {
        &self.wedge
    }

    /// The host public key (what clients pin).
    pub fn host_public(&self) -> RsaPublicKey {
        self.host_public
    }

    /// The host private-key region (for attack tests).
    pub fn host_key_buf(&self) -> SBuf {
        self.host_key_buf
    }

    /// The shadow-file region (for attack tests).
    pub fn shadow_buf(&self) -> SBuf {
        self.shadow_buf
    }

    /// The worker sthread policy: unprivileged uid, empty filesystem root,
    /// no credential-store grants, and the four callgates. The host *public*
    /// key and the configuration are snapshot globals, readable by default.
    pub fn worker_policy(&self) -> SecurityPolicy {
        let mut host_gate = SecurityPolicy::deny_all();
        host_gate.sc_mem_add(self.host_key_tag, MemProt::Read);

        let mut password_gate = SecurityPolicy::deny_all();
        password_gate.sc_mem_add(self.shadow_tag, MemProt::Read);

        let mut pubkey_gate = SecurityPolicy::deny_all();
        pubkey_gate.sc_mem_add(self.authorized_tag, MemProt::Read);
        pubkey_gate.sc_mem_add(self.shadow_tag, MemProt::Read);

        let mut skey_gate = SecurityPolicy::deny_all();
        skey_gate.sc_mem_add(self.skey_tag, MemProt::ReadWrite);
        skey_gate.sc_mem_add(self.shadow_tag, MemProt::Read);

        let mut policy = SecurityPolicy::deny_all()
            .with_uid(UNPRIVILEGED_UID)
            .with_fs_root("/var/empty");
        policy.sc_cgate_add(
            self.gates.host_sign,
            host_gate,
            Some(TrustedArg::new(HostSignTrusted {
                host_key: self.host_key_buf,
            })),
        );
        policy.sc_cgate_add(
            self.gates.password_auth,
            password_gate,
            Some(TrustedArg::new(PasswordTrusted {
                shadow: self.shadow_buf,
                worker: self.worker_slot.clone(),
            })),
        );
        policy.sc_cgate_add(
            self.gates.pubkey_auth,
            pubkey_gate,
            Some(TrustedArg::new(PubkeyTrusted {
                authorized: self.authorized_buf,
                shadow: self.shadow_buf,
                worker: self.worker_slot.clone(),
            })),
        );
        policy.sc_cgate_add(
            self.gates.skey_auth,
            skey_gate,
            Some(TrustedArg::new(SkeyTrusted {
                skey: self.skey_buf,
                shadow: self.shadow_buf,
                worker: self.worker_slot.clone(),
                ledger: self.skey_ledger.clone(),
            })),
        );
        policy
    }

    /// Serve one connection on a fresh worker sthread.
    pub fn serve_connection(
        &self,
        link: Duplex,
    ) -> Result<SthreadHandle<SessionReport>, WedgeError> {
        let policy = self.worker_policy();
        let gates = self.gates;
        let handle = self
            .wedge
            .root()
            .sthread_create("ssh-worker", &policy, move |ctx| {
                worker_main(ctx, &link, gates)
            })?;
        // Tell the auth callgates which compartment to escalate on success.
        *self.worker_slot.lock() = Some(handle.id());
        Ok(handle)
    }
}

// ---------------------------------------------------------------------
// Callgate bodies
// ---------------------------------------------------------------------

fn host_sign(
    ctx: &SthreadCtx,
    trusted: &HostSignTrusted,
    data: &[u8],
) -> Result<Vec<u8>, WedgeError> {
    let key_bytes = ctx.read_all(&trusted.host_key)?;
    let Some(private) = parse_private_key(&key_bytes) else {
        return Err(WedgeError::BadCallgateValue);
    };
    // The callgate signs only a hash it computes itself, so the worker
    // cannot use it as a decryption oracle for arbitrary ciphertext.
    Ok(private.sign_digest(&sha256(data)))
}

fn escalate_worker(ctx: &SthreadCtx, worker: &WorkerSlot, uid: u32, home: &str) {
    if let Some(worker_id) = *worker.lock() {
        // The callgate inherits its creator's root uid, so this succeeds;
        // the worker itself could never make this transition.
        let _ = ctx.transition_identity(worker_id, Uid(uid), Some(home));
    }
}

fn password_auth(
    ctx: &SthreadCtx,
    trusted: &PasswordTrusted,
    user: &str,
    password: &str,
) -> Result<AuthVerdict, WedgeError> {
    let config = ServerConfig::parse(&ctx.global_read("sshd_config")?).unwrap_or_default();
    if !config.allow_password || (password.is_empty() && !config.permit_empty_passwords) {
        return Ok(AuthVerdict::denied());
    }
    let shadow = AuthDb::parse_shadow(&ctx.read_all(&trusted.shadow)?);
    // Unknown users take the same code path against a dummy entry, so the
    // caller cannot probe for valid usernames.
    match AuthDb::check_password(&shadow, user, password) {
        Some((uid, home)) => {
            escalate_worker(ctx, &trusted.worker, uid, &home);
            Ok(AuthVerdict {
                success: true,
                uid,
                detail: "ok".to_string(),
            })
        }
        None => Ok(AuthVerdict::denied()),
    }
}

fn pubkey_auth(
    ctx: &SthreadCtx,
    trusted: &PubkeyTrusted,
    user: &str,
    signature: &[u8],
    nonce: &[u8],
) -> Result<AuthVerdict, WedgeError> {
    let authorized = AuthDb::parse_authorized(&ctx.read_all(&trusted.authorized)?);
    let shadow = AuthDb::parse_shadow(&ctx.read_all(&trusted.shadow)?);
    let mut challenge = user.as_bytes().to_vec();
    challenge.extend_from_slice(nonce);
    let digest = sha256(&challenge);
    let valid = authorized
        .get(user)
        .map(|keys| {
            keys.iter()
                .any(|k| k.verify_digest(&digest, signature).is_ok())
        })
        .unwrap_or(false);
    if !valid {
        return Ok(AuthVerdict::denied());
    }
    match shadow.iter().find(|e| e.user == user) {
        Some(entry) => {
            escalate_worker(ctx, &trusted.worker, entry.uid, &entry.home);
            Ok(AuthVerdict {
                success: true,
                uid: entry.uid,
                detail: "ok".to_string(),
            })
        }
        None => Ok(AuthVerdict::denied()),
    }
}

fn skey_auth(
    ctx: &SthreadCtx,
    trusted: &SkeyTrusted,
    user: &str,
    otp: &str,
) -> Result<AuthVerdict, WedgeError> {
    let mut skey = AuthDb::parse_skey(&ctx.read_all(&trusted.skey)?);
    let shadow = AuthDb::parse_shadow(&ctx.read_all(&trusted.shadow)?);
    let Some(remaining) = skey.get_mut(user) else {
        // Same failure result whether or not the user has an S/Key entry —
        // the fix for the S/Key information-disclosure CVE the paper cites.
        return Ok(AuthVerdict::denied());
    };
    let Some(position) = remaining.iter().position(|candidate| candidate == otp) else {
        return Ok(AuthVerdict::denied());
    };
    // One-time passwords are consumed on use — both in this server's tagged
    // store and in the cross-server ledger, so a pooled sibling monitor
    // (whose own store still lists the OTP) also refuses a replay.
    {
        let mut ledger = trusted.ledger.lock();
        if !ledger.insert((user.to_string(), otp.to_string())) {
            return Ok(AuthVerdict::denied());
        }
    }
    remaining.remove(position);
    let mut serialized = String::new();
    for (u, otps) in &skey {
        serialized.push_str(&format!("{u}:{}\n", otps.join(",")));
    }
    let serialized = serialized.into_bytes();
    let mut padded = serialized.clone();
    padded.resize(trusted.skey.len, b'\n');
    ctx.write(&trusted.skey, 0, &padded)?;

    match shadow.iter().find(|e| e.user == user) {
        Some(entry) => {
            escalate_worker(ctx, &trusted.worker, entry.uid, &entry.home);
            Ok(AuthVerdict {
                success: true,
                uid: entry.uid,
                detail: "ok".to_string(),
            })
        }
        None => Ok(AuthVerdict::denied()),
    }
}

// ---------------------------------------------------------------------
// The unprivileged worker
// ---------------------------------------------------------------------

fn worker_main(ctx: &SthreadCtx, link: &Duplex, gates: Gates) -> SessionReport {
    let _frame = ctx.trace_fn("ssh_worker");
    let mut report = SessionReport::default();
    let no_extra = SecurityPolicy::deny_all();

    let Ok(first) = link.recv(RecvTimeout::After(SESSION_TIMEOUT)) else {
        return report;
    };
    if !matches!(
        ClientMessage::decode(&first),
        Some(ClientMessage::Hello { .. })
    ) {
        return report;
    }

    // The worker may read the configuration and the host *public* key (both
    // snapshot globals); the private key stays behind the host_sign gate.
    let config = ctx
        .global_read("sshd_config")
        .ok()
        .and_then(|b| ServerConfig::parse(&b))
        .unwrap_or_default();
    let host_key = ctx
        .global_read("host_public_key")
        .ok()
        .and_then(|b| {
            let text = String::from_utf8_lossy(&b).to_string();
            let (n, e) = text.split_once(',')?;
            Some(RsaPublicKey {
                n: n.parse().ok()?,
                e: e.parse().ok()?,
            })
        })
        .unwrap_or(RsaPublicKey { n: 0, e: 0 });

    let mut rng = WedgeRng::from_entropy();
    let nonce = rng.bytes(32);
    let host_proof = ctx
        .cgate_expect::<Vec<u8>>(gates.host_sign, &no_extra, Box::new(nonce.clone()))
        .unwrap_or_default();
    let hello = ServerMessage::Hello {
        version: config.version_banner.clone(),
        host_key,
        host_proof,
        nonce: nonce.clone(),
    };
    if link.send(&hello.encode()).is_err() {
        return report;
    }

    while let Ok(raw) = link.recv(RecvTimeout::After(SESSION_TIMEOUT)) {
        let Some(message) = ClientMessage::decode(&raw) else {
            continue;
        };
        match message {
            ClientMessage::Hello { .. } => {}
            ClientMessage::AuthPassword { user, password } => {
                let verdict = ctx
                    .cgate_expect::<AuthVerdict>(
                        gates.password_auth,
                        &no_extra,
                        Box::new((user, password)),
                    )
                    .unwrap_or_else(|_| AuthVerdict::denied());
                report.authenticated |= verdict.success;
                report.uid = verdict.uid.max(report.uid);
                let _ = link.send(
                    &ServerMessage::AuthResult {
                        success: verdict.success,
                        uid: verdict.uid,
                        detail: verdict.detail,
                    }
                    .encode(),
                );
            }
            ClientMessage::AuthPubkey { user, signature } => {
                let verdict = ctx
                    .cgate_expect::<AuthVerdict>(
                        gates.pubkey_auth,
                        &no_extra,
                        Box::new((user, signature, nonce.clone())),
                    )
                    .unwrap_or_else(|_| AuthVerdict::denied());
                report.authenticated |= verdict.success;
                report.uid = verdict.uid.max(report.uid);
                let _ = link.send(
                    &ServerMessage::AuthResult {
                        success: verdict.success,
                        uid: verdict.uid,
                        detail: verdict.detail,
                    }
                    .encode(),
                );
            }
            ClientMessage::AuthSkey { user, otp } => {
                let verdict = ctx
                    .cgate_expect::<AuthVerdict>(gates.skey_auth, &no_extra, Box::new((user, otp)))
                    .unwrap_or_else(|_| AuthVerdict::denied());
                report.authenticated |= verdict.success;
                report.uid = verdict.uid.max(report.uid);
                let _ = link.send(
                    &ServerMessage::AuthResult {
                        success: verdict.success,
                        uid: verdict.uid,
                        detail: verdict.detail,
                    }
                    .encode(),
                );
            }
            ClientMessage::Exec { command } => {
                // The session's privileges follow the worker's *actual* uid,
                // which only an authentication callgate can have changed.
                let output = if !ctx.uid().is_root() && ctx.uid() != UNPRIVILEGED_UID {
                    report.commands += 1;
                    run_command(ctx, &command)
                } else {
                    "permission denied".to_string()
                };
                let _ = link.send(&ServerMessage::ExecOutput { output }.encode());
            }
            ClientMessage::ScpChunk { data, last } => {
                if ctx.uid() != UNPRIVILEGED_UID {
                    report.scp_bytes += data.len() as u64;
                }
                let _ = link.send(
                    &ServerMessage::ScpAck {
                        received: report.scp_bytes,
                    }
                    .encode(),
                );
                if last && report.scp_bytes == 0 {
                    // Unauthenticated upload attempts end the session.
                    break;
                }
            }
            ClientMessage::Disconnect => {
                let _ = link.send(&ServerMessage::Goodbye.encode());
                break;
            }
        }
    }
    report
}

fn run_command(ctx: &SthreadCtx, command: &str) -> String {
    match command.split_once(' ') {
        Some(("echo", rest)) => rest.to_string(),
        _ if command == "whoami" => format!("uid={} root={}", ctx.uid().0, ctx.policy().fs_root),
        _ => format!("unknown command: {command}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::SshClient;
    use wedge_core::Exploit;
    use wedge_net::duplex_pair;

    fn server() -> WedgeSsh {
        let keypair = RsaKeyPair::generate(&mut WedgeRng::from_seed(1));
        WedgeSsh::new(
            Wedge::init(),
            keypair,
            &AuthDb::sample(),
            &ServerConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn password_login_and_exec() {
        let server = server();
        let (client_link, server_link) = duplex_pair("client", "sshd");
        let handle = server.serve_connection(server_link).unwrap();
        let mut client = SshClient::new();
        let hello = client.connect(&client_link).unwrap();
        assert!(hello.host_proof_valid);
        let auth = client
            .auth_password(&client_link, "alice", "correct horse battery")
            .unwrap();
        assert!(auth.0);
        assert_eq!(auth.1, 1001);
        let out = client.exec(&client_link, "whoami").unwrap();
        assert!(out.contains("uid=1001"));
        assert!(out.contains("/home/alice"));
        client.disconnect(&client_link).unwrap();
        let report = handle.join().unwrap();
        assert!(report.authenticated);
        assert_eq!(report.uid, 1001);
    }

    #[test]
    fn wrong_password_and_unknown_user_are_indistinguishable() {
        let server = server();
        let (client_link, server_link) = duplex_pair("client", "sshd");
        let handle = server.serve_connection(server_link).unwrap();
        let mut client = SshClient::new();
        client.connect(&client_link).unwrap();
        let wrong = client
            .auth_password(&client_link, "alice", "wrong")
            .unwrap();
        let unknown = client
            .auth_password(&client_link, "mallory", "wrong")
            .unwrap();
        assert!(!wrong.0 && !unknown.0);
        assert_eq!(
            wrong.2, unknown.2,
            "failure detail must not reveal user validity"
        );
        // Unauthenticated exec is refused.
        let out = client.exec(&client_link, "echo hi").unwrap();
        assert_eq!(out, "permission denied");
        client.disconnect(&client_link).unwrap();
        let report = handle.join().unwrap();
        assert!(!report.authenticated);
    }

    #[test]
    fn skey_otp_is_single_use() {
        let server = server();
        for (round, expect) in [(0, true), (1, false)] {
            let (client_link, server_link) = duplex_pair("client", "sshd");
            let handle = server.serve_connection(server_link).unwrap();
            let mut client = SshClient::new();
            client.connect(&client_link).unwrap();
            let result = client.auth_skey(&client_link, "alice", "otp-one").unwrap();
            assert_eq!(result.0, expect, "round {round}");
            client.disconnect(&client_link).unwrap();
            handle.join().unwrap();
        }
    }

    #[test]
    fn pubkey_login_works_and_bad_signature_fails() {
        let keypair = RsaKeyPair::generate(&mut WedgeRng::from_seed(2));
        let user_key = RsaKeyPair::generate(&mut WedgeRng::from_seed(3));
        let mut db = AuthDb::sample();
        db.add_authorized_key("alice", user_key.public);
        let server = WedgeSsh::new(Wedge::init(), keypair, &db, &ServerConfig::default()).unwrap();

        let (client_link, server_link) = duplex_pair("client", "sshd");
        let handle = server.serve_connection(server_link).unwrap();
        let mut client = SshClient::new();
        client.connect(&client_link).unwrap();
        let ok = client
            .auth_pubkey(&client_link, "alice", &user_key.private)
            .unwrap();
        assert!(ok.0);
        client.disconnect(&client_link).unwrap();
        handle.join().unwrap();

        // A different key is rejected.
        let intruder_key = RsaKeyPair::generate(&mut WedgeRng::from_seed(4));
        let (client_link, server_link) = duplex_pair("client", "sshd");
        let handle = server.serve_connection(server_link).unwrap();
        let mut client = SshClient::new();
        client.connect(&client_link).unwrap();
        let bad = client
            .auth_pubkey(&client_link, "alice", &intruder_key.private)
            .unwrap();
        assert!(!bad.0);
        client.disconnect(&client_link).unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn exploited_worker_cannot_read_credentials_or_escalate() {
        let server = server();
        let policy = server.worker_policy();
        let host_key_buf = server.host_key_buf();
        let shadow_buf = server.shadow_buf();
        let handle = server
            .wedge()
            .root()
            .sthread_create("exploited-worker", &policy, move |ctx| {
                let mut exploit = Exploit::seize(ctx);
                let key = exploit.try_read(&host_key_buf);
                let shadow = exploit.try_read(&shadow_buf);
                // Attempting to grant itself the uid of a real user fails:
                // the worker is not root.
                let escalate = ctx.transition_identity(ctx.id(), Uid(0), None);
                (key.is_err(), shadow.is_err(), escalate.is_err(), ctx.uid())
            })
            .unwrap();
        let (key_denied, shadow_denied, escalate_denied, uid) = handle.join().unwrap();
        assert!(key_denied, "host private key must be unreachable");
        assert!(shadow_denied, "shadow file must be unreachable");
        assert!(escalate_denied, "worker cannot change its own uid");
        assert_eq!(uid, UNPRIVILEGED_UID);
    }
}
