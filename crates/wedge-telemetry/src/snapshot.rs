//! [`TelemetrySnapshot`] — the point-in-time aggregation of every
//! registered metric and collector into one sorted tree, renderable as
//! JSON (for CI artifacts) or human-readable text (for examples and
//! operator consoles).

use std::collections::BTreeMap;

use crate::export::JsonWriter;
use crate::metrics::{format_nanos, HistogramSummary};

/// One aggregated metric value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricValue {
    /// A monotonic count.
    Counter(u64),
    /// An instantaneous value.
    Gauge(u64),
    /// A latency distribution summary.
    Histogram(HistogramSummary),
}

/// A point-in-time aggregation of the whole registry, sorted by metric
/// name. Dots in names form the tree: `listener.accept`,
/// `shard.serve`, `cachenet.lookup.remote`, ...
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    pub(crate) values: BTreeMap<String, MetricValue>,
}

impl TelemetrySnapshot {
    /// The value registered under `name`, if any.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.values.get(name)
    }

    /// The scalar (counter or gauge) under `name`; 0 when absent. The
    /// forgiving accessor acceptance tests lean on.
    pub fn counter(&self, name: &str) -> u64 {
        match self.values.get(name) {
            Some(MetricValue::Counter(v)) | Some(MetricValue::Gauge(v)) => *v,
            _ => 0,
        }
    }

    /// The histogram summary under `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        match self.values.get(name) {
            Some(MetricValue::Histogram(summary)) => Some(summary),
            _ => None,
        }
    }

    /// Iterate `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.values.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of metrics in the snapshot.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the snapshot holds no metrics at all.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Render as one flat JSON object keyed by full metric name. Flat
    /// (rather than nested by dot-segment) because a name may be both a
    /// leaf and a prefix — `cachenet.lookup` is a histogram *and* the
    /// parent of `cachenet.lookup.remote`.
    pub fn to_json(&self) -> String {
        let mut root = JsonWriter::object();
        root.nested("telemetry", |w| {
            for (name, value) in &self.values {
                match value {
                    MetricValue::Counter(v) | MetricValue::Gauge(v) => w.field_u64(name, *v),
                    MetricValue::Histogram(s) => w.nested(name, |w| {
                        w.field_u64("count", s.count);
                        w.field_u64("p50_ns", s.p50_nanos);
                        w.field_u64("p99_ns", s.p99_nanos);
                        w.field_u64("p999_ns", s.p999_nanos);
                        w.field_u64("max_ns", s.max_nanos);
                        w.field_u64("mean_ns", s.mean_nanos());
                    }),
                }
            }
        });
        root.finish()
    }

    /// Render as indented text, grouped by the first dot-segment:
    ///
    /// ```text
    /// listener
    ///   accept                    60
    ///   refused                    2
    /// shard
    ///   serve                     count=60 p50=1.2ms p99=3.4ms p999=3.9ms max=4.1ms
    /// ```
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let mut group = "";
        for (name, value) in &self.values {
            let (head, rest) = name
                .split_once('.')
                .unwrap_or((name.as_str(), name.as_str()));
            if head != group {
                group = head;
                out.push_str(head);
                out.push('\n');
            }
            let rendered = match value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => v.to_string(),
                MetricValue::Histogram(s) => format!(
                    "count={} p50={} p99={} p999={} max={}",
                    s.count,
                    format_nanos(s.p50_nanos),
                    format_nanos(s.p99_nanos),
                    format_nanos(s.p999_nanos),
                    format_nanos(s.max_nanos),
                ),
            };
            out.push_str(&format!("  {:<28} {}\n", rest, rendered));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Telemetry;

    fn sample_snapshot() -> TelemetrySnapshot {
        let telemetry = Telemetry::new();
        telemetry.counter("listener.accept").add(60);
        telemetry.counter("listener.refused").add(2);
        telemetry.gauge("shard.queue_depth").set(3);
        let h = telemetry.histogram("cachenet.lookup");
        for i in 1..=100u64 {
            h.record(i * 10_000);
        }
        telemetry
            .histogram("cachenet.lookup.remote")
            .record(123_456);
        telemetry.snapshot()
    }

    #[test]
    fn json_is_flat_well_formed_and_complete() {
        let json = sample_snapshot().to_json();
        assert!(json.starts_with(r#"{"telemetry":{"#));
        assert!(json.contains(r#""listener.accept":60"#));
        assert!(json.contains(r#""cachenet.lookup":{"count":100,"#));
        assert!(json.contains(r#""cachenet.lookup.remote":{"count":1,"#));
        assert!(json.contains(r#""p999_ns":"#));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn text_groups_by_first_segment() {
        let text = sample_snapshot().to_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "cachenet");
        assert!(lines[1].trim_start().starts_with("lookup"));
        assert!(text.contains("listener\n"));
        assert!(text.contains("p999="));
    }

    #[test]
    fn accessors_are_forgiving() {
        let snapshot = sample_snapshot();
        assert_eq!(snapshot.counter("listener.accept"), 60);
        assert_eq!(snapshot.counter("no.such.metric"), 0);
        assert!(snapshot.histogram("listener.accept").is_none());
        assert_eq!(snapshot.histogram("cachenet.lookup").unwrap().count, 100);
        assert!(!snapshot.is_empty());
        assert_eq!(snapshot.len(), 5);
    }
}
