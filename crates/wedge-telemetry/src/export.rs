//! The hand-rolled JSON writer (the offline build has no serde), with
//! correct string escaping — shared by [`crate::TelemetrySnapshot::to_json`]
//! and by `wedge_bench::report`'s `BENCH_*.json` artifact emitters, which
//! previously each rolled their own (inconsistently escaped) emitter.

/// Escape `s` for inclusion inside a JSON string literal (quotes not
/// included).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A minimal streaming JSON object/array writer.
///
/// ```
/// use wedge_telemetry::JsonWriter;
/// let mut w = JsonWriter::object();
/// w.field_str("bench", "listener");
/// w.field_u64("shards", 4);
/// w.nested("speedup", |w| w.field_f64("vs_single", 3.25));
/// assert_eq!(
///     w.finish(),
///     r#"{"bench":"listener","shards":4,"speedup":{"vs_single":3.25}}"#
/// );
/// ```
#[derive(Debug)]
pub struct JsonWriter {
    buf: String,
    first: bool,
}

impl JsonWriter {
    /// Start a top-level object.
    pub fn object() -> JsonWriter {
        JsonWriter {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, name: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        self.buf.push_str(&escape_json(name));
        self.buf.push_str("\":");
    }

    /// A string field (escaped).
    pub fn field_str(&mut self, name: &str, value: &str) {
        self.key(name);
        self.buf.push('"');
        self.buf.push_str(&escape_json(value));
        self.buf.push('"');
    }

    /// An unsigned integer field.
    pub fn field_u64(&mut self, name: &str, value: u64) {
        self.key(name);
        self.buf.push_str(&value.to_string());
    }

    /// A float field, rendered with enough precision to round-trip the
    /// interesting range (JSON has no NaN/Inf: they render as `null`).
    pub fn field_f64(&mut self, name: &str, value: f64) {
        self.key(name);
        if value.is_finite() {
            self.buf.push_str(&format!("{value}"));
        } else {
            self.buf.push_str("null");
        }
    }

    /// A boolean field.
    pub fn field_bool(&mut self, name: &str, value: bool) {
        self.key(name);
        self.buf.push_str(if value { "true" } else { "false" });
    }

    /// A nested object field, built by `fill`.
    pub fn nested(&mut self, name: &str, fill: impl FnOnce(&mut JsonWriter)) {
        self.key(name);
        let mut inner = JsonWriter::object();
        fill(&mut inner);
        self.buf.push_str(&inner.finish());
    }

    /// An array field, built by `fill` (empty `fill` renders `[]`).
    pub fn field_arr(&mut self, name: &str, fill: impl FnOnce(&mut JsonArrayWriter)) {
        self.key(name);
        let mut arr = JsonArrayWriter {
            buf: String::from("["),
            first: true,
        };
        fill(&mut arr);
        arr.buf.push(']');
        self.buf.push_str(&arr.buf);
    }

    /// Close the object and return the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// The array half of [`JsonWriter`]: append items inside a
/// [`JsonWriter::field_arr`] callback.
#[derive(Debug)]
pub struct JsonArrayWriter {
    buf: String,
    first: bool,
}

impl JsonArrayWriter {
    fn sep(&mut self) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
    }

    /// Append an object item, built by `fill`.
    pub fn item_obj(&mut self, fill: impl FnOnce(&mut JsonWriter)) {
        self.sep();
        let mut inner = JsonWriter::object();
        fill(&mut inner);
        self.buf.push_str(&inner.finish());
    }

    /// Append a string item (escaped).
    pub fn item_str(&mut self, value: &str) {
        self.sep();
        self.buf.push('"');
        self.buf.push_str(&escape_json(value));
        self.buf.push('"');
    }

    /// Append an unsigned integer item.
    pub fn item_u64(&mut self, value: u64) {
        self.sep();
        self.buf.push_str(&value.to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_quotes_backslashes_and_control_chars() {
        assert_eq!(escape_json(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(escape_json("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
        assert_eq!(escape_json("plain µs"), "plain µs");
    }

    #[test]
    fn writer_produces_well_formed_nested_objects() {
        let mut w = JsonWriter::object();
        w.field_str("name", "needs \"escaping\"");
        w.field_u64("n", 42);
        w.field_bool("ok", true);
        w.field_f64("ratio", 2.5);
        w.field_f64("bad", f64::NAN);
        w.nested("inner", |w| {
            w.field_u64("x", 1);
            w.field_u64("y", 2);
        });
        let json = w.finish();
        assert_eq!(
            json,
            r#"{"name":"needs \"escaping\"","n":42,"ok":true,"ratio":2.5,"bad":null,"inner":{"x":1,"y":2}}"#
        );
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
    }

    #[test]
    fn empty_object() {
        assert_eq!(JsonWriter::object().finish(), "{}");
    }

    #[test]
    fn arrays_of_scalars_and_objects() {
        let mut w = JsonWriter::object();
        w.field_arr("empty", |_| {});
        w.field_arr("nums", |a| {
            a.item_u64(1);
            a.item_u64(2);
        });
        w.field_arr("mixed", |a| {
            a.item_str("a\"b");
            a.item_obj(|w| w.field_u64("x", 7));
        });
        assert_eq!(
            w.finish(),
            r#"{"empty":[],"nums":[1,2],"mixed":["a\"b",{"x":7}]}"#
        );
    }
}
