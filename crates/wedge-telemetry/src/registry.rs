//! [`Telemetry`]: the cloneable handle tying the registry, the sink gate
//! and the snapshot collectors together.
//!
//! Two ways for a layer to publish metrics:
//!
//! 1. **Live handles** — `telemetry.counter("tls.handshake.full")` /
//!    `.histogram("shard.serve")` hand out cheap `Arc`-backed handles that
//!    the hot path bumps directly. Registration takes the registry lock
//!    once; recording never does.
//! 2. **Collectors** — layers that already maintain their own `*Stats`
//!    structs (listener, scheduler, cachenet, kernel) register a closure
//!    that *pulls* those counters into a [`Sample`] when a snapshot is
//!    taken. The data path is completely untouched; samples from multiple
//!    collectors merge additively (counters/gauges add, peaks take max),
//!    so e.g. every shard kernel contributes to one `kernel.read` total.
//!
//! Collectors should capture `Weak` references to the component they read:
//! the component holds the `Telemetry` handle, and a strong capture would
//! cycle.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::metrics::{Counter, Gauge, Histogram};
use crate::sink::{TelemetryEvent, TelemetrySink};
use crate::snapshot::{MetricValue, TelemetrySnapshot};
use crate::trace::Tracer;

/// A live registered metric.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

type Collector = Box<dyn Fn(&mut Sample) + Send + Sync>;

struct Inner {
    metrics: Mutex<BTreeMap<String, Metric>>,
    collectors: Mutex<Vec<Collector>>,
    sink: RwLock<Option<Arc<dyn TelemetrySink>>>,
    sink_on: AtomicBool,
    tracer: RwLock<Option<Arc<Tracer>>>,
    tracer_on: AtomicBool,
}

/// The shared telemetry handle. Cloning is an `Arc` bump; every layer of a
/// serving stack holds a clone of the same handle so one
/// [`Telemetry::snapshot`] sees them all.
#[derive(Clone)]
pub struct Telemetry {
    inner: Arc<Inner>,
}

impl Default for Telemetry {
    fn default() -> Telemetry {
        Telemetry::new()
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("metrics", &self.inner.metrics.lock().len())
            .field("collectors", &self.inner.collectors.lock().len())
            .field("sink_on", &self.inner.sink_on.load(Ordering::Relaxed))
            .finish()
    }
}

impl Telemetry {
    /// A fresh registry with no metrics, collectors or sink.
    pub fn new() -> Telemetry {
        Telemetry {
            inner: Arc::new(Inner {
                metrics: Mutex::new(BTreeMap::new()),
                collectors: Mutex::new(Vec::new()),
                sink: RwLock::new(None),
                sink_on: AtomicBool::new(false),
                tracer: RwLock::new(None),
                tracer_on: AtomicBool::new(false),
            }),
        }
    }

    /// The counter registered under `name`, creating it on first use.
    /// Repeated calls return handles to the same underlying atomic.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        let mut metrics = self.inner.metrics.lock();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::new()))
        {
            Metric::Counter(counter) => counter.clone(),
            _ => panic!("telemetry metric {name:?} already registered with another kind"),
        }
    }

    /// The gauge registered under `name`, creating it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut metrics = self.inner.metrics.lock();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::new()))
        {
            Metric::Gauge(gauge) => gauge.clone(),
            _ => panic!("telemetry metric {name:?} already registered with another kind"),
        }
    }

    /// The histogram registered under `name`, creating it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut metrics = self.inner.metrics.lock();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new()))
        {
            Metric::Histogram(histogram) => histogram.clone(),
            _ => panic!("telemetry metric {name:?} already registered with another kind"),
        }
    }

    /// Register a pull collector, run (in registration order) each time a
    /// snapshot is taken. Capture the observed component weakly.
    pub fn register_collector(&self, collector: impl Fn(&mut Sample) + Send + Sync + 'static) {
        self.inner.collectors.lock().push(Box::new(collector));
    }

    /// Install `sink` and enable event emission. Replaces any prior sink.
    pub fn install_sink(&self, sink: Arc<dyn TelemetrySink>) {
        *self.inner.sink.write() = Some(sink);
        self.inner.sink_on.store(true, Ordering::SeqCst);
    }

    /// Remove the sink; emission reverts to a single relaxed load.
    pub fn clear_sink(&self) {
        self.inner.sink_on.store(false, Ordering::SeqCst);
        *self.inner.sink.write() = None;
    }

    /// Whether a sink is installed (one relaxed load — the gate the hot
    /// paths use).
    #[inline]
    pub fn sink_enabled(&self) -> bool {
        self.inner.sink_on.load(Ordering::Relaxed)
    }

    /// Install `tracer` and enable request tracing: its counters and
    /// per-kind `trace.*` histograms are registered here, and layers that
    /// ask via [`Telemetry::tracer`] start minting contexts. Replaces any
    /// prior tracer (metrics stay bound to the first registry a tracer
    /// was installed on).
    pub fn install_tracer(&self, tracer: Arc<Tracer>) {
        tracer.bind(self);
        *self.inner.tracer.write() = Some(tracer);
        self.inner.tracer_on.store(true, Ordering::SeqCst);
    }

    /// Remove the tracer; [`Telemetry::tracer`] reverts to a single
    /// relaxed load returning `None`.
    pub fn clear_tracer(&self) {
        self.inner.tracer_on.store(false, Ordering::SeqCst);
        *self.inner.tracer.write() = None;
    }

    /// The installed tracer, if any. The untraced path is a single
    /// relaxed load — the same contract as [`Telemetry::emit_with`].
    #[inline]
    pub fn tracer(&self) -> Option<Arc<Tracer>> {
        if !self.inner.tracer_on.load(Ordering::Relaxed) {
            return None;
        }
        self.inner.tracer.read().clone()
    }

    /// Emit an already-built event. Prefer [`Telemetry::emit_with`] on hot
    /// paths so the payload is only built when a sink is listening.
    pub fn emit(&self, event: &TelemetryEvent) {
        if !self.sink_enabled() {
            return;
        }
        if let Some(sink) = self.inner.sink.read().as_ref() {
            sink.on_event(event);
        }
    }

    /// Emit the event built by `make` — but only construct it if a sink is
    /// installed. The disabled path is a single relaxed load.
    #[inline]
    pub fn emit_with(&self, make: impl FnOnce() -> TelemetryEvent) {
        if !self.sink_enabled() {
            return;
        }
        self.emit(&make());
    }

    /// Aggregate every live metric and every collector's pulled counters
    /// into one point-in-time snapshot.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut sample = Sample::default();
        // Collectors run without the metrics lock held: they are allowed
        // to create metrics (rarely useful, but not a deadlock).
        let collectors = self.inner.collectors.lock();
        for collector in collectors.iter() {
            collector(&mut sample);
        }
        drop(collectors);
        let mut values = sample.values;
        for (name, metric) in self.inner.metrics.lock().iter() {
            let value = match metric {
                Metric::Counter(counter) => MetricValue::Counter(counter.get()),
                Metric::Gauge(gauge) => MetricValue::Gauge(gauge.get()),
                Metric::Histogram(histogram) => MetricValue::Histogram(histogram.summary()),
            };
            merge(&mut values, name.clone(), value);
        }
        TelemetrySnapshot { values }
    }
}

/// Merge `value` into `values` under `name`: counters and gauges add (two
/// layers may legitimately report into the same total), anything else is
/// replaced by the later writer.
fn merge(values: &mut BTreeMap<String, MetricValue>, name: String, value: MetricValue) {
    let merged = match (values.get(&name), value) {
        (Some(MetricValue::Counter(a)), MetricValue::Counter(b)) => MetricValue::Counter(a + b),
        (Some(MetricValue::Gauge(a)), MetricValue::Gauge(b)) => MetricValue::Gauge(a + b),
        (_, value) => value,
    };
    values.insert(name, merged);
}

/// The accumulation a collector writes into. Values merge additively
/// across collectors so independent instances (shards, kernels, nodes)
/// report into shared totals.
#[derive(Debug, Default)]
pub struct Sample {
    values: BTreeMap<String, MetricValue>,
}

impl Sample {
    /// Add `v` to the counter `name`.
    pub fn counter(&mut self, name: &str, v: u64) {
        merge(&mut self.values, name.to_string(), MetricValue::Counter(v));
    }

    /// Add `v` to the gauge `name` (instantaneous values sum across
    /// instances: total queue depth, total resident sessions, ...).
    pub fn gauge(&mut self, name: &str, v: u64) {
        merge(&mut self.values, name.to_string(), MetricValue::Gauge(v));
    }

    /// Raise the gauge `name` to `v` if higher (peaks take the max across
    /// instances rather than summing).
    pub fn gauge_max(&mut self, name: &str, v: u64) {
        let peak = match self.values.get(name) {
            Some(MetricValue::Gauge(current)) => (*current).max(v),
            _ => v,
        };
        self.values
            .insert(name.to_string(), MetricValue::Gauge(peak));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{CountingTelemetrySink, RecordingSink};

    #[test]
    fn handles_are_shared_and_snapshot_sees_them() {
        let telemetry = Telemetry::new();
        telemetry.counter("listener.accept").add(3);
        telemetry.counter("listener.accept").add(4);
        telemetry.gauge("shard.queue_depth").set(5);
        telemetry.histogram("shard.serve").record(1_000);
        let snapshot = telemetry.snapshot();
        assert_eq!(snapshot.counter("listener.accept"), 7);
        assert_eq!(snapshot.counter("shard.queue_depth"), 5);
        assert_eq!(snapshot.histogram("shard.serve").unwrap().count, 1);
    }

    #[test]
    #[should_panic(expected = "another kind")]
    fn kind_mismatch_panics() {
        let telemetry = Telemetry::new();
        telemetry.counter("x");
        telemetry.gauge("x");
    }

    #[test]
    fn collectors_merge_additively() {
        let telemetry = Telemetry::new();
        for shard in 0..3u64 {
            telemetry.register_collector(move |sample| {
                sample.counter("kernel.read", 10 + shard);
                sample.gauge_max("shard.queue_depth.peak", shard);
            });
        }
        let snapshot = telemetry.snapshot();
        assert_eq!(snapshot.counter("kernel.read"), 33);
        assert_eq!(snapshot.counter("shard.queue_depth.peak"), 2);
    }

    #[test]
    fn live_metric_and_collector_share_a_total() {
        let telemetry = Telemetry::new();
        telemetry.counter("tls.handshake.full").add(2);
        telemetry.register_collector(|sample| sample.counter("tls.handshake.full", 5));
        assert_eq!(telemetry.snapshot().counter("tls.handshake.full"), 7);
    }

    #[test]
    fn disabled_sink_never_builds_the_event() {
        let telemetry = Telemetry::new();
        let built = std::sync::atomic::AtomicU64::new(0);
        telemetry.emit_with(|| {
            built.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            TelemetryEvent::PlacementRejected
        });
        assert_eq!(built.load(std::sync::atomic::Ordering::Relaxed), 0);

        let sink = Arc::new(CountingTelemetrySink::default());
        telemetry.install_sink(sink.clone());
        telemetry.emit_with(|| {
            built.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            TelemetryEvent::PlacementRejected
        });
        assert_eq!(built.load(std::sync::atomic::Ordering::Relaxed), 1);
        assert_eq!(sink.total(), 1);

        telemetry.clear_sink();
        telemetry.emit_with(|| {
            built.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            TelemetryEvent::PlacementRejected
        });
        assert_eq!(built.load(std::sync::atomic::Ordering::Relaxed), 1);
    }

    #[test]
    fn recording_sink_retains_events() {
        let telemetry = Telemetry::new();
        let sink = Arc::new(RecordingSink::default());
        telemetry.install_sink(sink.clone());
        telemetry.emit(&TelemetryEvent::ShardRestarted { shard: 2 });
        assert_eq!(
            sink.events(),
            vec![TelemetryEvent::ShardRestarted { shard: 2 }]
        );
        assert!(sink.events()[0].is_audit());
    }
}
