//! The structured event layer: request-lifecycle and security-audit
//! events, delivered to an installed [`TelemetrySink`].
//!
//! This generalises wedge-core's kernel-only `AccessSink` to the whole
//! serving stack. The contract mirrors it exactly: callbacks run
//! synchronously on the emitting thread (sometimes from inside serve
//! loops), so a sink must record and return — never call back into the
//! instrumented component. Emission is gated by one `AtomicBool` owned by
//! the [`crate::Telemetry`] handle: with no sink installed the entire
//! path is a single relaxed load, and event payloads are never even
//! constructed when emitted through [`crate::Telemetry::emit_with`].

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// One structured event from somewhere in the serving stack.
///
/// Lifecycle variants trace a connection end to end (accept → placement →
/// shard serve → handshake/resume → cachenet op → outcome); audit variants
/// record security-relevant state changes. [`TelemetryEvent::is_audit`]
/// splits the two.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TelemetryEvent {
    /// The listener queued a new connection.
    Accepted {
        /// Listener name (the bind label).
        listener: String,
    },
    /// The listener refused a connection.
    Refused {
        /// Listener name (the bind label).
        listener: String,
        /// Whether the token-bucket rate limiter (vs a full backlog or a
        /// closed listener) caused the refusal.
        rate_limited: bool,
    },
    /// The acceptor placed a job on a shard.
    Placed {
        /// Destination shard index.
        shard: usize,
        /// Whether placement fell back from the policy's first choice
        /// (unhealthy or full preferred shard).
        stolen: bool,
    },
    /// The acceptor could not place a job anywhere.
    PlacementRejected,
    /// A shard finished serving one link.
    Served {
        /// Serving shard index.
        shard: usize,
        /// Whether the server returned `Ok` (panics and `Err` are both
        /// `false`).
        ok: bool,
        /// Wall-clock serve duration in nanoseconds.
        nanos: u64,
    },
    /// A TLS handshake completed on a shard.
    Handshake {
        /// Serving shard index.
        shard: usize,
        /// Abbreviated (session-resumption) vs full handshake.
        resumed: bool,
    },
    /// A cachenet session lookup completed.
    CachenetLookup {
        /// Whether a remote node (vs the local miss-through tier) answered.
        remote: bool,
        /// Hit or miss.
        hit: bool,
        /// Lookup duration in nanoseconds.
        nanos: u64,
    },
    /// Audit: the kernel denied (or, in emulation mode, permitted and
    /// recorded) a protection violation.
    Violation {
        /// Name of the violating compartment.
        compartment: String,
        /// Whether emulation mode let the access proceed.
        emulated: bool,
    },
    /// Audit: a pooled worker's private scratch was zeroized between
    /// principals.
    Scrub {
        /// Name of the scrubbed worker compartment.
        compartment: String,
    },
    /// Audit: a cache node restarted and bumped its epoch, invalidating
    /// surviving pre-restart entries.
    EpochBump {
        /// Node name.
        node: String,
        /// The new epoch.
        epoch: u64,
    },
    /// Audit: a shard was killed.
    ShardKilled {
        /// Shard index.
        shard: usize,
        /// Queued links re-routed to surviving shards.
        rerouted: usize,
        /// Queued links that could not be re-routed.
        failed: usize,
    },
    /// Audit: the supervisor (or a manual restart) revived a shard.
    ShardRestarted {
        /// Shard index.
        shard: usize,
    },
    /// Audit: a cachenet circuit breaker opened against a node.
    CircuitOpen {
        /// Index of the node in the ring's endpoint list.
        node: usize,
    },
    /// Audit: a chaos harness injected a fault on purpose. Emitted at
    /// injection time into the same stream as the organic audit events,
    /// so a latency spike in the snapshot is attributable to the fault
    /// that caused it (an `EpochBump` following a `FaultInjected
    /// {fault: "cache_restart"}` is scheduled chaos, not an incident).
    FaultInjected {
        /// Fault kind, e.g. `"kill_shard"`, `"cache_kill"`,
        /// `"cache_restart"`, `"restart_storm"`, `"flood"`, `"brownout"`.
        fault: String,
        /// Index of the victim (shard index, cache-node index, flood
        /// source ordinal — whatever the fault targets).
        victim: usize,
        /// Milliseconds since the schedule started when this fired.
        at_ms: u64,
        /// The trace active on the injecting thread, when one exists —
        /// joins the fault to the request trace it perturbed in
        /// `TRACES_snapshot.json`. `None` for faults fired from the
        /// chaos harness's own scheduler thread (the common case).
        trace: Option<crate::trace::TraceContext>,
    },
}

impl TelemetryEvent {
    /// Whether this is a security-audit event (vs request lifecycle).
    pub fn is_audit(&self) -> bool {
        matches!(
            self,
            TelemetryEvent::Violation { .. }
                | TelemetryEvent::Scrub { .. }
                | TelemetryEvent::EpochBump { .. }
                | TelemetryEvent::ShardKilled { .. }
                | TelemetryEvent::ShardRestarted { .. }
                | TelemetryEvent::CircuitOpen { .. }
                | TelemetryEvent::FaultInjected { .. }
        )
    }
}

/// The sink interface, generalising wedge-core's `AccessSink` beyond the
/// kernel. Implementations must record and return: callbacks run on the
/// hot serving threads, and re-entering the instrumented component from a
/// callback deadlocks or recurses.
pub trait TelemetrySink: Send + Sync {
    /// One event occurred. `event` is borrowed; clone it to retain it.
    fn on_event(&self, event: &TelemetryEvent);
}

/// A sink that counts events by class — the minimal useful sink, and the
/// overhead-measurement baseline.
#[derive(Debug, Default)]
pub struct CountingTelemetrySink {
    /// Lifecycle events observed.
    pub lifecycle: AtomicU64,
    /// Security-audit events observed.
    pub audit: AtomicU64,
}

impl CountingTelemetrySink {
    /// Total events observed.
    pub fn total(&self) -> u64 {
        self.lifecycle.load(Ordering::Relaxed) + self.audit.load(Ordering::Relaxed)
    }
}

impl TelemetrySink for CountingTelemetrySink {
    fn on_event(&self, event: &TelemetryEvent) {
        if event.is_audit() {
            self.audit.fetch_add(1, Ordering::Relaxed);
        } else {
            self.lifecycle.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A sink that retains every event, for tests and offline inspection.
#[derive(Debug, Default)]
pub struct RecordingSink {
    events: Mutex<Vec<TelemetryEvent>>,
}

impl RecordingSink {
    /// Everything recorded so far.
    pub fn events(&self) -> Vec<TelemetryEvent> {
        self.events.lock().clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }
}

impl TelemetrySink for RecordingSink {
    fn on_event(&self, event: &TelemetryEvent) {
        self.events.lock().push(event.clone());
    }
}
