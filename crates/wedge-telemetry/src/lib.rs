//! # wedge-telemetry — one observability plane for the whole serving stack
//!
//! Every runtime layer of the Wedge reproduction (kernel fast path,
//! scheduler/shards, listener, front-ends, TLS session stores, the cachenet
//! ring) grew its own disconnected `*Stats` struct; none of them measures a
//! latency *distribution*. This crate is the missing common plane:
//!
//! * [`metrics`] — lock-light primitives: [`Counter`]/[`Gauge`] (one relaxed
//!   atomic each) and [`Histogram`], a log-bucketed latency histogram that
//!   records in nanoseconds with a handful of relaxed atomic increments and
//!   reports p50/p99/p999/max.
//! * [`registry`] — [`Telemetry`], a cloneable handle to a named-metric
//!   registry. Hot paths hold cheap metric handles (an `Arc` around the
//!   atomics), never the registry lock. Layers whose counters already exist
//!   as their own `*Stats` structs register a *collector* instead, pulled
//!   only when a snapshot is taken — the data path is untouched.
//! * [`sink`] — [`TelemetrySink`], the structured event layer generalising
//!   wedge-core's kernel-only `AccessSink`: request-lifecycle events
//!   (accept → placement → shard serve → handshake/resume → cachenet op)
//!   and security-audit events (policy violations, scrubs, epoch bumps,
//!   shard kills/restarts, circuit-breaker trips). Gated by one `AtomicBool`:
//!   with no sink installed, [`Telemetry::emit_with`] costs a single relaxed
//!   load and never constructs the event.
//! * [`snapshot`] — [`TelemetrySnapshot`], the point-in-time aggregation of
//!   every registered metric and collector into one sorted tree, rendered
//!   as JSON ([`TelemetrySnapshot::to_json`]) or human-readable text
//!   ([`TelemetrySnapshot::to_text`]).
//! * [`trace`] — end-to-end causal request tracing: a [`TraceContext`]
//!   minted at listener accept and carried through placement, shard serve,
//!   kernel op-log apply/replay, TLS handshakes and (as a wire-frame
//!   extension) remote cachenet ops; a striped ring-buffer flight recorder;
//!   and a tail sampler that retains only slow/erroneous/fault-stamped
//!   traces, exported as `TRACES_snapshot.json`.
//! * [`export`] — the hand-rolled (offline build: no serde) JSON writer with
//!   correct string escaping, shared with `wedge_bench::report`'s
//!   `BENCH_*.json` artifacts.
//!
//! See `README.md` for the metric-name table and the overhead contract.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod export;
pub mod metrics;
pub mod registry;
pub mod sink;
pub mod snapshot;
pub mod trace;

pub use export::{JsonArrayWriter, JsonWriter};
pub use metrics::{Counter, Gauge, Histogram, HistogramSummary};
pub use registry::{Sample, Telemetry};
pub use sink::{CountingTelemetrySink, RecordingSink, TelemetryEvent, TelemetrySink};
pub use snapshot::{MetricValue, TelemetrySnapshot};
pub use trace::{
    ActiveTrace, LinkTrace, RetainedTrace, SpanKind, SpanRecord, TraceContext, Tracer, TracerConfig,
};

/// How a TLS handshake completed — full key exchange or abbreviated
/// (session-cache resumption). Lives here so the generic scheduler layer
/// can classify front-end reports without depending on `wedge-tls`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandshakeKind {
    /// Full handshake: new key exchange, session written to the cache.
    Full,
    /// Abbreviated handshake: premaster recovered from a session cache.
    Abbreviated,
}
