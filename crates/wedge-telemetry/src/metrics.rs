//! Lock-light metric primitives: counters, gauges and log-bucketed
//! latency histograms.
//!
//! Every handle is a thin `Arc` around relaxed atomics, so hot paths clone
//! them once at instrumentation time and never touch the registry again.
//! Recording into a [`Histogram`] is a handful of relaxed `fetch_add`s —
//! no locks, no allocation — which is what lets the shard serve loop and
//! the cachenet lookup path time every operation without perturbing the
//! fast-path performance gates.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh, unregistered counter (tests; registries hand out shared ones).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A point-in-time gauge (queue depth, resident sessions, epoch, ...).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A fresh, unregistered gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Replace the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raise the value to `v` if it is higher (peak tracking).
    ///
    /// A single `fetch_max`, so concurrent `set_max` calls can never lose
    /// a peak. Mixing `set` and `set_max` on one gauge is *not* coherent
    /// under concurrency — a racing `set` may overwrite a higher peak —
    /// so each gauge should use one style or the other (see the
    /// "Concurrency and ordering" contract in `README.md`).
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Sub-bucket resolution: 2^3 = 8 linear sub-buckets per power-of-two
/// octave, bounding the relative quantisation error at 12.5%.
const SUB_BITS: u32 = 3;
const SUB: u64 = 1 << SUB_BITS;
/// Values 0..8 get exact buckets; octaves 3..=63 get 8 buckets each.
const NUM_BUCKETS: usize = (SUB as usize) + (64 - SUB_BITS as usize) * SUB as usize;

/// A concurrent log-bucketed histogram of nanosecond durations.
///
/// Layout mirrors HDR histograms at low resolution: values below 8 ns land
/// in exact buckets, larger values in one of 8 linear sub-buckets per
/// power-of-two octave. Percentile estimates are therefore always within
/// one bucket (≤ 12.5% relative error) of the exact order statistic, which
/// `tests` assert under concurrent recording.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

#[derive(Debug)]
struct HistogramInner {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// A fresh, unregistered histogram.
    pub fn new() -> Histogram {
        let buckets = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram(Arc::new(HistogramInner {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }))
    }

    /// The bucket index for a nanosecond value.
    fn bucket_index(nanos: u64) -> usize {
        if nanos < SUB {
            return nanos as usize;
        }
        let msb = 63 - nanos.leading_zeros();
        let sub = (nanos >> (msb - SUB_BITS)) & (SUB - 1);
        (SUB + u64::from(msb - SUB_BITS) * SUB + sub) as usize
    }

    /// The lower bound of bucket `index` (inverse of [`bucket_index`]);
    /// saturates at `u64::MAX` past the last real bucket.
    fn bucket_lower(index: usize) -> u64 {
        if index >= NUM_BUCKETS {
            return u64::MAX;
        }
        let index = index as u64;
        if index < SUB {
            return index;
        }
        let octave = (index - SUB) / SUB + u64::from(SUB_BITS);
        let sub = (index - SUB) % SUB;
        (1 << octave) + sub * (1 << (octave - u64::from(SUB_BITS)))
    }

    /// Record one duration, in nanoseconds. Relaxed atomics only.
    pub fn record(&self, nanos: u64) {
        self.0.buckets[Self::bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(nanos, Ordering::Relaxed);
        self.0.max.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Record a [`Duration`] (saturating at `u64::MAX` ns ≈ 584 years).
    pub fn record_duration(&self, elapsed: Duration) {
        self.record(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Point-in-time percentile summary.
    ///
    /// Coherent under concurrent recording: the buckets are frozen into a
    /// local copy with one pass of relaxed loads, `count` is derived from
    /// that frozen copy, and every percentile is computed against it — so
    /// one summary's percentiles are always mutually consistent
    /// (`p50 ≤ p99 ≤ p999 ≤ max`) even while writers are active. The cut
    /// is still not linearizable across *metrics* (relaxed loads only);
    /// see the "Concurrency and ordering" contract in `README.md`.
    pub fn summary(&self) -> HistogramSummary {
        // Freeze first, then read max/sum: `record` bumps the bucket
        // before max, so a max read *after* the freeze covers every
        // sample the frozen buckets contain (percentiles clamp to it).
        let buckets: Vec<u64> = self
            .0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = buckets.iter().sum();
        let max = self.0.max.load(Ordering::Relaxed);
        let sum = self.0.sum.load(Ordering::Relaxed);
        let mut summary = HistogramSummary {
            count,
            sum_nanos: sum,
            max_nanos: max,
            p50_nanos: 0,
            p99_nanos: 0,
            p999_nanos: 0,
        };
        if count == 0 {
            return summary;
        }
        let percentile = |quantile: f64| {
            let rank = ((quantile * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (index, &bucket) in buckets.iter().enumerate() {
                seen += bucket;
                if seen >= rank {
                    let lower = Self::bucket_lower(index);
                    let width = Self::bucket_lower(index + 1).saturating_sub(lower);
                    return (lower + width / 2).min(max);
                }
            }
            max
        };
        summary.p50_nanos = percentile(0.50);
        summary.p99_nanos = percentile(0.99);
        summary.p999_nanos = percentile(0.999);
        summary
    }
}

/// A rendered percentile summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all recorded nanoseconds (for mean computation).
    pub sum_nanos: u64,
    /// Largest recorded value, exact.
    pub max_nanos: u64,
    /// Estimated median.
    pub p50_nanos: u64,
    /// Estimated 99th percentile.
    pub p99_nanos: u64,
    /// Estimated 99.9th percentile.
    pub p999_nanos: u64,
}

impl HistogramSummary {
    /// Mean in nanoseconds (0 when empty).
    pub fn mean_nanos(&self) -> u64 {
        self.sum_nanos.checked_div(self.count).unwrap_or(0)
    }
}

/// Render nanoseconds with a human-appropriate unit (`17ns`, `4.2µs`,
/// `13.8ms`, `2.41s`).
pub fn format_nanos(nanos: u64) -> String {
    match nanos {
        0..=999 => format!("{nanos}ns"),
        1_000..=999_999 => format!("{:.1}µs", nanos as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.1}ms", nanos as f64 / 1e6),
        _ => format!("{:.2}s", nanos as f64 / 1e9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_round_trips_preserve_order() {
        let mut last = 0;
        for value in [0u64, 1, 7, 8, 9, 63, 64, 100, 1_000, 1_000_000, u64::MAX] {
            let index = Histogram::bucket_index(value);
            assert!(index >= last, "bucket index must be monotone");
            last = index;
            let lower = Histogram::bucket_lower(index);
            assert!(lower <= value, "lower bound {lower} above value {value}");
            if index + 1 < NUM_BUCKETS {
                assert!(Histogram::bucket_lower(index + 1) > value);
            }
        }
    }

    #[test]
    fn exact_small_values_and_quantisation_bound() {
        for v in 0..SUB {
            assert_eq!(Histogram::bucket_lower(Histogram::bucket_index(v)), v);
        }
        for v in [100u64, 12_345, 999_999_999] {
            let lower = Histogram::bucket_lower(Histogram::bucket_index(v));
            assert!((v - lower) as f64 / v as f64 <= 0.125 + 1e-9);
        }
    }

    #[test]
    fn summary_of_uniform_samples() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v * 1_000); // 1µs..1ms uniform
        }
        let s = h.summary();
        assert_eq!(s.count, 1000);
        assert_eq!(s.max_nanos, 1_000_000);
        // Median of 1..=1000 µs is ~500µs; allow one bucket (12.5%).
        assert!((s.p50_nanos as f64 - 500_000.0).abs() / 500_000.0 < 0.125 + 1e-9);
        assert!((s.p99_nanos as f64 - 990_000.0).abs() / 990_000.0 < 0.125 + 1e-9);
        assert!(s.p999_nanos <= s.max_nanos && s.p99_nanos <= s.p999_nanos);
        assert!((s.mean_nanos() as f64 - 500_500.0).abs() < 1_000.0);
    }

    #[test]
    fn concurrent_recording_loses_no_counts_and_percentiles_stay_tight() {
        // The satellite-task gate: 4 threads × 100k samples, no lost
        // counts, and every percentile estimate within one bucket of the
        // exact order statistic.
        const THREADS: u64 = 4;
        const PER_THREAD: u64 = 100_000;
        let h = Histogram::new();
        let mut exact: Vec<u64> = Vec::with_capacity((THREADS * PER_THREAD) as usize);
        for t in 0..THREADS {
            for i in 0..PER_THREAD {
                // Deterministic skewed distribution spanning ns..ms.
                let v = (i.wrapping_mul(2_654_435_761).wrapping_add(t * 977) % 1_000_000) + 1;
                exact.push(v);
            }
        }
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let h = h.clone();
                let chunk =
                    exact[(t * PER_THREAD) as usize..((t + 1) * PER_THREAD) as usize].to_vec();
                scope.spawn(move || {
                    for v in chunk {
                        h.record(v);
                    }
                });
            }
        });
        let s = h.summary();
        assert_eq!(s.count, THREADS * PER_THREAD, "no samples lost");
        exact.sort_unstable();
        assert_eq!(s.max_nanos, *exact.last().unwrap());
        for (quantile, estimate) in [
            (0.50, s.p50_nanos),
            (0.99, s.p99_nanos),
            (0.999, s.p999_nanos),
        ] {
            let rank = ((quantile * exact.len() as f64).ceil() as usize).max(1) - 1;
            let true_value = exact[rank];
            let true_bucket = Histogram::bucket_index(true_value);
            let est_bucket = Histogram::bucket_index(estimate);
            assert!(
                est_bucket.abs_diff(true_bucket) <= 1,
                "p{quantile}: estimate {estimate} (bucket {est_bucket}) vs exact \
                 {true_value} (bucket {true_bucket})"
            );
        }
    }

    #[test]
    fn format_nanos_picks_units() {
        assert_eq!(format_nanos(17), "17ns");
        assert_eq!(format_nanos(4_200), "4.2µs");
        assert_eq!(format_nanos(13_800_000), "13.8ms");
        assert_eq!(format_nanos(2_410_000_000), "2.41s");
    }
}
