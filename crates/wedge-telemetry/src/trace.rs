//! End-to-end causal request tracing: contexts, the flight recorder and
//! the tail sampler.
//!
//! A [`TraceContext`] is minted at `Listener` accept (the root span),
//! carried through acceptor placement, shard serve, kernel op-log
//! apply/replay and TLS handshakes, and shipped across machines as an
//! optional extension on cachenet wire-protocol-v2 frames — so one
//! request's spans form one tree no matter how many threads, sthreads and
//! cache nodes it touched.
//!
//! Three pieces:
//!
//! * **Contexts and ids** — trace ids and span ids come from seeded
//!   splitmix64 counters ([`TracerConfig::seed`]); no wall-clock entropy,
//!   so two runs with the same seed allocate identical ids.
//! * **The flight recorder** — completed spans are written into a small
//!   set of striped, fixed-capacity ring buffers ([`Tracer::record`]).
//!   Stripes are picked per thread, the critical section is an index bump
//!   and a slot store, and full rings overwrite in place: recording never
//!   blocks on retention.
//! * **The tail sampler** — when the *root* span ends
//!   ([`Tracer::end_trace`]) the trace is promoted to retention only if it
//!   was slow (over the total or per-phase SLO), erroneous, or overlapped
//!   a `wedge-chaos` fault window ([`Tracer::note_fault`]). Everything
//!   else stays in the rings and is overwritten by later traffic.
//!
//! The ambient context is a thread local behind one global relaxed
//! atomic: [`with_current`] on a thread with no active trace — or in a
//! process with no trace anywhere — costs a single relaxed load, the same
//! contract as `Telemetry::emit_with`. `wedge-core` propagates the
//! ambient context across sthread spawns and recycled-callgate
//! invocations, which is what makes kernel and cachenet spans land in the
//! right tree even though they run on other threads.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::export::JsonWriter;
use crate::metrics::{Counter, Histogram};
use crate::registry::Telemetry;

/// The causal identity one span carries: which trace it belongs to, its
/// own span id, and the span it hangs under (`parent_id == 0` marks the
/// root). `Copy` so it can ride in jobs, links and wire frames for free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// The trace this span belongs to.
    pub trace_id: u64,
    /// This span's id, unique within the allocating tracer.
    pub span_id: u32,
    /// The parent span's id; `0` for the root span.
    pub parent_id: u32,
}

/// A trace context plus the root-span start stamp, as stamped on an
/// accepted link so the shard worker that later serves it can time the
/// whole request against the tracer's clock.
#[derive(Debug, Clone, Copy)]
pub struct LinkTrace {
    /// The root span's context.
    pub ctx: TraceContext,
    /// When the connection entered the backlog, in tracer-clock ns.
    pub root_start_ns: u64,
}

/// What a span measured. The string forms double as the `trace.*`
/// histogram names registered at [`Telemetry::install_tracer`] time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SpanKind {
    /// The root span: backlog enqueue to serve completion.
    Request,
    /// Backlog wait: connect-side enqueue to listener accept.
    Accept,
    /// Shard queue wait: acceptor placement to worker dequeue.
    Queue,
    /// The shard worker serving the link.
    Serve,
    /// A TLS server handshake (detail: 1 = abbreviated/resumed).
    Handshake,
    /// A kernel op-log publish (detail: ops appended).
    KernelApply,
    /// A kernel replica replaying the log suffix (detail: ops replayed).
    KernelReplay,
    /// A client-side cachenet remote op (detail: node index).
    Cachenet,
    /// A cache node serving one framed request (detail: node index).
    CachenetServe,
}

impl SpanKind {
    /// Every kind, in display order.
    pub const ALL: [SpanKind; 9] = [
        SpanKind::Request,
        SpanKind::Accept,
        SpanKind::Queue,
        SpanKind::Serve,
        SpanKind::Handshake,
        SpanKind::KernelApply,
        SpanKind::KernelReplay,
        SpanKind::Cachenet,
        SpanKind::CachenetServe,
    ];

    /// The stable wire/metric name (`trace.<as_str()>` is the histogram).
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::Request => "request",
            SpanKind::Accept => "accept",
            SpanKind::Queue => "queue",
            SpanKind::Serve => "serve",
            SpanKind::Handshake => "handshake",
            SpanKind::KernelApply => "kernel.apply",
            SpanKind::KernelReplay => "kernel.replay",
            SpanKind::Cachenet => "cachenet",
            SpanKind::CachenetServe => "cachenet.serve",
        }
    }
}

/// One completed span as stored in the flight recorder.
#[derive(Debug, Clone, Copy)]
pub struct SpanRecord {
    /// The trace this span belongs to.
    pub trace_id: u64,
    /// This span's id.
    pub span_id: u32,
    /// Parent span id (`0` = root).
    pub parent_id: u32,
    /// What the span measured.
    pub kind: SpanKind,
    /// Start, in ns since the tracer's epoch.
    pub start_ns: u64,
    /// End, in ns since the tracer's epoch.
    pub end_ns: u64,
    /// Whether the spanned operation succeeded.
    pub ok: bool,
    /// Kind-specific payload (shard index, node index, op count, ...).
    pub detail: u32,
}

impl SpanRecord {
    /// The span's duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// A complete trace the tail sampler promoted to retention.
#[derive(Debug, Clone)]
pub struct RetainedTrace {
    /// The trace id.
    pub trace_id: u64,
    /// Why the sampler kept it: `"slow"`, `"error"` or `"fault"`.
    pub reason: &'static str,
    /// Root-span duration in nanoseconds.
    pub total_ns: u64,
    /// Every recorded span of the trace, sorted by `(start_ns, span_id)`.
    pub spans: Vec<SpanRecord>,
}

impl RetainedTrace {
    /// Sum of the durations of every span of `kind` in this trace.
    pub fn phase_ns(&self, kind: SpanKind) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.kind == kind)
            .map(SpanRecord::duration_ns)
            .sum()
    }
}

/// Tuning for a [`Tracer`]. The defaults suit tests and the bench
/// harness; production stacks mostly want a larger `retain_capacity` and
/// SLOs matched to their latency budget.
#[derive(Debug, Clone, Copy)]
pub struct TracerConfig {
    /// Seeds the trace-id and span-id counters (deterministic ids).
    pub seed: u64,
    /// Ring-buffer stripes (threads hash onto one each).
    pub stripes: usize,
    /// Span slots per stripe; full stripes overwrite in place.
    pub ring_capacity: usize,
    /// Max retained traces; later promotions are counted as dropped.
    pub retain_capacity: usize,
    /// Root spans longer than this are promoted as `"slow"`.
    pub slo_total: Duration,
    /// Any non-root span longer than this promotes the trace as `"slow"`.
    pub slo_phase: Duration,
    /// Traces overlapping `[fault, fault + window]` are promoted as
    /// `"fault"` (see [`Tracer::note_fault`]).
    pub fault_window: Duration,
}

impl Default for TracerConfig {
    fn default() -> TracerConfig {
        TracerConfig {
            seed: 0x57ED_6E55,
            stripes: 8,
            ring_capacity: 256,
            retain_capacity: 32,
            slo_total: Duration::from_millis(10),
            slo_phase: Duration::from_millis(5),
            fault_window: Duration::from_millis(250),
        }
    }
}

/// One ring-buffer stripe of the flight recorder.
#[derive(Debug, Default)]
struct Stripe {
    slots: Vec<SpanRecord>,
    head: usize,
}

/// Handles bound when the tracer is installed on a [`Telemetry`].
#[derive(Debug)]
struct Bound {
    started: Counter,
    retained: Counter,
    dropped: Counter,
    faults: Counter,
    by_kind: Vec<(SpanKind, Histogram)>,
}

/// The flight recorder plus tail sampler. Create with [`Tracer::new`],
/// install with [`Telemetry::install_tracer`], and mint roots at the
/// listener via [`Tracer::begin_root`].
#[derive(Debug)]
pub struct Tracer {
    epoch: Instant,
    seed: u64,
    next_trace: AtomicU64,
    next_span: AtomicU32,
    stripes: Box<[Mutex<Stripe>]>,
    ring_capacity: usize,
    retained: Mutex<Vec<RetainedTrace>>,
    retain_capacity: usize,
    slo_total_ns: u64,
    slo_phase_ns: u64,
    fault_window_ns: u64,
    /// Tracer-clock ns of the most recent chaos fault; 0 = never.
    last_fault_ns: AtomicU64,
    bound: OnceLock<Bound>,
}

/// splitmix64: the id mixer — bijective, so seeded counters never collide
/// within one tracer, and well distributed across tracers with distinct
/// seeds.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl Tracer {
    /// A tracer with [`TracerConfig`] tuning. Span ids start at a
    /// seed-derived offset so two machines with different seeds allocate
    /// disjoint span-id ranges for the same cross-machine trace.
    pub fn new(config: TracerConfig) -> Arc<Tracer> {
        let stripes = config.stripes.max(1);
        let span_base = (splitmix64(config.seed ^ 0xA5A5) as u32) | 1;
        Arc::new(Tracer {
            epoch: Instant::now(),
            seed: config.seed,
            next_trace: AtomicU64::new(0),
            next_span: AtomicU32::new(span_base),
            stripes: (0..stripes)
                .map(|_| Mutex::new(Stripe::default()))
                .collect(),
            ring_capacity: config.ring_capacity.max(1),
            retained: Mutex::new(Vec::new()),
            retain_capacity: config.retain_capacity.max(1),
            slo_total_ns: config.slo_total.as_nanos().min(u64::MAX as u128) as u64,
            slo_phase_ns: config.slo_phase.as_nanos().min(u64::MAX as u128) as u64,
            fault_window_ns: config.fault_window.as_nanos().min(u64::MAX as u128) as u64,
            last_fault_ns: AtomicU64::new(0),
            bound: OnceLock::new(),
        })
    }

    /// Register the tracer's counters and per-kind `trace.*` histograms
    /// on `telemetry`. Idempotent; only the first registry binds.
    pub(crate) fn bind(&self, telemetry: &Telemetry) {
        self.bound.get_or_init(|| Bound {
            started: telemetry.counter("trace.started"),
            retained: telemetry.counter("trace.retained"),
            dropped: telemetry.counter("trace.dropped"),
            faults: telemetry.counter("trace.faults"),
            by_kind: SpanKind::ALL
                .iter()
                .map(|&kind| {
                    (
                        kind,
                        telemetry.histogram(&format!("trace.{}", kind.as_str())),
                    )
                })
                .collect(),
        });
    }

    /// Nanoseconds since this tracer's epoch.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    /// Convert an [`Instant`] to tracer-clock ns (0 if it predates the
    /// tracer).
    pub fn stamp(&self, at: Instant) -> u64 {
        at.checked_duration_since(self.epoch)
            .map(|d| d.as_nanos().min(u64::MAX as u128) as u64)
            .unwrap_or(0)
    }

    /// Mint a fresh span id (never 0: 0 is the "no parent" sentinel).
    fn next_span_id(&self) -> u32 {
        loop {
            let id = self.next_span.fetch_add(1, Ordering::Relaxed);
            if id != 0 {
                return id;
            }
        }
    }

    /// Mint a new root context (a fresh trace).
    pub fn begin_root(&self) -> TraceContext {
        let n = self.next_trace.fetch_add(1, Ordering::Relaxed);
        if let Some(bound) = self.bound.get() {
            bound.started.incr();
        }
        TraceContext {
            trace_id: splitmix64(self.seed ^ n),
            span_id: self.next_span_id(),
            parent_id: 0,
        }
    }

    /// Mint a child context hanging under `parent` (same trace).
    pub fn child_of(&self, parent: TraceContext) -> TraceContext {
        TraceContext {
            trace_id: parent.trace_id,
            span_id: self.next_span_id(),
            parent_id: parent.span_id,
        }
    }

    /// Mint a context joining a trace received over the wire: a child of
    /// the remote caller's span, with a locally allocated span id.
    pub fn join_remote(&self, trace_id: u64, remote_span_id: u32) -> TraceContext {
        TraceContext {
            trace_id,
            span_id: self.next_span_id(),
            parent_id: remote_span_id,
        }
    }

    /// Record a completed span into the flight recorder (and its kind
    /// histogram, when bound). Lock-light: one striped mutex, a slot
    /// store, no allocation once the stripe is full.
    pub fn record(
        &self,
        ctx: TraceContext,
        kind: SpanKind,
        start_ns: u64,
        end_ns: u64,
        ok: bool,
        detail: u32,
    ) {
        let record = SpanRecord {
            trace_id: ctx.trace_id,
            span_id: ctx.span_id,
            parent_id: ctx.parent_id,
            kind,
            start_ns,
            end_ns,
            ok,
            detail,
        };
        let mut stripe = self.stripes[stripe_index(self.stripes.len())].lock();
        if stripe.slots.len() < self.ring_capacity {
            stripe.slots.push(record);
        } else {
            let head = stripe.head;
            stripe.slots[head] = record;
        }
        stripe.head = (stripe.head + 1) % self.ring_capacity;
        drop(stripe);
        if let Some(bound) = self.bound.get() {
            if let Some((_, hist)) = bound.by_kind.iter().find(|(k, _)| *k == kind) {
                hist.record(record.duration_ns());
            }
        }
    }

    /// Note a chaos fault: traces whose root span overlaps
    /// `[now, now + fault_window]` — or that were in flight when the
    /// fault landed — are promoted as `"fault"`.
    pub fn note_fault(&self) {
        self.last_fault_ns
            .store(self.now_ns().max(1), Ordering::Relaxed);
        if let Some(bound) = self.bound.get() {
            bound.faults.incr();
        }
    }

    /// End a trace: record the root span, then tail-sample. Slow,
    /// erroneous or fault-stamped traces are swept out of the rings into
    /// retention; everything else is left to be overwritten.
    pub fn end_trace(&self, root: TraceContext, start_ns: u64, end_ns: u64, ok: bool, detail: u32) {
        self.record(root, SpanKind::Request, start_ns, end_ns, ok, detail);
        let total_ns = end_ns.saturating_sub(start_ns);

        let mut spans: Vec<SpanRecord> = Vec::new();
        for stripe in self.stripes.iter() {
            let stripe = stripe.lock();
            spans.extend(stripe.slots.iter().filter(|s| s.trace_id == root.trace_id));
        }
        spans.sort_by_key(|s| (s.start_ns, s.span_id));

        let error = spans.iter().any(|s| !s.ok);
        let slow = total_ns > self.slo_total_ns
            || spans
                .iter()
                .any(|s| s.kind != SpanKind::Request && s.duration_ns() > self.slo_phase_ns);
        let fault_ns = self.last_fault_ns.load(Ordering::Relaxed);
        let fault = fault_ns != 0
            && fault_ns <= end_ns
            && start_ns <= fault_ns.saturating_add(self.fault_window_ns);

        let reason = if error {
            "error"
        } else if fault {
            "fault"
        } else if slow {
            "slow"
        } else {
            return;
        };

        let mut retained = self.retained.lock();
        if retained.len() >= self.retain_capacity {
            drop(retained);
            if let Some(bound) = self.bound.get() {
                bound.dropped.incr();
            }
            return;
        }
        retained.push(RetainedTrace {
            trace_id: root.trace_id,
            reason,
            total_ns,
            spans,
        });
        drop(retained);
        if let Some(bound) = self.bound.get() {
            bound.retained.incr();
        }
    }

    /// A copy of every retained trace.
    pub fn retained(&self) -> Vec<RetainedTrace> {
        self.retained.lock().clone()
    }

    /// How many traces retention currently holds.
    pub fn retained_count(&self) -> usize {
        self.retained.lock().len()
    }

    /// Render every retained trace as the `TRACES_snapshot.json` artifact:
    /// per-trace span trees plus per-phase duration sums, via the shared
    /// [`JsonWriter`].
    pub fn to_json(&self) -> String {
        let retained = self.retained();
        let mut w = JsonWriter::object();
        w.nested("traces", |w| {
            w.field_u64("retained", retained.len() as u64);
            w.field_arr("trace", |arr| {
                for trace in &retained {
                    arr.item_obj(|w| {
                        w.field_str("trace_id", &format!("{:016x}", trace.trace_id));
                        w.field_str("reason", trace.reason);
                        w.field_u64("total_ns", trace.total_ns);
                        w.nested("phases", |w| {
                            for kind in SpanKind::ALL {
                                if kind == SpanKind::Request {
                                    continue;
                                }
                                let ns = trace.phase_ns(kind);
                                if ns > 0 || trace.spans.iter().any(|s| s.kind == kind) {
                                    w.field_u64(kind.as_str(), ns);
                                }
                            }
                        });
                        w.field_arr("spans", |arr| {
                            for span in &trace.spans {
                                arr.item_obj(|w| {
                                    w.field_u64("span", u64::from(span.span_id));
                                    w.field_u64("parent", u64::from(span.parent_id));
                                    w.field_str("kind", span.kind.as_str());
                                    w.field_u64("start_ns", span.start_ns);
                                    w.field_u64("end_ns", span.end_ns);
                                    w.field_bool("ok", span.ok);
                                    w.field_u64("detail", u64::from(span.detail));
                                });
                            }
                        });
                    });
                }
            });
        });
        w.finish()
    }
}

/// Pick this thread's stripe: a per-thread id assigned on first use,
/// reduced mod the stripe count — per-thread affinity without hashing
/// opaque `ThreadId`s.
fn stripe_index(stripes: usize) -> usize {
    static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static THREAD_STRIPE: usize = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
    }
    THREAD_STRIPE.with(|s| *s % stripes.max(1))
}

/// The ambient trace on this thread: the context new spans should hang
/// under plus the tracer that allocated it.
#[derive(Clone)]
pub struct ActiveTrace {
    /// The enclosing span's context.
    pub ctx: TraceContext,
    /// The tracer owning the flight recorder for this trace.
    pub tracer: Arc<Tracer>,
}

impl std::fmt::Debug for ActiveTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActiveTrace")
            .field("ctx", &self.ctx)
            .finish()
    }
}

/// Count of live [`ScopedTrace`] guards across the whole process: the one
/// relaxed load that keeps [`with_current`] free when nothing is traced.
static LIVE_SCOPES: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static CURRENT: RefCell<Option<ActiveTrace>> = const { RefCell::new(None) };
}

/// Make `active` the ambient trace on this thread until the returned
/// guard drops (which restores whatever was ambient before).
#[must_use = "dropping the guard immediately clears the ambient trace"]
pub fn push(active: ActiveTrace) -> ScopedTrace {
    LIVE_SCOPES.fetch_add(1, Ordering::Relaxed);
    let prev = CURRENT.with(|c| c.borrow_mut().replace(active));
    ScopedTrace { prev }
}

/// RAII guard from [`push`]: restores the previous ambient trace on drop.
#[derive(Debug)]
pub struct ScopedTrace {
    prev: Option<ActiveTrace>,
}

impl Drop for ScopedTrace {
    fn drop(&mut self) {
        LIVE_SCOPES.fetch_sub(1, Ordering::Relaxed);
        let prev = self.prev.take();
        CURRENT.with(|c| *c.borrow_mut() = prev);
    }
}

/// Run `f` against this thread's ambient trace, if any. When no trace is
/// active anywhere in the process this is a single relaxed atomic load —
/// the contract hot paths (kernel op-log publish, cachenet sends) rely
/// on.
#[inline]
pub fn with_current<R>(f: impl FnOnce(&ActiveTrace) -> R) -> Option<R> {
    if LIVE_SCOPES.load(Ordering::Relaxed) == 0 {
        return None;
    }
    CURRENT.with(|c| c.borrow().as_ref().map(f))
}

/// A clone of this thread's ambient trace, if any (same gate as
/// [`with_current`]).
#[inline]
pub fn current() -> Option<ActiveTrace> {
    with_current(ActiveTrace::clone)
}

/// Open a child span of the ambient trace. Returns `None` (after one
/// relaxed load) when this thread has no active trace; otherwise the
/// guard records the span into the flight recorder when dropped.
#[inline]
pub fn span(kind: SpanKind, detail: u32) -> Option<SpanGuard> {
    with_current(|active| {
        let ctx = active.tracer.child_of(active.ctx);
        SpanGuard {
            active: active.clone(),
            ctx,
            kind,
            start_ns: active.tracer.now_ns(),
            ok: true,
            detail,
        }
    })
}

/// An open span: records itself on drop. Defaults to `ok = true`; call
/// [`SpanGuard::set_ok`] before dropping to mark a failure.
#[derive(Debug)]
pub struct SpanGuard {
    active: ActiveTrace,
    ctx: TraceContext,
    kind: SpanKind,
    start_ns: u64,
    ok: bool,
    detail: u32,
}

impl SpanGuard {
    /// This span's context (what a wire extension should carry).
    pub fn ctx(&self) -> TraceContext {
        self.ctx
    }

    /// Mark the spanned operation's outcome.
    pub fn set_ok(&mut self, ok: bool) {
        self.ok = ok;
    }

    /// Replace the kind-specific detail payload.
    pub fn set_detail(&mut self, detail: u32) {
        self.detail = detail;
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let end_ns = self.active.tracer.now_ns();
        self.active.tracer.record(
            self.ctx,
            self.kind,
            self.start_ns,
            end_ns,
            self.ok,
            self.detail,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> TracerConfig {
        TracerConfig {
            slo_total: Duration::from_secs(3600),
            slo_phase: Duration::from_secs(3600),
            ..TracerConfig::default()
        }
    }

    #[test]
    fn ids_are_deterministic_for_a_seed() {
        let a = Tracer::new(TracerConfig {
            seed: 7,
            ..TracerConfig::default()
        });
        let b = Tracer::new(TracerConfig {
            seed: 7,
            ..TracerConfig::default()
        });
        let ra = a.begin_root();
        let rb = b.begin_root();
        assert_eq!(ra.trace_id, rb.trace_id);
        assert_eq!(ra.span_id, rb.span_id);
        assert_ne!(
            a.begin_root().trace_id,
            ra.trace_id,
            "consecutive traces differ"
        );
        let c = Tracer::new(TracerConfig {
            seed: 8,
            ..TracerConfig::default()
        });
        assert_ne!(c.begin_root().trace_id, ra.trace_id, "seeds differ");
    }

    #[test]
    fn fast_traces_stay_in_the_rings() {
        let tracer = Tracer::new(quick_config());
        let root = tracer.begin_root();
        let child = tracer.child_of(root);
        tracer.record(child, SpanKind::Serve, 10, 20, true, 0);
        tracer.end_trace(root, 0, 30, true, 0);
        assert_eq!(tracer.retained_count(), 0);
    }

    #[test]
    fn slow_erroneous_and_faulted_traces_are_promoted() {
        // Slow: total SLO of zero promotes everything.
        let tracer = Tracer::new(TracerConfig {
            slo_total: Duration::ZERO,
            ..quick_config()
        });
        let root = tracer.begin_root();
        tracer.end_trace(root, 0, 100, true, 0);
        assert_eq!(tracer.retained()[0].reason, "slow");

        // Error beats slow.
        let tracer = Tracer::new(TracerConfig {
            slo_total: Duration::ZERO,
            ..quick_config()
        });
        let root = tracer.begin_root();
        let child = tracer.child_of(root);
        tracer.record(child, SpanKind::Serve, 1, 2, false, 0);
        tracer.end_trace(root, 0, 100, true, 0);
        assert_eq!(tracer.retained()[0].reason, "error");

        // Fault window: a fault noted mid-flight stamps the trace.
        let tracer = Tracer::new(quick_config());
        let root = tracer.begin_root();
        tracer.note_fault();
        let now = tracer.now_ns();
        tracer.end_trace(root, 0, now + 1, true, 0);
        assert_eq!(tracer.retained()[0].reason, "fault");
    }

    #[test]
    fn retention_is_bounded() {
        let tracer = Tracer::new(TracerConfig {
            retain_capacity: 2,
            slo_total: Duration::ZERO,
            ..quick_config()
        });
        for _ in 0..5 {
            let root = tracer.begin_root();
            tracer.end_trace(root, 0, 10, true, 0);
        }
        assert_eq!(tracer.retained_count(), 2);
    }

    #[test]
    fn rings_overwrite_in_place() {
        let tracer = Tracer::new(TracerConfig {
            stripes: 1,
            ring_capacity: 4,
            ..quick_config()
        });
        let root = tracer.begin_root();
        for i in 0..40u64 {
            let child = tracer.child_of(root);
            tracer.record(child, SpanKind::Serve, i, i + 1, true, 0);
        }
        let stripe = tracer.stripes[0].lock();
        assert_eq!(stripe.slots.len(), 4, "capacity respected");
    }

    #[test]
    fn ambient_trace_is_scoped_and_cheap_when_absent() {
        assert!(current().is_none());
        assert!(span(SpanKind::Serve, 0).is_none());
        let tracer = Tracer::new(quick_config());
        let root = tracer.begin_root();
        let guard = push(ActiveTrace {
            ctx: root,
            tracer: tracer.clone(),
        });
        let got = current().expect("ambient trace set");
        assert_eq!(got.ctx, root);
        {
            let inner = tracer.child_of(root);
            let _nested = push(ActiveTrace {
                ctx: inner,
                tracer: tracer.clone(),
            });
            assert_eq!(current().unwrap().ctx, inner);
        }
        assert_eq!(current().unwrap().ctx, root, "nested scope restored");
        drop(guard);
        assert!(current().is_none());
    }

    #[test]
    fn span_guard_records_into_the_recorder() {
        let tracer = Tracer::new(TracerConfig {
            slo_total: Duration::ZERO,
            ..quick_config()
        });
        let root = tracer.begin_root();
        {
            let _scope = push(ActiveTrace {
                ctx: root,
                tracer: tracer.clone(),
            });
            let mut guard = span(SpanKind::KernelApply, 3).expect("ambient trace");
            guard.set_ok(true);
        }
        tracer.end_trace(root, 0, tracer.now_ns(), true, 0);
        let retained = tracer.retained();
        let trace = &retained[0];
        assert!(trace.spans.iter().any(|s| s.kind == SpanKind::KernelApply
            && s.parent_id == root.span_id
            && s.detail == 3));
    }

    #[test]
    fn json_export_has_span_trees_and_phases() {
        let tracer = Tracer::new(TracerConfig {
            slo_total: Duration::ZERO,
            ..quick_config()
        });
        let root = tracer.begin_root();
        let child = tracer.child_of(root);
        tracer.record(child, SpanKind::Accept, 0, 5, true, 0);
        tracer.end_trace(root, 0, 50, true, 0);
        let json = tracer.to_json();
        assert!(json.contains("\"trace\":["));
        assert!(json.contains("\"kind\":\"accept\""));
        assert!(json.contains("\"accept\":5"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
