//! Snapshot-while-recording stress: raw writer threads hammer one
//! histogram, one peak gauge and one counter while snapshotter threads
//! continuously summarise — every observed summary must be internally
//! coherent (`p50 ≤ p99 ≤ p999 ≤ max`, count and peak monotone), which
//! is exactly the freeze-the-buckets contract `Histogram::summary`
//! documents (see the "Concurrency and ordering" section of the crate
//! README).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use wedge_telemetry::{Telemetry, TelemetrySnapshot};

const WRITERS: usize = 4;
const SNAPSHOTTERS: usize = 2;
const ITERS: u64 = 20_000;

fn coherent(snapshot: &TelemetrySnapshot, prev_count: u64, prev_peak: u64) -> (u64, u64) {
    let peak = snapshot.counter("stress.peak"); // gauges surface via get()
    let summary = match snapshot.histogram("stress.latency") {
        Some(summary) => *summary,
        None => return (prev_count, prev_peak.max(peak)),
    };
    assert!(
        summary.p50_nanos <= summary.p99_nanos
            && summary.p99_nanos <= summary.p999_nanos
            && summary.p999_nanos <= summary.max_nanos,
        "incoherent percentiles under concurrent recording: {summary:?}"
    );
    assert!(
        summary.count >= prev_count,
        "histogram count went backwards: {} then {}",
        prev_count,
        summary.count
    );
    assert!(
        peak >= prev_peak,
        "set_max peak went backwards: {prev_peak} then {peak}"
    );
    // The mean lies within the recorded range whenever anything was
    // recorded (sum and count are cut at slightly different instants,
    // so only the max bound is safe to assert).
    if summary.count > 0 {
        assert!(summary.mean_nanos() <= summary.max_nanos);
    }
    (summary.count, peak)
}

#[test]
fn summaries_stay_coherent_while_writers_hammer() {
    let telemetry = Telemetry::new();
    let histogram = telemetry.histogram("stress.latency");
    let gauge = telemetry.gauge("stress.peak");
    let counter = telemetry.counter("stress.ops");
    let done = Arc::new(AtomicBool::new(false));

    thread::scope(|scope| {
        for w in 0..WRITERS {
            let histogram = histogram.clone();
            let gauge = gauge.clone();
            let counter = counter.clone();
            scope.spawn(move || {
                for i in 0..ITERS {
                    // A spread of magnitudes so every percentile moves,
                    // deterministic per writer (no wall clock involved).
                    let v = 1 + (i % 1_000) * (w as u64 + 1);
                    histogram.record(v);
                    gauge.set_max(w as u64 * ITERS + i);
                    counter.incr();
                }
            });
        }
        for _ in 0..SNAPSHOTTERS {
            let telemetry = &telemetry;
            let done = done.clone();
            scope.spawn(move || {
                let (mut count, mut peak) = (0u64, 0u64);
                let mut rounds = 0u64;
                while !done.load(Ordering::Relaxed) {
                    (count, peak) = coherent(&telemetry.snapshot(), count, peak);
                    rounds += 1;
                }
                assert!(rounds > 0, "the snapshotter observed at least one cut");
            });
        }
        // Writers finish first; flag the snapshotters down. (Scope exit
        // joins everything, and a panicking assert in any thread fails
        // the test through the scope.)
        while counter.get() < (WRITERS as u64) * ITERS {
            thread::yield_now();
        }
        done.store(true, Ordering::Relaxed);
    });

    // Quiescent totals are exact: nothing was lost to the races.
    let snapshot = telemetry.snapshot();
    let summary = snapshot.histogram("stress.latency").expect("histogram");
    assert_eq!(summary.count, (WRITERS as u64) * ITERS);
    assert_eq!(snapshot.counter("stress.ops"), (WRITERS as u64) * ITERS);
    assert_eq!(
        snapshot.counter("stress.peak"),
        (WRITERS as u64 - 1) * ITERS + (ITERS - 1),
        "the peak gauge holds the largest value any writer offered"
    );
    assert_eq!(summary.max_nanos, 1 + 999 * (WRITERS as u64));
}
