//! Property-based tests for the crypto substrate.

use proptest::prelude::*;
use wedge_crypto::{hmac_sha256, sha256, RsaKeyPair, StreamCipher, WedgeRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sha256_is_deterministic_and_length_32(data in prop::collection::vec(any::<u8>(), 0..2048)) {
        let a = sha256(&data);
        let b = sha256(&data);
        prop_assert_eq!(a, b);
        prop_assert_eq!(a.len(), 32);
    }

    #[test]
    fn sha256_streaming_equals_oneshot(data in prop::collection::vec(any::<u8>(), 0..4096), split in 0usize..4096) {
        let split = split.min(data.len());
        let mut h = wedge_crypto::Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    #[test]
    fn hmac_detects_any_single_bit_flip(
        key in prop::collection::vec(any::<u8>(), 1..64),
        msg in prop::collection::vec(any::<u8>(), 1..256),
        byte_idx in 0usize..256,
        bit in 0u8..8,
    ) {
        let tag = hmac_sha256(&key, &msg);
        let mut tampered = msg.clone();
        let idx = byte_idx % tampered.len();
        tampered[idx] ^= 1 << bit;
        if tampered != msg {
            prop_assert_ne!(hmac_sha256(&key, &tampered), tag);
        }
    }

    #[test]
    fn rsa_roundtrips_arbitrary_messages(seed in 1u64..500, msg in prop::collection::vec(any::<u8>(), 0..256)) {
        let kp = RsaKeyPair::generate(&mut WedgeRng::from_seed(seed));
        let ct = kp.public.encrypt(&msg);
        let pt = kp.private.decrypt(&ct).unwrap();
        prop_assert_eq!(pt, msg);
    }

    #[test]
    fn rsa_signatures_verify_and_tampered_ones_do_not(
        seed in 1u64..200,
        msg in prop::collection::vec(any::<u8>(), 1..128),
        flip in 0usize..1024,
    ) {
        let kp = RsaKeyPair::generate(&mut WedgeRng::from_seed(seed));
        let digest = sha256(&msg);
        let sig = kp.private.sign_digest(&digest);
        prop_assert!(kp.public.verify_digest(&digest, &sig).is_ok());
        let mut bad = sig.clone();
        let idx = flip % bad.len();
        bad[idx] ^= 0x55;
        if bad != sig {
            prop_assert!(kp.public.verify_digest(&digest, &bad).is_err());
        }
    }

    #[test]
    fn stream_cipher_roundtrips(key in prop::collection::vec(any::<u8>(), 1..64), msgs in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..128), 1..8)) {
        let mut enc = StreamCipher::new(&key);
        let mut dec = StreamCipher::new(&key);
        for msg in &msgs {
            let ct = enc.process(msg);
            let pt = dec.process(&ct);
            prop_assert_eq!(&pt, msg);
        }
    }

    #[test]
    fn kdf_collision_free_over_premaster(pm1 in prop::collection::vec(any::<u8>(), 1..64), pm2 in prop::collection::vec(any::<u8>(), 1..64)) {
        prop_assume!(pm1 != pm2);
        let a = wedge_crypto::derive_key_block(&pm1, b"cr", b"sr");
        let b = wedge_crypto::derive_key_block(&pm2, b"cr", b"sr");
        prop_assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
