//! HMAC-SHA-256 (RFC 2104). Used for the SSL record-layer MAC and for the
//! key-derivation PRF.

use crate::sha256::{sha256, Sha256, DIGEST_LEN};

const BLOCK_LEN: usize = 64;

/// Compute `HMAC-SHA256(key, message)`.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; DIGEST_LEN] {
    let mut key_block = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        let hashed = sha256(key);
        key_block[..DIGEST_LEN].copy_from_slice(&hashed);
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0x36u8; BLOCK_LEN];
    let mut opad = [0x5cu8; BLOCK_LEN];
    for i in 0..BLOCK_LEN {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }

    let mut inner = Sha256::new();
    inner.update(&ipad).update(message);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    outer.update(&opad).update(&inner_digest);
    outer.finalize()
}

/// Verify an HMAC tag without early exit on mismatching content.
pub fn hmac_verify(key: &[u8], message: &[u8], tag: &[u8]) -> bool {
    let expected = hmac_sha256(key, message);
    crate::ct_eq(&expected, tag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::to_hex;

    // RFC 4231 test vectors.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let data = b"Hi There";
        assert_eq!(
            to_hex(&hmac_sha256(&key, data)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        assert_eq!(
            to_hex(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        assert_eq!(
            to_hex(&hmac_sha256(&key, &data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaau8; 131];
        let data = b"Test Using Larger Than Block-Size Key - Hash Key First";
        assert_eq!(
            to_hex(&hmac_sha256(&key, data)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let tag = hmac_sha256(b"k", b"msg");
        assert!(hmac_verify(b"k", b"msg", &tag));
        assert!(!hmac_verify(b"k", b"msg2", &tag));
        assert!(!hmac_verify(b"k2", b"msg", &tag));
        let mut bad = tag;
        bad[0] ^= 1;
        assert!(!hmac_verify(b"k", b"msg", &bad));
    }
}
