//! Toy RSA: a structure-faithful trapdoor permutation for the reproduction.
//!
//! The paper's defences are about *possession* of the private key (which
//! compartment can decrypt the premaster secret, which compartment can sign
//! the host-key challenge), not about cryptographic strength. We therefore
//! implement textbook RSA over 64-bit moduli and apply it block-wise to
//! longer messages. **Do not use this for anything real.**
//!
//! Key generation uses Miller-Rabin primality testing over 32-bit candidate
//! primes, `e = 65537`, and `d = e⁻¹ mod λ(n)`.

use crate::prng::WedgeRng;

/// Public exponent used by all generated keys.
pub const PUBLIC_EXPONENT: u64 = 65537;

/// Plaintext block size in bytes. Must keep block values below the modulus,
/// so we use 7 bytes per 64-bit modulus block.
pub const PLAIN_BLOCK: usize = 7;
/// Ciphertext block size in bytes (a full 64-bit word).
pub const CIPHER_BLOCK: usize = 8;

/// An RSA public key (modulus + public exponent).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RsaPublicKey {
    /// Modulus `n = p·q`.
    pub n: u64,
    /// Public exponent `e`.
    pub e: u64,
}

/// An RSA private key (modulus + private exponent). Holding a value of this
/// type is the reproduction's stand-in for "having the server's private key
/// in readable memory".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RsaPrivateKey {
    /// Modulus `n = p·q`.
    pub n: u64,
    /// Private exponent `d`.
    pub d: u64,
}

/// A generated keypair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RsaKeyPair {
    /// The public half.
    pub public: RsaPublicKey,
    /// The private half.
    pub private: RsaPrivateKey,
}

/// Errors from RSA operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RsaError {
    /// Ciphertext length is not a multiple of [`CIPHER_BLOCK`].
    BadCiphertextLength(usize),
    /// A decrypted block did not carry the expected padding byte.
    BadPadding,
    /// Signature verification failed.
    BadSignature,
}

impl std::fmt::Display for RsaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RsaError::BadCiphertextLength(n) => {
                write!(f, "ciphertext length {n} is not a block multiple")
            }
            RsaError::BadPadding => write!(f, "bad block padding"),
            RsaError::BadSignature => write!(f, "signature verification failed"),
        }
    }
}

impl std::error::Error for RsaError {}

fn mulmod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

fn powmod(mut base: u64, mut exp: u64, m: u64) -> u64 {
    let mut result = 1u64 % m;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            result = mulmod(result, base, m);
        }
        base = mulmod(base, base, m);
        exp >>= 1;
    }
    result
}

/// Deterministic Miller-Rabin, valid for all `n < 3.3·10^24` with these
/// witnesses — far beyond our 64-bit range.
fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    let mut d = n - 1;
    let mut r = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        r += 1;
    }
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = powmod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..r - 1 {
            x = mulmod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

fn egcd(a: i128, b: i128) -> (i128, i128, i128) {
    if a == 0 {
        (b, 0, 1)
    } else {
        let (g, x, y) = egcd(b % a, a);
        (g, y - (b / a) * x, x)
    }
}

fn modinv(a: u64, m: u64) -> Option<u64> {
    let (g, x, _) = egcd(a as i128, m as i128);
    if g != 1 {
        None
    } else {
        Some(((x % m as i128 + m as i128) % m as i128) as u64)
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

fn random_prime(rng: &mut WedgeRng) -> u64 {
    loop {
        // 31-bit candidates so that p·q fits comfortably in 62 bits.
        let candidate = (rng.next_u64() >> 33) | (1 << 30) | 1;
        if is_prime(candidate) {
            return candidate;
        }
    }
}

impl RsaKeyPair {
    /// Generate a keypair from the given RNG (deterministic for a seeded RNG).
    pub fn generate(rng: &mut WedgeRng) -> RsaKeyPair {
        loop {
            let p = random_prime(rng);
            let q = random_prime(rng);
            if p == q {
                continue;
            }
            let n = p * q;
            let lambda = (p - 1) / gcd(p - 1, q - 1) * (q - 1);
            if gcd(PUBLIC_EXPONENT, lambda) != 1 {
                continue;
            }
            let Some(d) = modinv(PUBLIC_EXPONENT, lambda) else {
                continue;
            };
            return RsaKeyPair {
                public: RsaPublicKey {
                    n,
                    e: PUBLIC_EXPONENT,
                },
                private: RsaPrivateKey { n, d },
            };
        }
    }
}

fn encrypt_block(block: u64, key: &RsaPublicKey) -> u64 {
    powmod(block, key.e, key.n)
}

fn decrypt_block(block: u64, key: &RsaPrivateKey) -> u64 {
    powmod(block, key.d, key.n)
}

impl RsaPublicKey {
    /// Encrypt arbitrary-length data. Each [`PLAIN_BLOCK`]-byte chunk is
    /// padded with its length byte and encrypted independently.
    pub fn encrypt(&self, plaintext: &[u8]) -> Vec<u8> {
        let mut out =
            Vec::with_capacity(plaintext.len().div_ceil(PLAIN_BLOCK) * CIPHER_BLOCK + CIPHER_BLOCK);
        let chunks: Vec<&[u8]> = plaintext.chunks(PLAIN_BLOCK).collect();
        for chunk in &chunks {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            // Top byte carries the chunk length (1..=7), keeping the block
            // value below 2^60 and hence below any generated modulus.
            word[7] = chunk.len() as u8;
            let value = u64::from_le_bytes(word) % self.n;
            out.extend_from_slice(&encrypt_block(value, self).to_le_bytes());
        }
        if chunks.is_empty() {
            // Encode the empty message as a single zero-length block.
            let value = u64::from_le_bytes([0, 0, 0, 0, 0, 0, 0, 0]);
            out.extend_from_slice(&encrypt_block(value, self).to_le_bytes());
        }
        out
    }

    /// Verify `signature` over `digest` (as produced by
    /// [`RsaPrivateKey::sign_digest`]).
    pub fn verify_digest(&self, digest: &[u8], signature: &[u8]) -> Result<(), RsaError> {
        if !signature.len().is_multiple_of(CIPHER_BLOCK) {
            return Err(RsaError::BadSignature);
        }
        let mut recovered = Vec::new();
        for chunk in signature.chunks(CIPHER_BLOCK) {
            let word = u64::from_le_bytes(chunk.try_into().expect("chunk is 8 bytes"));
            let value = encrypt_block(word, self);
            let bytes = value.to_le_bytes();
            let len = bytes[7] as usize;
            if len > PLAIN_BLOCK {
                return Err(RsaError::BadSignature);
            }
            recovered.extend_from_slice(&bytes[..len]);
        }
        if recovered == digest {
            Ok(())
        } else {
            Err(RsaError::BadSignature)
        }
    }
}

impl RsaPrivateKey {
    /// Decrypt data produced by [`RsaPublicKey::encrypt`].
    pub fn decrypt(&self, ciphertext: &[u8]) -> Result<Vec<u8>, RsaError> {
        if !ciphertext.len().is_multiple_of(CIPHER_BLOCK) || ciphertext.is_empty() {
            return Err(RsaError::BadCiphertextLength(ciphertext.len()));
        }
        let mut out = Vec::new();
        for chunk in ciphertext.chunks(CIPHER_BLOCK) {
            let word = u64::from_le_bytes(chunk.try_into().expect("chunk is 8 bytes"));
            let value = decrypt_block(word, self);
            let bytes = value.to_le_bytes();
            let len = bytes[7] as usize;
            if len > PLAIN_BLOCK {
                return Err(RsaError::BadPadding);
            }
            out.extend_from_slice(&bytes[..len]);
        }
        Ok(out)
    }

    /// Sign a digest: the "RSA signature" is the block-wise private-key
    /// transformation of the digest bytes.
    pub fn sign_digest(&self, digest: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        for chunk in digest.chunks(PLAIN_BLOCK) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            word[7] = chunk.len() as u8;
            let value = u64::from_le_bytes(word) % self.n;
            out.extend_from_slice(&decrypt_block(value, self).to_le_bytes());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::sha256;

    fn keypair(seed: u64) -> RsaKeyPair {
        RsaKeyPair::generate(&mut WedgeRng::from_seed(seed))
    }

    #[test]
    fn primality_known_values() {
        assert!(is_prime(2));
        assert!(is_prime(3));
        assert!(is_prime(7919));
        assert!(is_prime(2_147_483_647)); // 2^31 - 1, Mersenne prime
        assert!(!is_prime(1));
        assert!(!is_prime(0));
        assert!(!is_prime(561)); // Carmichael number
        assert!(!is_prime(2_147_483_649));
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let kp = keypair(1);
        let msg = b"premaster secret material 0123456789";
        let ct = kp.public.encrypt(msg);
        assert_ne!(&ct[..], &msg[..]);
        let pt = kp.private.decrypt(&ct).unwrap();
        assert_eq!(pt, msg);
    }

    #[test]
    fn empty_message_roundtrip() {
        let kp = keypair(2);
        let ct = kp.public.encrypt(b"");
        let pt = kp.private.decrypt(&ct).unwrap();
        assert_eq!(pt, b"");
    }

    #[test]
    fn wrong_key_fails_or_garbles() {
        let kp1 = keypair(3);
        let kp2 = keypair(4);
        let msg = b"attack at dawn";
        let ct = kp1.public.encrypt(msg);
        if let Ok(pt) = kp2.private.decrypt(&ct) {
            assert_ne!(pt, msg);
        }
    }

    #[test]
    fn sign_verify_roundtrip() {
        let kp = keypair(5);
        let digest = sha256(b"host key challenge");
        let sig = kp.private.sign_digest(&digest);
        kp.public.verify_digest(&digest, &sig).unwrap();
        // Tampered digest fails.
        let other = sha256(b"different");
        assert_eq!(
            kp.public.verify_digest(&other, &sig),
            Err(RsaError::BadSignature)
        );
        // Tampered signature fails.
        let mut bad = sig.clone();
        bad[0] ^= 1;
        assert!(kp.public.verify_digest(&digest, &bad).is_err());
    }

    #[test]
    fn signature_from_other_key_rejected() {
        let kp1 = keypair(6);
        let kp2 = keypair(7);
        let digest = sha256(b"msg");
        let sig = kp1.private.sign_digest(&digest);
        assert!(kp2.public.verify_digest(&digest, &sig).is_err());
    }

    #[test]
    fn bad_ciphertext_length_rejected() {
        let kp = keypair(8);
        assert!(matches!(
            kp.private.decrypt(&[1, 2, 3]),
            Err(RsaError::BadCiphertextLength(3))
        ));
        assert!(kp.private.decrypt(&[]).is_err());
    }

    #[test]
    fn keygen_is_deterministic_per_seed() {
        assert_eq!(keypair(11), keypair(11));
        assert_ne!(keypair(11), keypair(12));
    }

    #[test]
    fn modulus_is_product_of_two_primes_well_above_block_values() {
        let kp = keypair(13);
        assert!(
            kp.public.n > (1u64 << 59),
            "modulus must exceed max block value"
        );
    }
}
