//! Deterministic PRNG used throughout the reproduction.
//!
//! The paper's defence in §5.1.1 hinges on *who generates the server's
//! random contribution* to the session key, so randomness flows are modelled
//! explicitly. We use a xoshiro256** generator: deterministic when seeded by
//! tests/benches (reproducible experiments), and seedable from the `rand`
//! crate's entropy when callers want fresh values.

use rand::RngCore;

/// xoshiro256** PRNG with explicit, inspectable seeding.
#[derive(Debug, Clone)]
pub struct WedgeRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl WedgeRng {
    /// Create a generator from a 64-bit seed (expanded via splitmix64).
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        WedgeRng { s }
    }

    /// Create a generator seeded from OS entropy (via the `rand` crate).
    pub fn from_entropy() -> Self {
        let mut seed = [0u8; 8];
        rand::thread_rng().fill_bytes(&mut seed);
        Self::from_seed(u64::from_le_bytes(seed))
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be non-zero");
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Fill `buf` with random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        let mut i = 0;
        while i < buf.len() {
            let word = self.next_u64().to_le_bytes();
            let take = (buf.len() - i).min(8);
            buf[i..i + take].copy_from_slice(&word[..take]);
            i += take;
        }
    }

    /// Produce `n` random bytes.
    pub fn bytes(&mut self, n: usize) -> Vec<u8> {
        let mut out = vec![0u8; n];
        self.fill_bytes(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = WedgeRng::from_seed(42);
        let mut b = WedgeRng::from_seed(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = WedgeRng::from_seed(1);
        let mut b = WedgeRng::from_seed(2);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = WedgeRng::from_seed(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX / 2] {
            for _ in 0..50 {
                assert!(rng.gen_range(bound) < bound);
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn gen_range_zero_panics() {
        WedgeRng::from_seed(1).gen_range(0);
    }

    #[test]
    fn fill_bytes_covers_partial_words() {
        let mut rng = WedgeRng::from_seed(3);
        let b = rng.bytes(13);
        assert_eq!(b.len(), 13);
        // Vanishingly unlikely to be all zero.
        assert!(b.iter().any(|&x| x != 0));
    }

    #[test]
    fn entropy_seeded_generators_differ() {
        let mut a = WedgeRng::from_entropy();
        let mut b = WedgeRng::from_entropy();
        // 64 bits of collision chance — effectively never equal.
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
