//! # wedge-crypto — toy cryptographic substrate
//!
//! The Wedge paper's Apache/OpenSSL and OpenSSH case studies revolve around
//! *which compartment may see which cryptographic value* (the server's RSA
//! private key, the premaster secret, the session and MAC keys, the hashed
//! `finished_state`). To reproduce those experiments we need a cryptographic
//! substrate whose **structure** matches SSL/SSH — public-key
//! encrypt/decrypt and sign/verify, hashing, HMAC, key derivation, a
//! symmetric record cipher — but whose strength is irrelevant to the
//! evaluation.
//!
//! **This crate is NOT a secure cryptography implementation.** The RSA-like
//! trapdoor permutation uses 64-bit moduli applied block-wise, which is
//! trivially breakable. It exists only so the reproduction exercises the
//! same data flows as the paper (who holds the private key, who can compute
//! the session key, what a callgate's return value reveals). The SHA-256 and
//! HMAC implementations are, however, real and verified against published
//! test vectors so that hashing-based reasoning in the paper (e.g. the
//! non-invertibility argument for `finished_state`) carries over.
//!
//! Modules:
//!
//! * [`sha256`] — FIPS 180-4 SHA-256.
//! * [`hmac`] — HMAC-SHA-256 (RFC 2104).
//! * [`prng`] — a deterministic xoshiro-style PRNG plus convenience seeding.
//! * [`rsa`] — toy RSA: Miller-Rabin prime generation, 64-bit modulus
//!   keypairs, block-wise encrypt/decrypt and sign/verify.
//! * [`stream`] — a counter-mode keystream cipher built from SHA-256.
//! * [`kdf`] — TLS-PRF-style key derivation from premaster + randoms.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod hmac;
pub mod kdf;
pub mod prng;
pub mod rsa;
pub mod sha256;
pub mod stream;

pub use hmac::hmac_sha256;
pub use kdf::{derive_key_block, KeyMaterial};
pub use prng::WedgeRng;
pub use rsa::{RsaKeyPair, RsaPrivateKey, RsaPublicKey};
pub use sha256::{sha256, Sha256};
pub use stream::StreamCipher;

/// Constant-time-ish comparison of two byte slices (length leak is fine for
/// the simulation; we avoid early exit on content so tests that reason about
/// MAC comparison behaviour are realistic).
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ct_eq_basic() {
        assert!(ct_eq(b"abc", b"abc"));
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"abcd"));
        assert!(ct_eq(b"", b""));
    }
}
