//! Counter-mode keystream cipher built from SHA-256.
//!
//! The SSL record layer in the reproduction encrypts application data with
//! this cipher plus an HMAC. As with the rest of this crate, the goal is a
//! faithful *structure* (symmetric key shared by both record endpoints,
//! keystream independent of plaintext, same key ⇒ same keystream), not real
//! confidentiality.

use crate::sha256::{Sha256, DIGEST_LEN};

/// A symmetric keystream cipher. Encryption and decryption are the same
/// operation (XOR with the keystream at the current offset).
#[derive(Debug, Clone)]
pub struct StreamCipher {
    key: Vec<u8>,
    /// Absolute keystream position (bytes consumed so far).
    position: u64,
}

impl StreamCipher {
    /// Create a cipher from a symmetric key.
    pub fn new(key: &[u8]) -> Self {
        StreamCipher {
            key: key.to_vec(),
            position: 0,
        }
    }

    /// Bytes of keystream consumed so far.
    pub fn position(&self) -> u64 {
        self.position
    }

    fn keystream_block(&self, block_index: u64) -> [u8; DIGEST_LEN] {
        let mut h = Sha256::new();
        h.update(&self.key);
        h.update(&block_index.to_le_bytes());
        h.finalize()
    }

    /// XOR `data` with the keystream in place, advancing the position.
    pub fn apply(&mut self, data: &mut [u8]) {
        let mut pos = self.position;
        for byte in data.iter_mut() {
            let block = pos / DIGEST_LEN as u64;
            let offset = (pos % DIGEST_LEN as u64) as usize;
            let ks = self.keystream_block(block);
            *byte ^= ks[offset];
            pos += 1;
        }
        self.position = pos;
    }

    /// Encrypt (or decrypt) a buffer, returning a new vector.
    pub fn process(&mut self, data: &[u8]) -> Vec<u8> {
        let mut out = data.to_vec();
        self.apply(&mut out);
        out
    }

    /// Reset the keystream position to zero (used when both endpoints agree
    /// to restart numbering, e.g. per record in the simplified record layer).
    pub fn reset(&mut self) {
        self.position = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_with_matching_positions() {
        let mut enc = StreamCipher::new(b"session-key");
        let mut dec = StreamCipher::new(b"session-key");
        let msg = b"GET /index.html HTTP/1.0\r\n\r\n";
        let ct = enc.process(msg);
        assert_ne!(&ct[..], &msg[..]);
        let pt = dec.process(&ct);
        assert_eq!(pt, msg);
    }

    #[test]
    fn multiple_records_stay_in_sync() {
        let mut enc = StreamCipher::new(b"k");
        let mut dec = StreamCipher::new(b"k");
        for i in 0..10 {
            let msg = format!("record number {i} with some payload");
            let ct = enc.process(msg.as_bytes());
            let pt = dec.process(&ct);
            assert_eq!(pt, msg.as_bytes());
        }
        assert_eq!(enc.position(), dec.position());
    }

    #[test]
    fn wrong_key_garbles() {
        let mut enc = StreamCipher::new(b"right-key");
        let mut dec = StreamCipher::new(b"wrong-key");
        let ct = enc.process(b"confidential");
        assert_ne!(dec.process(&ct), b"confidential");
    }

    #[test]
    fn keystream_differs_across_positions() {
        let mut c = StreamCipher::new(b"k");
        let a = c.process(&[0u8; 64]);
        let b = c.process(&[0u8; 64]);
        assert_ne!(a, b, "keystream must not repeat across positions");
    }

    #[test]
    fn reset_restarts_keystream() {
        let mut c = StreamCipher::new(b"k");
        let a = c.process(&[0u8; 16]);
        c.reset();
        let b = c.process(&[0u8; 16]);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_input_is_noop() {
        let mut c = StreamCipher::new(b"k");
        assert!(c.process(b"").is_empty());
        assert_eq!(c.position(), 0);
    }
}
