//! Key derivation in the style of the TLS PRF.
//!
//! §5.1.1 of the paper: "The SSL session key derives from three inputs that
//! traverse the network: random values supplied by the server and client,
//! both sent in clear ... and another random value supplied by the client,
//! sent over the network encrypted with the server's public key. ... Because
//! the session key is a cryptographic hash over three inputs, one of which
//! is random from the attacker's perspective, he cannot usefully influence
//! the generated session key."
//!
//! [`derive_key_block`] is that hash: an HMAC-based expansion of
//! `premaster ‖ client_random ‖ server_random` into the session key
//! material, split by [`KeyMaterial`] into encryption and MAC keys for each
//! direction.

use crate::hmac::hmac_sha256;

/// Session key material derived from the handshake inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyMaterial {
    /// Key used to encrypt client→server records.
    pub client_write_key: Vec<u8>,
    /// Key used to encrypt server→client records.
    pub server_write_key: Vec<u8>,
    /// MAC key for client→server records.
    pub client_mac_key: Vec<u8>,
    /// MAC key for server→client records.
    pub server_mac_key: Vec<u8>,
}

impl KeyMaterial {
    /// A compact fingerprint of the whole key block (used in tests and
    /// transcripts to compare "did both sides derive the same keys" without
    /// exposing the keys themselves).
    pub fn fingerprint(&self) -> [u8; 32] {
        let mut all = Vec::new();
        all.extend_from_slice(&self.client_write_key);
        all.extend_from_slice(&self.server_write_key);
        all.extend_from_slice(&self.client_mac_key);
        all.extend_from_slice(&self.server_mac_key);
        crate::sha256::sha256(&all)
    }
}

/// P_hash-style expansion: HMAC(secret, label ‖ seed ‖ counter) chained
/// until `out_len` bytes are produced.
fn p_hash(secret: &[u8], label: &[u8], seed: &[u8], out_len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(out_len);
    let mut a: Vec<u8> = {
        let mut msg = label.to_vec();
        msg.extend_from_slice(seed);
        msg
    };
    let mut counter = 0u32;
    while out.len() < out_len {
        a = hmac_sha256(secret, &a).to_vec();
        let mut msg = a.clone();
        msg.extend_from_slice(label);
        msg.extend_from_slice(seed);
        msg.extend_from_slice(&counter.to_be_bytes());
        let block = hmac_sha256(secret, &msg);
        let take = (out_len - out.len()).min(block.len());
        out.extend_from_slice(&block[..take]);
        counter += 1;
    }
    out
}

/// Derive the master secret from the premaster secret and the two
/// handshake randoms (mirrors `master_secret = PRF(premaster, "master
/// secret", client_random ‖ server_random)`).
pub fn derive_master_secret(
    premaster: &[u8],
    client_random: &[u8],
    server_random: &[u8],
) -> Vec<u8> {
    let mut seed = client_random.to_vec();
    seed.extend_from_slice(server_random);
    p_hash(premaster, b"master secret", &seed, 48)
}

/// Derive the full key block (two write keys + two MAC keys, 32 bytes each)
/// from the premaster secret and the handshake randoms.
pub fn derive_key_block(
    premaster: &[u8],
    client_random: &[u8],
    server_random: &[u8],
) -> KeyMaterial {
    let master = derive_master_secret(premaster, client_random, server_random);
    let mut seed = server_random.to_vec();
    seed.extend_from_slice(client_random);
    let block = p_hash(&master, b"key expansion", &seed, 128);
    KeyMaterial {
        client_write_key: block[0..32].to_vec(),
        server_write_key: block[32..64].to_vec(),
        client_mac_key: block[64..96].to_vec(),
        server_mac_key: block[96..128].to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_inputs_same_keys() {
        let a = derive_key_block(b"pm", b"cr", b"sr");
        let b = derive_key_block(b"pm", b"cr", b"sr");
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn any_input_change_changes_all_keys() {
        let base = derive_key_block(b"pm", b"cr", b"sr");
        for variant in [
            derive_key_block(b"pm2", b"cr", b"sr"),
            derive_key_block(b"pm", b"cr2", b"sr"),
            derive_key_block(b"pm", b"cr", b"sr2"),
        ] {
            assert_ne!(base.fingerprint(), variant.fingerprint());
            assert_ne!(base.client_write_key, variant.client_write_key);
            assert_ne!(base.server_mac_key, variant.server_mac_key);
        }
    }

    #[test]
    fn keys_are_pairwise_distinct() {
        let k = derive_key_block(b"premaster", b"client-random", b"server-random");
        let all = [
            &k.client_write_key,
            &k.server_write_key,
            &k.client_mac_key,
            &k.server_mac_key,
        ];
        for i in 0..all.len() {
            for j in i + 1..all.len() {
                assert_ne!(all[i], all[j]);
            }
        }
    }

    #[test]
    fn master_secret_is_48_bytes() {
        assert_eq!(derive_master_secret(b"pm", b"cr", b"sr").len(), 48);
    }

    #[test]
    fn key_lengths_are_32_bytes() {
        let k = derive_key_block(b"pm", b"cr", b"sr");
        assert_eq!(k.client_write_key.len(), 32);
        assert_eq!(k.server_write_key.len(), 32);
        assert_eq!(k.client_mac_key.len(), 32);
        assert_eq!(k.server_mac_key.len(), 32);
    }

    #[test]
    fn empty_inputs_still_derive() {
        let k = derive_key_block(b"", b"", b"");
        assert_eq!(k.client_write_key.len(), 32);
    }
}
