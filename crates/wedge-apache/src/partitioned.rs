//! The §5.1.2 (man-in-the-middle-hardened) partitioning of Apache/OpenSSL.
//!
//! Per connection, a master coordinates two sequential phases (Figure 3):
//!
//! 1. **`ssl_handshake` sthread** — network-facing, reads and writes the
//!    cleartext handshake messages, but holds *no* access to the session-key
//!    or private-key regions. It drives four callgates:
//!    `begin_handshake` (chooses the server random, handles resumption),
//!    `setup_session_key` (the only code that can read the private key;
//!    decrypts the premaster and installs the derived keys into the
//!    session-key region), `receive_finished` (verifies the client's
//!    Finished using the session key, records `finished_state`; returns only
//!    a boolean) and `send_finished` (produces the sealed server Finished
//!    from `finished_state`; takes no attacker-influenced input).
//! 2. **`client_handler` sthread** — started by the master only after the
//!    handshake sthread exits successfully. It has *no* network access and
//!    *no* session-key access; it sees plaintext requests through the
//!    `ssl_read` callgate and sends responses through `ssl_write` (which is
//!    the only compartment pair able to use the session key on application
//!    data, Figure 5).
//!
//! The [`ApacheConfig::recycled`] flag switches every callgate invocation to
//! the recycled fast path — the Table 2 "Recycled" column. As in the paper,
//! recycled callgates are long-lived and serve successive connections, so
//! they trade some isolation (a compromised recycled gate could mix state
//! across principals) for throughput; this reproduction consequently serves
//! connections sequentially per server instance.

use std::sync::Arc;

use parking_lot::Mutex;

use wedge_core::callgate::typed_entry;
use wedge_core::{
    CgEntryId, CgInput, MemProt, SBuf, SecurityPolicy, SthreadCtx, Tag, TrustedArg, Wedge,
    WedgeError,
};
use wedge_crypto::{RsaKeyPair, WedgeRng};
use wedge_net::{Duplex, RecvTimeout};
use wedge_tls::handshake::{
    finished_verify_data, fresh_random, fresh_session_id, transcript_hash, CLIENT_FINISHED_LABEL,
    HANDSHAKE_TIMEOUT, SERVER_FINISHED_LABEL,
};
use wedge_tls::messages::{ClientHello, ClientKeyExchange, Finished, ServerHello};
use wedge_tls::record::RecordLayer;
use wedge_tls::{SessionId, SessionKeys, SessionStore, SharedSessionCache};

use crate::http::{HttpRequest, PageStore};
use crate::state::{FinishedState, SessionState, FINISHED_STATE_SIZE, SESSION_STATE_SIZE};
use crate::vanilla::serialize_private_key;

/// Configuration of the partitioned server.
#[derive(Debug, Clone, Copy, Default)]
pub struct ApacheConfig {
    /// Use recycled callgates (the throughput optimisation of §3.3/Table 2).
    pub recycled: bool,
}

/// Report returned for each served connection.
#[derive(Debug, Clone, Default)]
pub struct ConnectionReport {
    /// Did the handshake phase complete?
    pub handshake_ok: bool,
    /// Was the session resumed from the cache?
    pub resumed: bool,
    /// Number of requests served by the client handler.
    pub requests: u32,
    /// Number of records the `ssl_read` callgate rejected (failed MAC) —
    /// injected traffic never reaches the client handler.
    pub rejected_records: u32,
    /// The shard that served the connection (0 outside a sharded
    /// front-end), so callers can attribute outcomes and failures.
    pub shard: usize,
    /// Fingerprint of the derived session keys (all zeros until the
    /// handshake establishes them) — lets tests assert that a resumed
    /// connection on a *different* shard derived the same keys the client
    /// did, without exposing the keys.
    pub key_fingerprint: [u8; 32],
}

// ---------------------------------------------------------------------
// Callgate argument / reply types
// ---------------------------------------------------------------------

/// The master-controlled slot naming the connection currently being served
/// (the `ssl_read`/`ssl_write` callgates fetch the live network endpoint
/// from here — callers never hold it).
type LinkSlot = Arc<Mutex<Option<Arc<Duplex>>>>;

/// Trusted argument shared by `begin_handshake` and `setup_session_key`.
struct KeyGateTrusted {
    key_buf: SBuf,
    session_state: SBuf,
    cache: Arc<dyn SessionStore>,
}

/// Trusted argument shared by `receive_finished` and `send_finished`.
struct FinishedGateTrusted {
    session_state: SBuf,
    finished_state: SBuf,
}

/// Trusted argument shared by `ssl_read` and `ssl_write`.
struct IoGateTrusted {
    session_state: SBuf,
    link: LinkSlot,
}

/// Input of `begin_handshake`.
#[derive(Debug, Clone)]
struct BeginRequest {
    session_offer: Option<SessionId>,
    client_random: [u8; 32],
}

/// Output of `begin_handshake`.
#[derive(Debug, Clone)]
struct BeginReply {
    server_random: [u8; 32],
    session_id: SessionId,
    resumed: bool,
}

/// Input of `setup_session_key`.
#[derive(Debug, Clone)]
struct SetupKeyRequest {
    client_random: [u8; 32],
    encrypted_premaster: Vec<u8>,
    session_id: SessionId,
}

/// Input of `receive_finished`.
#[derive(Debug, Clone)]
struct ReceiveFinishedRequest {
    /// The cleartext handshake messages so far (hello, server hello, and —
    /// unless resumed — the key exchange).
    transcript: Vec<Vec<u8>>,
    /// The sealed client Finished record.
    sealed_client_finished: Vec<u8>,
}

/// Output of `ssl_read`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SslReadReply {
    /// A verified plaintext record.
    Data(Vec<u8>),
    /// A record arrived but failed MAC verification (dropped).
    Rejected,
    /// The connection closed or timed out.
    Closed,
}

/// The registered callgate entry points.
#[derive(Clone, Copy)]
struct Gates {
    begin_handshake: CgEntryId,
    setup_session_key: CgEntryId,
    receive_finished: CgEntryId,
    send_finished: CgEntryId,
    ssl_read: CgEntryId,
    ssl_write: CgEntryId,
}

/// The §5.1.2-partitioned HTTPS server.
pub struct WedgeApache {
    wedge: Wedge,
    pages: PageStore,
    config: ApacheConfig,
    cache: Arc<dyn SessionStore>,
    key_tag: Tag,
    key_buf: SBuf,
    session_tag: Tag,
    finished_tag: Tag,
    session_state: SBuf,
    finished_state: SBuf,
    current_link: LinkSlot,
    public_key: wedge_crypto::RsaPublicKey,
    gates: Gates,
}

impl WedgeApache {
    /// Build the server with its own private session cache.
    pub fn new(
        wedge: Wedge,
        keypair: RsaKeyPair,
        pages: PageStore,
        config: ApacheConfig,
    ) -> Result<WedgeApache, WedgeError> {
        WedgeApache::with_session_cache(
            wedge,
            keypair,
            pages,
            config,
            Arc::new(SharedSessionCache::new()),
        )
    }

    /// [`WedgeApache::with_session_store`] with the concrete in-process
    /// cache (the common case for one machine's sharded front-end).
    pub fn with_session_cache(
        wedge: Wedge,
        keypair: RsaKeyPair,
        pages: PageStore,
        config: ApacheConfig,
        cache: Arc<SharedSessionCache>,
    ) -> Result<WedgeApache, WedgeError> {
        WedgeApache::with_session_store(wedge, keypair, pages, config, cache)
    }

    /// Build the server: allocate the private-key, session-key and
    /// finished-state regions, and register all six callgate entry points.
    /// `cache` is the session-lookup *service* the key callgates consult —
    /// pass one shared [`SharedSessionCache`] to every shard of a sharded
    /// front-end so resumption survives landing on a different shard, or
    /// a `wedge_cachenet::CacheRing` so it survives landing on a different
    /// *machine*; the compartments only ever reach it through the narrow
    /// [`SessionStore`] insert/lookup API, never through tagged memory.
    pub fn with_session_store(
        wedge: Wedge,
        keypair: RsaKeyPair,
        pages: PageStore,
        config: ApacheConfig,
        cache: Arc<dyn SessionStore>,
    ) -> Result<WedgeApache, WedgeError> {
        let root = wedge.root();
        let key_tag = root.tag_new()?;
        let key_buf = root.smalloc_init(key_tag, &serialize_private_key(&keypair))?;
        let session_tag = root.tag_new()?;
        let finished_tag = root.tag_new()?;
        let session_state = root.smalloc(SESSION_STATE_SIZE, session_tag)?;
        let finished_state = root.smalloc(FINISHED_STATE_SIZE, finished_tag)?;

        let kernel = wedge.kernel();
        let gates = Gates {
            begin_handshake: kernel.cgate_register(
                "begin_handshake",
                typed_entry(|ctx: &SthreadCtx, trusted, req: BeginRequest| {
                    let _f = ctx.trace_fn("begin_handshake");
                    let t = trusted
                        .and_then(|t| t.downcast::<KeyGateTrusted>())
                        .ok_or(WedgeError::BadCallgateValue)?;
                    begin_handshake(ctx, t, req)
                }),
            ),
            setup_session_key: kernel.cgate_register(
                "setup_session_key",
                typed_entry(|ctx: &SthreadCtx, trusted, req: SetupKeyRequest| {
                    let _f = ctx.trace_fn("setup_session_key");
                    let t = trusted
                        .and_then(|t| t.downcast::<KeyGateTrusted>())
                        .ok_or(WedgeError::BadCallgateValue)?;
                    setup_session_key(ctx, t, req)
                }),
            ),
            receive_finished: kernel.cgate_register(
                "receive_finished",
                typed_entry(|ctx: &SthreadCtx, trusted, req: ReceiveFinishedRequest| {
                    let _f = ctx.trace_fn("receive_finished");
                    let t = trusted
                        .and_then(|t| t.downcast::<FinishedGateTrusted>())
                        .ok_or(WedgeError::BadCallgateValue)?;
                    receive_finished(ctx, t, req)
                }),
            ),
            send_finished: kernel.cgate_register(
                "send_finished",
                typed_entry(|ctx: &SthreadCtx, trusted, _req: ()| {
                    let _f = ctx.trace_fn("send_finished");
                    let t = trusted
                        .and_then(|t| t.downcast::<FinishedGateTrusted>())
                        .ok_or(WedgeError::BadCallgateValue)?;
                    send_finished(ctx, t)
                }),
            ),
            ssl_read: kernel.cgate_register(
                "ssl_read",
                typed_entry(|ctx: &SthreadCtx, trusted, _req: ()| {
                    let _f = ctx.trace_fn("ssl_read");
                    let t = trusted
                        .and_then(|t| t.downcast::<IoGateTrusted>())
                        .ok_or(WedgeError::BadCallgateValue)?;
                    ssl_read(ctx, t)
                }),
            ),
            ssl_write: kernel.cgate_register(
                "ssl_write",
                typed_entry(|ctx: &SthreadCtx, trusted, plaintext: Vec<u8>| {
                    let _f = ctx.trace_fn("ssl_write");
                    let t = trusted
                        .and_then(|t| t.downcast::<IoGateTrusted>())
                        .ok_or(WedgeError::BadCallgateValue)?;
                    ssl_write(ctx, t, &plaintext)
                }),
            ),
        };

        Ok(WedgeApache {
            wedge,
            pages,
            config,
            cache,
            key_tag,
            key_buf,
            session_tag,
            finished_tag,
            session_state,
            finished_state,
            current_link: Arc::new(Mutex::new(None)),
            public_key: keypair.public,
            gates,
        })
    }

    /// The server's public key.
    pub fn public_key(&self) -> wedge_crypto::RsaPublicKey {
        self.public_key
    }

    /// The private-key region (for attack tests).
    pub fn key_buf(&self) -> SBuf {
        self.key_buf
    }

    /// The session-key region (for attack tests).
    pub fn session_state_buf(&self) -> SBuf {
        self.session_state
    }

    /// The finished-state region (for attack tests).
    pub fn finished_state_buf(&self) -> SBuf {
        self.finished_state
    }

    /// The Wedge runtime backing the server.
    pub fn wedge(&self) -> &Wedge {
        &self.wedge
    }

    /// The session-lookup service this instance consults (shared across
    /// shards — and, when it is a cache ring, across machines).
    pub fn session_cache(&self) -> &Arc<dyn SessionStore> {
        &self.cache
    }

    /// Whether this instance uses recycled callgates.
    pub fn config(&self) -> ApacheConfig {
        self.config
    }

    /// Scrub the per-connection regions before a new connection.
    fn reset_regions(&self) -> Result<(), WedgeError> {
        let root = self.wedge.root();
        root.write(&self.session_state, 0, &SessionState::default().to_bytes())?;
        root.write(
            &self.finished_state,
            0,
            &FinishedState::default().to_bytes(),
        )?;
        Ok(())
    }

    /// The `ssl_handshake` sthread policy (attack tests build exploited
    /// sthreads with exactly this policy).
    pub fn handshake_policy(&self) -> SecurityPolicy {
        let mut key_gate = SecurityPolicy::deny_all();
        key_gate.sc_mem_add(self.key_tag, MemProt::Read);
        key_gate.sc_mem_add(self.session_tag, MemProt::ReadWrite);

        let mut finished_gate = SecurityPolicy::deny_all();
        finished_gate.sc_mem_add(self.session_tag, MemProt::ReadWrite);
        finished_gate.sc_mem_add(self.finished_tag, MemProt::ReadWrite);

        let key_trusted = || {
            TrustedArg::new(KeyGateTrusted {
                key_buf: self.key_buf,
                session_state: self.session_state,
                cache: self.cache.clone(),
            })
        };
        let finished_trusted = || {
            TrustedArg::new(FinishedGateTrusted {
                session_state: self.session_state,
                finished_state: self.finished_state,
            })
        };

        let mut policy = SecurityPolicy::deny_all();
        policy.sc_cgate_add(
            self.gates.begin_handshake,
            key_gate.clone(),
            Some(key_trusted()),
        );
        policy.sc_cgate_add(self.gates.setup_session_key, key_gate, Some(key_trusted()));
        policy.sc_cgate_add(
            self.gates.receive_finished,
            finished_gate.clone(),
            Some(finished_trusted()),
        );
        policy.sc_cgate_add(
            self.gates.send_finished,
            finished_gate,
            Some(finished_trusted()),
        );
        policy
    }

    /// The `client_handler` sthread policy.
    pub fn client_handler_policy(&self) -> SecurityPolicy {
        let mut io_gate = SecurityPolicy::deny_all();
        io_gate.sc_mem_add(self.session_tag, MemProt::ReadWrite);
        let io_trusted = || {
            TrustedArg::new(IoGateTrusted {
                session_state: self.session_state,
                link: self.current_link.clone(),
            })
        };
        let mut policy = SecurityPolicy::deny_all();
        policy.sc_cgate_add(self.gates.ssl_read, io_gate.clone(), Some(io_trusted()));
        policy.sc_cgate_add(self.gates.ssl_write, io_gate, Some(io_trusted()));
        policy
    }

    /// Serve one connection end to end (master logic, Figure 3): run the
    /// handshake sthread, and only if it exits successfully start the client
    /// handler sthread.
    pub fn serve_connection(&self, link: Duplex) -> Result<ConnectionReport, WedgeError> {
        let link = Arc::new(link);
        self.reset_regions()?;
        *self.current_link.lock() = Some(link.clone());
        let mut report = ConnectionReport::default();

        // Phase 1: the SSL handshake sthread. The span covers spawn
        // through join — the full network-facing handshake phase — and
        // costs one relaxed load when the serving thread is untraced.
        let mut span = wedge_telemetry::trace::span(wedge_telemetry::SpanKind::Handshake, 0);
        let handshake_policy = self.handshake_policy();
        let gates = self.gates;
        let recycled = self.config.recycled;
        let handshake_link = link.clone();
        let handshake =
            self.wedge
                .root()
                .sthread_create("ssl-handshake", &handshake_policy, move |ctx| {
                    handshake_main(ctx, &handshake_link, gates, recycled)
                })?;
        let outcome = handshake.join()?;
        if let Some(span) = span.as_mut() {
            span.set_ok(outcome.is_ok());
        }
        let Ok(outcome) = outcome else {
            *self.current_link.lock() = None;
            return Ok(report);
        };
        report.handshake_ok = true;
        report.resumed = outcome.resumed;
        if let Some(span) = span.as_mut() {
            span.set_detail(outcome.resumed as u32);
        }
        drop(span);

        // Phase 2: the client handler sthread (no network, no session key).
        let handler_policy = self.client_handler_policy();
        let pages = self.pages.clone();
        let handler =
            self.wedge
                .root()
                .sthread_create("client-handler", &handler_policy, move |ctx| {
                    client_handler_main(ctx, gates, recycled, &pages)
                })?;
        let (served, rejected) = handler.join()?;
        report.requests = served;
        report.rejected_records = rejected;
        // The master (root) records the derived-key fingerprint so callers
        // can compare both sides of a (possibly cross-shard-resumed)
        // handshake without touching the keys themselves.
        let state_bytes = self.wedge.root().read_all(&self.session_state)?;
        if let Some(state) = SessionState::from_bytes(&state_bytes) {
            if state.established {
                report.key_fingerprint = state.keys().fingerprint();
            }
        }
        *self.current_link.lock() = None;
        Ok(report)
    }
}

/// Outcome of the handshake sthread.
#[derive(Debug, Clone)]
struct HandshakeOutcome {
    resumed: bool,
}

fn call<T: std::any::Any>(
    ctx: &SthreadCtx,
    recycled: bool,
    entry: CgEntryId,
    input: CgInput,
) -> Result<T, WedgeError> {
    let no_extra = SecurityPolicy::deny_all();
    if recycled {
        ctx.cgate_recycled_expect::<T>(entry, &no_extra, input)
    } else {
        ctx.cgate_expect::<T>(entry, &no_extra, input)
    }
}

/// The network-facing handshake sthread (phase 1).
fn handshake_main(
    ctx: &SthreadCtx,
    link: &Duplex,
    gates: Gates,
    recycled: bool,
) -> Result<HandshakeOutcome, String> {
    let _frame = ctx.trace_fn("ssl_handshake");
    let recv = |_what: &str| -> Result<Vec<u8>, String> {
        link.recv(RecvTimeout::After(HANDSHAKE_TIMEOUT))
            .map_err(|e| e.to_string())
    };

    let hello_bytes = recv("client hello")?;
    let hello = ClientHello::decode(&hello_bytes).map_err(|e| e.to_string())?;

    let begin: BeginReply = call(
        ctx,
        recycled,
        gates.begin_handshake,
        Box::new(BeginRequest {
            session_offer: hello.session_id,
            client_random: hello.client_random,
        }),
    )
    .map_err(|e| e.to_string())?;

    let server_hello = ServerHello {
        server_random: begin.server_random,
        session_id: begin.session_id,
        resumed: begin.resumed,
    };
    let server_hello_bytes = server_hello.encode();
    link.send(&server_hello_bytes).map_err(|e| e.to_string())?;
    let mut transcript = vec![hello_bytes, server_hello_bytes];

    if !begin.resumed {
        let kx_bytes = recv("client key exchange")?;
        let kx = ClientKeyExchange::decode(&kx_bytes).map_err(|e| e.to_string())?;
        transcript.push(kx_bytes);
        let ok: bool = call(
            ctx,
            recycled,
            gates.setup_session_key,
            Box::new(SetupKeyRequest {
                client_random: hello.client_random,
                encrypted_premaster: kx.encrypted_premaster,
                session_id: begin.session_id,
            }),
        )
        .map_err(|e| e.to_string())?;
        if !ok {
            return Err("setup_session_key rejected the premaster".to_string());
        }
    }

    let sealed_client_finished = recv("client finished")?;
    let verified: bool = call(
        ctx,
        recycled,
        gates.receive_finished,
        Box::new(ReceiveFinishedRequest {
            transcript: transcript.clone(),
            sealed_client_finished,
        }),
    )
    .map_err(|e| e.to_string())?;
    if !verified {
        return Err("client Finished did not verify".to_string());
    }

    let sealed_server_finished: Vec<u8> =
        call(ctx, recycled, gates.send_finished, Box::new(())).map_err(|e| e.to_string())?;
    link.send(&sealed_server_finished)
        .map_err(|e| e.to_string())?;

    Ok(HandshakeOutcome {
        resumed: begin.resumed,
    })
}

/// The client handler sthread (phase 2). It reads verified plaintext
/// through `ssl_read` until the connection closes; records that fail MAC
/// verification (e.g. attacker-injected data) are counted and dropped and
/// never reach the request-handling code.
fn client_handler_main(
    ctx: &SthreadCtx,
    gates: Gates,
    recycled: bool,
    pages: &PageStore,
) -> (u32, u32) {
    let _frame = ctx.trace_fn("client_handler");
    let mut served = 0u32;
    let mut rejected = 0u32;
    loop {
        match call::<SslReadReply>(ctx, recycled, gates.ssl_read, Box::new(())) {
            Ok(SslReadReply::Data(plaintext)) => {
                if let Some(request) = HttpRequest::parse(&plaintext) {
                    let response = pages.respond(&request);
                    if call::<bool>(ctx, recycled, gates.ssl_write, Box::new(response))
                        .unwrap_or(false)
                    {
                        served += 1;
                    }
                } else {
                    break;
                }
            }
            Ok(SslReadReply::Rejected) => rejected += 1,
            Ok(SslReadReply::Closed) | Err(_) => break,
        }
    }
    (served, rejected)
}

// ---------------------------------------------------------------------
// Callgate bodies
// ---------------------------------------------------------------------

fn load_session(ctx: &SthreadCtx, buf: &SBuf) -> Result<SessionState, WedgeError> {
    let bytes = ctx.read_all(buf)?;
    SessionState::from_bytes(&bytes).ok_or(WedgeError::BadCallgateValue)
}

fn store_session(ctx: &SthreadCtx, buf: &SBuf, state: &SessionState) -> Result<(), WedgeError> {
    ctx.write(buf, 0, &state.to_bytes())
}

fn begin_handshake(
    ctx: &SthreadCtx,
    trusted: &KeyGateTrusted,
    request: BeginRequest,
) -> Result<BeginReply, WedgeError> {
    let mut rng = WedgeRng::from_entropy();
    // The callgate — not the caller — generates the server's random
    // contribution (the §5.1.1 defence against session-key influence).
    let server_random = fresh_random(&mut rng);
    let mut state = SessionState {
        server_random,
        ..SessionState::default()
    };

    let resumed_premaster = request
        .session_offer
        .and_then(|id| trusted.cache.lookup(&id));
    let resumed = resumed_premaster.is_some();
    let session_id = request
        .session_offer
        .filter(|_| resumed)
        .unwrap_or_else(|| fresh_session_id(&mut rng));
    if let Some(premaster) = resumed_premaster {
        let keys = SessionKeys::derive(&premaster, &request.client_random, &server_random);
        state.install_keys(&premaster, &keys);
    }
    store_session(ctx, &trusted.session_state, &state)?;
    Ok(BeginReply {
        server_random,
        session_id,
        resumed,
    })
}

fn parse_private_key(bytes: &[u8]) -> Option<wedge_crypto::RsaPrivateKey> {
    let rest = bytes.strip_prefix(b"RSA-PRIVATE-KEY:")?;
    if rest.len() < 16 {
        return None;
    }
    Some(wedge_crypto::RsaPrivateKey {
        n: u64::from_le_bytes(rest[0..8].try_into().ok()?),
        d: u64::from_le_bytes(rest[8..16].try_into().ok()?),
    })
}

fn setup_session_key(
    ctx: &SthreadCtx,
    trusted: &KeyGateTrusted,
    request: SetupKeyRequest,
) -> Result<bool, WedgeError> {
    let mut state = load_session(ctx, &trusted.session_state)?;
    // Only this callgate's policy includes the private-key tag.
    let key_bytes = ctx.read_all(&trusted.key_buf)?;
    let Some(private) = parse_private_key(&key_bytes) else {
        return Ok(false);
    };
    let Ok(premaster) = private.decrypt(&request.encrypted_premaster) else {
        return Ok(false);
    };
    let keys = SessionKeys::derive(&premaster, &request.client_random, &state.server_random);
    state.install_keys(&premaster, &keys);
    store_session(ctx, &trusted.session_state, &state)?;
    trusted.cache.insert(request.session_id, premaster);
    Ok(true)
}

fn receive_finished(
    ctx: &SthreadCtx,
    trusted: &FinishedGateTrusted,
    request: ReceiveFinishedRequest,
) -> Result<bool, WedgeError> {
    let mut state = load_session(ctx, &trusted.session_state)?;
    if !state.established {
        return Ok(false);
    }
    let keys = state.keys();
    let mut from_client = RecordLayer::resume(
        &keys.material.client_write_key,
        &keys.material.client_mac_key,
        0,
        state.recv_seq,
    );
    let Ok(plaintext) = from_client.open(&request.sealed_client_finished) else {
        // An exploited handshake sthread passing arbitrary ciphertext (e.g.
        // traffic captured from the legitimate client) learns nothing: the
        // cleartext is never returned.
        return Ok(false);
    };
    let Ok(finished) = Finished::decode(&plaintext) else {
        return Ok(false);
    };
    let th = transcript_hash(&request.transcript);
    let expected = finished_verify_data(&keys.master_secret, CLIENT_FINISHED_LABEL, &th);
    if finished.verify_data != expected {
        return Ok(false);
    }
    // Record the post-client-Finished transcript hash for send_finished.
    let mut full_transcript = request.transcript.clone();
    full_transcript.push(plaintext);
    let final_hash = transcript_hash(&full_transcript);
    state.recv_seq = from_client.received();
    store_session(ctx, &trusted.session_state, &state)?;
    ctx.write(
        &trusted.finished_state,
        0,
        &FinishedState {
            transcript_hash: final_hash,
            client_verified: true,
        }
        .to_bytes(),
    )?;
    Ok(true)
}

fn send_finished(ctx: &SthreadCtx, trusted: &FinishedGateTrusted) -> Result<Vec<u8>, WedgeError> {
    let mut state = load_session(ctx, &trusted.session_state)?;
    let finished_bytes = ctx.read_all(&trusted.finished_state)?;
    let finished_state =
        FinishedState::from_bytes(&finished_bytes).ok_or(WedgeError::BadCallgateValue)?;
    if !state.established || !finished_state.client_verified {
        return Err(WedgeError::InvalidOperation(
            "send_finished before receive_finished".to_string(),
        ));
    }
    let keys = state.keys();
    let verify_data = finished_verify_data(
        &keys.master_secret,
        SERVER_FINISHED_LABEL,
        &finished_state.transcript_hash,
    );
    let mut to_client = RecordLayer::resume(
        &keys.material.server_write_key,
        &keys.material.server_mac_key,
        state.send_seq,
        0,
    );
    let sealed = to_client.seal(&Finished { verify_data }.encode());
    state.send_seq = to_client.sent();
    store_session(ctx, &trusted.session_state, &state)?;
    Ok(sealed)
}

fn ssl_read(ctx: &SthreadCtx, trusted: &IoGateTrusted) -> Result<SslReadReply, WedgeError> {
    let mut state = load_session(ctx, &trusted.session_state)?;
    if !state.established {
        return Ok(SslReadReply::Closed);
    }
    let Some(link) = trusted.link.lock().clone() else {
        return Ok(SslReadReply::Closed);
    };
    let keys = state.keys();
    let Ok(record) = link.recv(RecvTimeout::After(HANDSHAKE_TIMEOUT)) else {
        return Ok(SslReadReply::Closed);
    };
    let mut from_client = RecordLayer::resume(
        &keys.material.client_write_key,
        &keys.material.client_mac_key,
        0,
        state.recv_seq,
    );
    match from_client.open(&record) {
        Ok(plaintext) => {
            state.recv_seq = from_client.received();
            store_session(ctx, &trusted.session_state, &state)?;
            Ok(SslReadReply::Data(plaintext))
        }
        Err(_) => Ok(SslReadReply::Rejected),
    }
}

fn ssl_write(
    ctx: &SthreadCtx,
    trusted: &IoGateTrusted,
    plaintext: &[u8],
) -> Result<bool, WedgeError> {
    let mut state = load_session(ctx, &trusted.session_state)?;
    if !state.established {
        return Ok(false);
    }
    let Some(link) = trusted.link.lock().clone() else {
        return Ok(false);
    };
    let keys = state.keys();
    let mut to_client = RecordLayer::resume(
        &keys.material.server_write_key,
        &keys.material.server_mac_key,
        state.send_seq,
        0,
    );
    let sealed = to_client.seal(plaintext);
    state.send_seq = to_client.sent();
    store_session(ctx, &trusted.session_state, &state)?;
    Ok(link.send(&sealed).is_ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use wedge_core::Exploit;
    use wedge_net::duplex_pair;
    use wedge_tls::TlsClient;

    fn keypair(seed: u64) -> RsaKeyPair {
        RsaKeyPair::generate(&mut WedgeRng::from_seed(seed))
    }

    fn run_one_request(
        server: &WedgeApache,
        client: &mut TlsClient,
        path: &str,
    ) -> (ConnectionReport, Vec<u8>) {
        let (client_link, server_link) = duplex_pair("client", "server");
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| server.serve_connection(server_link).unwrap());
            let mut conn = client.connect(&client_link).unwrap();
            conn.send(
                &client_link,
                format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes(),
            )
            .unwrap();
            let response = conn.recv(&client_link).unwrap();
            drop(conn);
            drop(client_link);
            (handle.join().unwrap(), response)
        })
    }

    #[test]
    fn full_connection_with_standard_callgates() {
        let server = WedgeApache::new(
            Wedge::init(),
            keypair(1),
            PageStore::sample(),
            ApacheConfig { recycled: false },
        )
        .unwrap();
        let mut client = TlsClient::new(server.public_key(), WedgeRng::from_seed(2));
        let (report, response) = run_one_request(&server, &mut client, "/index.html");
        assert!(report.handshake_ok);
        assert!(!report.resumed);
        assert_eq!(report.requests, 1);
        assert!(response.starts_with(b"HTTP/1.0 200 OK"));
        // Each request creates two sthreads and invokes several callgates.
        let stats = server.wedge().kernel().stats();
        assert_eq!(stats.sthreads_created, 2);
        assert!(stats.callgate_invocations >= 5);
    }

    #[test]
    fn full_connection_with_recycled_callgates_and_resumption() {
        let server = WedgeApache::new(
            Wedge::init(),
            keypair(3),
            PageStore::sample(),
            ApacheConfig { recycled: true },
        )
        .unwrap();
        let mut client = TlsClient::new(server.public_key(), WedgeRng::from_seed(4));
        let (first, response) = run_one_request(&server, &mut client, "/");
        assert!(first.handshake_ok, "first recycled connection must work");
        assert!(!first.resumed);
        assert!(response.starts_with(b"HTTP/1.0 200 OK"));
        let (second, response2) = run_one_request(&server, &mut client, "/account");
        assert!(second.handshake_ok);
        assert!(
            second.resumed,
            "second connection must hit the session cache"
        );
        assert!(response2.windows(7).any(|w| w == b"balance"));
        assert!(server.wedge().kernel().stats().recycled_invocations > 0);
    }

    #[test]
    fn exploited_handshake_sthread_cannot_reach_key_or_session_state() {
        let server = WedgeApache::new(
            Wedge::init(),
            keypair(5),
            PageStore::sample(),
            ApacheConfig::default(),
        )
        .unwrap();
        let policy = server.handshake_policy();
        let key_buf = server.key_buf();
        let session_state = server.session_state_buf();
        let finished_state = server.finished_state_buf();
        let handle = server
            .wedge()
            .root()
            .sthread_create("exploited-handshake", &policy, move |ctx| {
                let mut exploit = Exploit::seize(ctx);
                (
                    exploit.try_read(&key_buf).is_err(),
                    exploit.try_read(&session_state).is_err(),
                    exploit.try_read(&finished_state).is_err(),
                )
            })
            .unwrap();
        let (key_denied, session_denied, finished_denied) = handle.join().unwrap();
        assert!(key_denied, "private key must be unreachable");
        assert!(session_denied, "session key region must be unreachable");
        assert!(finished_denied, "finished_state must be unreachable");
    }

    #[test]
    fn client_handler_has_no_network_and_no_session_key() {
        let server = WedgeApache::new(
            Wedge::init(),
            keypair(6),
            PageStore::sample(),
            ApacheConfig::default(),
        )
        .unwrap();
        let policy = server.client_handler_policy();
        // The policy grants no memory at all; only the two IO callgates.
        assert!(policy.mem_grants().is_empty());
        assert_eq!(policy.callgate_grants().len(), 2);
        assert!(policy.mem_grant(server.session_state_buf().tag).is_none());
    }
}
