//! Per-connection session state shared *between callgates* through tagged
//! memory.
//!
//! In the §5.1.2 partitioning the session key and related secrets live in
//! tagged regions reachable only by the privileged callgates (Figure 4 and
//! Figure 5). Because each callgate invocation is a separate short-lived
//! compartment, the state must be serialised into those regions between
//! invocations; this module defines the fixed-size encodings.

use wedge_crypto::KeyMaterial;
use wedge_tls::SessionKeys;

/// Size reserved in tagged memory for a serialised [`SessionState`].
pub const SESSION_STATE_SIZE: usize = 512;
/// Size reserved in tagged memory for a serialised [`FinishedState`].
pub const FINISHED_STATE_SIZE: usize = 64;

/// The secrets of one SSL connection, as stored in the `session key` tagged
/// region.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SessionState {
    /// The server's random contribution (generated inside the callgate,
    /// never chosen by the worker — the §5.1.1 defence).
    pub server_random: [u8; 32],
    /// The premaster secret recovered with the private key (or from the
    /// session cache).
    pub premaster: Vec<u8>,
    /// The derived master secret.
    pub master_secret: Vec<u8>,
    /// Client→server record encryption key.
    pub client_write_key: Vec<u8>,
    /// Server→client record encryption key.
    pub server_write_key: Vec<u8>,
    /// Client→server MAC key.
    pub client_mac_key: Vec<u8>,
    /// Server→client MAC key.
    pub server_mac_key: Vec<u8>,
    /// Sequence number of the next server→client record.
    pub send_seq: u64,
    /// Sequence number of the next expected client→server record.
    pub recv_seq: u64,
    /// Has key derivation completed?
    pub established: bool,
}

fn put_field(out: &mut Vec<u8>, data: &[u8]) {
    out.extend_from_slice(&(data.len() as u16).to_be_bytes());
    out.extend_from_slice(data);
}

fn get_field(input: &mut &[u8]) -> Option<Vec<u8>> {
    if input.len() < 2 {
        return None;
    }
    let len = u16::from_be_bytes([input[0], input[1]]) as usize;
    if input.len() < 2 + len {
        return None;
    }
    let out = input[2..2 + len].to_vec();
    *input = &input[2 + len..];
    Some(out)
}

impl SessionState {
    /// Populate the key fields from freshly derived session keys.
    pub fn install_keys(&mut self, premaster: &[u8], keys: &SessionKeys) {
        self.premaster = premaster.to_vec();
        self.master_secret = keys.master_secret.clone();
        self.client_write_key = keys.material.client_write_key.clone();
        self.server_write_key = keys.material.server_write_key.clone();
        self.client_mac_key = keys.material.client_mac_key.clone();
        self.server_mac_key = keys.material.server_mac_key.clone();
        self.established = true;
    }

    /// Reconstruct the derived-keys view.
    pub fn keys(&self) -> SessionKeys {
        SessionKeys {
            master_secret: self.master_secret.clone(),
            material: KeyMaterial {
                client_write_key: self.client_write_key.clone(),
                server_write_key: self.server_write_key.clone(),
                client_mac_key: self.client_mac_key.clone(),
                server_mac_key: self.server_mac_key.clone(),
            },
        }
    }

    /// Serialise to the fixed-size tagged-memory representation.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(SESSION_STATE_SIZE);
        out.push(u8::from(self.established));
        out.extend_from_slice(&self.server_random);
        out.extend_from_slice(&self.send_seq.to_be_bytes());
        out.extend_from_slice(&self.recv_seq.to_be_bytes());
        put_field(&mut out, &self.premaster);
        put_field(&mut out, &self.master_secret);
        put_field(&mut out, &self.client_write_key);
        put_field(&mut out, &self.server_write_key);
        put_field(&mut out, &self.client_mac_key);
        put_field(&mut out, &self.server_mac_key);
        assert!(
            out.len() <= SESSION_STATE_SIZE,
            "session state exceeds its reserved region"
        );
        out.resize(SESSION_STATE_SIZE, 0);
        out
    }

    /// Parse the tagged-memory representation.
    pub fn from_bytes(data: &[u8]) -> Option<SessionState> {
        if data.len() < 49 {
            return None;
        }
        let established = data[0] != 0;
        let mut server_random = [0u8; 32];
        server_random.copy_from_slice(&data[1..33]);
        let send_seq = u64::from_be_bytes(data[33..41].try_into().ok()?);
        let recv_seq = u64::from_be_bytes(data[41..49].try_into().ok()?);
        let mut rest = &data[49..];
        Some(SessionState {
            server_random,
            premaster: get_field(&mut rest)?,
            master_secret: get_field(&mut rest)?,
            client_write_key: get_field(&mut rest)?,
            server_write_key: get_field(&mut rest)?,
            client_mac_key: get_field(&mut rest)?,
            server_mac_key: get_field(&mut rest)?,
            send_seq,
            recv_seq,
            established,
        })
    }
}

/// The `finished_state` tagged region: the running transcript hash shared
/// only by the `receive_finished` and `send_finished` callgates.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FinishedState {
    /// Hash covering all handshake messages up to and including the
    /// client's Finished message.
    pub transcript_hash: [u8; 32],
    /// Has `receive_finished` validated the client's Finished yet?
    pub client_verified: bool,
}

impl FinishedState {
    /// Serialise to the fixed-size representation.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(FINISHED_STATE_SIZE);
        out.push(u8::from(self.client_verified));
        out.extend_from_slice(&self.transcript_hash);
        out.resize(FINISHED_STATE_SIZE, 0);
        out
    }

    /// Parse the fixed-size representation.
    pub fn from_bytes(data: &[u8]) -> Option<FinishedState> {
        if data.len() < 33 {
            return None;
        }
        let mut transcript_hash = [0u8; 32];
        transcript_hash.copy_from_slice(&data[1..33]);
        Some(FinishedState {
            transcript_hash,
            client_verified: data[0] != 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_state_roundtrips() {
        let keys = SessionKeys::derive(b"premaster-secret", b"cr", b"sr");
        let mut state = SessionState {
            server_random: [7u8; 32],
            send_seq: 3,
            recv_seq: 5,
            ..SessionState::default()
        };
        state.install_keys(b"premaster-secret", &keys);
        let bytes = state.to_bytes();
        assert_eq!(bytes.len(), SESSION_STATE_SIZE);
        let parsed = SessionState::from_bytes(&bytes).unwrap();
        assert_eq!(parsed, state);
        assert_eq!(parsed.keys().fingerprint(), keys.fingerprint());
    }

    #[test]
    fn default_state_is_not_established() {
        let state = SessionState::default();
        assert!(!state.established);
        let parsed = SessionState::from_bytes(&state.to_bytes()).unwrap();
        assert!(!parsed.established);
    }

    #[test]
    fn finished_state_roundtrips() {
        let state = FinishedState {
            transcript_hash: [9u8; 32],
            client_verified: true,
        };
        let parsed = FinishedState::from_bytes(&state.to_bytes()).unwrap();
        assert_eq!(parsed, state);
    }

    #[test]
    fn truncated_state_is_rejected() {
        assert!(SessionState::from_bytes(&[0u8; 10]).is_none());
        assert!(FinishedState::from_bytes(&[0u8; 5]).is_none());
    }
}
