//! Attack harness helpers shared by the security integration tests and the
//! `mitm_attack` example.
//!
//! The attacker model is the paper's: an exploit grants the attacker the
//! privileges of the compartment it lands in (modelled by
//! [`wedge_core::Exploit`]), and — in the §5.1.2 threat model — the attacker
//! additionally controls the network path as a man in the middle
//! ([`wedge_net::Mitm`]). These helpers answer the question the paper's
//! defences are judged by: *given what the attacker has observed and what
//! the exploited compartment can reach, can the attacker recover the
//! client's plaintext or keys?*

use wedge_crypto::KeyMaterial;
use wedge_net::{Direction, Mitm};
use wedge_tls::RecordLayer;

/// Outcome of an attack scenario, as asserted by the security tests.
#[derive(Debug, Clone, Default)]
pub struct AttackOutcome {
    /// Did the attacker obtain the server's RSA private key bytes?
    pub private_key_leaked: bool,
    /// Did the attacker obtain the connection's session/MAC keys?
    pub session_key_obtained: bool,
    /// Could the attacker decrypt the legitimate client's application data?
    pub client_plaintext_recovered: bool,
    /// Did attacker-injected records reach application code?
    pub injected_data_accepted: bool,
    /// Did the legitimate handshake complete despite the attack?
    pub handshake_completed: bool,
    /// Free-form notes for the example binaries.
    pub notes: Vec<String>,
}

/// Given key material the attacker somehow obtained and the traffic a
/// man-in-the-middle observed, try to decrypt every client→server record
/// and return the recovered plaintexts. This is what an attacker does after
/// an exploited compartment leaks the session key (the §5.1.1 partitioning's
/// residual weakness).
pub fn decrypt_observed_client_records(keys: &KeyMaterial, mitm: &Mitm) -> Vec<Vec<u8>> {
    let mut recovered = Vec::new();
    let records: Vec<Vec<u8>> = mitm
        .observed()
        .entries()
        .iter()
        .filter(|e| e.direction == Direction::ClientToServer)
        .map(|e| e.payload.clone())
        .collect();
    // The attacker does not know which observed message is which record, so
    // it tries every message at every plausible sequence number.
    for record in &records {
        for seq in 0..records.len() as u64 {
            let mut layer =
                RecordLayer::resume(&keys.client_write_key, &keys.client_mac_key, 0, seq);
            if let Ok(plaintext) = layer.open(record) {
                recovered.push(plaintext);
                break;
            }
        }
    }
    recovered
}

/// Does any recovered plaintext contain `needle`?
pub fn plaintexts_contain(plaintexts: &[Vec<u8>], needle: &[u8]) -> bool {
    !needle.is_empty()
        && plaintexts
            .iter()
            .any(|p| p.windows(needle.len()).any(|w| w == needle))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wedge_crypto::kdf::derive_key_block;

    #[test]
    fn decryption_with_correct_keys_recovers_plaintext() {
        let keys = derive_key_block(b"pm", b"cr", b"sr");
        let (client, mut mitm, server) = Mitm::interpose();
        let mut layer = RecordLayer::new(&keys.client_write_key, &keys.client_mac_key);
        client.send(&layer.seal(b"GET /secret HTTP/1.0")).unwrap();
        mitm.forward_all_pending();
        let _ = server.try_recv();

        let recovered = decrypt_observed_client_records(&keys, &mitm);
        assert!(plaintexts_contain(&recovered, b"GET /secret"));
    }

    #[test]
    fn decryption_with_wrong_keys_recovers_nothing() {
        let keys = derive_key_block(b"pm", b"cr", b"sr");
        let wrong = derive_key_block(b"other", b"cr", b"sr");
        let (client, mut mitm, _server) = Mitm::interpose();
        let mut layer = RecordLayer::new(&keys.client_write_key, &keys.client_mac_key);
        client.send(&layer.seal(b"GET /secret HTTP/1.0")).unwrap();
        mitm.forward_all_pending();

        let recovered = decrypt_observed_client_records(&wrong, &mitm);
        assert!(recovered.is_empty());
        assert!(!plaintexts_contain(&recovered, b"GET /secret"));
    }
}
