//! Partitioning metrics (§5.1 / §5.2 "Partitioning Metrics" paragraphs).
//!
//! The paper reports, for each partitioned application, how many lines of
//! code end up executing inside callgates (trusted) versus inside sthreads
//! (untrusted), and how many lines had to change. The absolute numbers come
//! from Apache 1.3.19 + OpenSSL 0.9.6 and OpenSSH 3.1p1; this reproduction
//! reports (a) the paper's numbers, for reference, and (b) the same metric
//! measured over its own source code, so the *ratio* — most of the code
//! runs unprivileged — can be checked.

/// Lines-of-code partitioning metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitioningMetrics {
    /// Lines that execute inside callgates (trusted with respect to the
    /// protected secrets).
    pub callgate_loc: usize,
    /// Lines that execute inside unprivileged sthreads.
    pub sthread_loc: usize,
    /// Lines changed to introduce the partitioning.
    pub changed_loc: usize,
    /// Total application lines the changed lines are a fraction of.
    pub total_loc: usize,
}

impl PartitioningMetrics {
    /// Fraction of partitioned code that runs inside callgates.
    pub fn trusted_fraction(&self) -> f64 {
        let total = self.callgate_loc + self.sthread_loc;
        if total == 0 {
            0.0
        } else {
            self.callgate_loc as f64 / total as f64
        }
    }

    /// Fraction of the code base that had to change.
    pub fn change_fraction(&self) -> f64 {
        if self.total_loc == 0 {
            0.0
        } else {
            self.changed_loc as f64 / self.total_loc as f64
        }
    }

    /// The paper's numbers for the man-in-the-middle-hardened
    /// Apache/OpenSSL partitioning (§5.1): ≈16 K lines in callgates, ≈45 K
    /// in sthreads, ≈1700 changed out of ≈340 K (0.5%).
    pub fn paper_apache() -> PartitioningMetrics {
        PartitioningMetrics {
            callgate_loc: 16_000,
            sthread_loc: 45_000,
            changed_loc: 1_700,
            total_loc: 340_000,
        }
    }

    /// The paper's numbers for OpenSSH (§5.2): ≈3300 lines in callgates,
    /// ≈14 K in sthreads, 564 changed out of ≈28 K (2%).
    pub fn paper_openssh() -> PartitioningMetrics {
        PartitioningMetrics {
            callgate_loc: 3_300,
            sthread_loc: 14_000,
            changed_loc: 564,
            total_loc: 28_000,
        }
    }
}

fn count_lines(source: &str) -> usize {
    source.lines().count()
}

/// Count a source region's lines between two marker substrings (used to
/// split this crate's own source into callgate code vs sthread code).
fn lines_between(source: &str, start_marker: &str, end_marker: &str) -> usize {
    let Some(start) = source.find(start_marker) else {
        return 0;
    };
    let Some(end) = source[start..].find(end_marker) else {
        return count_lines(&source[start..]);
    };
    count_lines(&source[start..start + end])
}

/// Measure the same metric over this reproduction's Apache sources: lines in
/// the callgate bodies versus lines in the sthread bodies of the §5.1.2
/// partitioning.
pub fn measured_apache() -> PartitioningMetrics {
    let partitioned = include_str!("partitioned.rs");
    let simple = include_str!("simple.rs");
    let vanilla = include_str!("vanilla.rs");
    let http = include_str!("http.rs");
    let state = include_str!("state.rs");

    // Callgate code: from the "Callgate bodies" marker to the test module.
    let callgate_loc = lines_between(partitioned, "// Callgate bodies", "#[cfg(test)]")
        + lines_between(
            simple,
            "/// The privileged callgate body.",
            "/// The unprivileged per-connection worker.",
        );
    // Sthread code: the handshake and client-handler sthread bodies plus the
    // protocol-parsing code they use.
    let sthread_loc = lines_between(
        partitioned,
        "/// The network-facing handshake sthread",
        "// Callgate bodies",
    ) + lines_between(
        simple,
        "/// The unprivileged per-connection worker.",
        "#[cfg(test)]",
    ) + count_lines(http);
    // "Changed" lines: the partitioning-specific glue (policies, regions,
    // state serialisation) as opposed to protocol logic shared with vanilla.
    let changed_loc = lines_between(
        partitioned,
        "impl WedgeApache {",
        "/// Outcome of the handshake sthread.",
    ) + count_lines(state);
    let total_loc = count_lines(partitioned)
        + count_lines(simple)
        + count_lines(vanilla)
        + count_lines(http)
        + count_lines(state);

    PartitioningMetrics {
        callgate_loc,
        sthread_loc,
        changed_loc,
        total_loc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_numbers_match_the_text() {
        let apache = PartitioningMetrics::paper_apache();
        // "reduces the quantity of trusted, network-facing code ... by just
        // under two-thirds": callgates are ~26% of the partitioned code.
        assert!(apache.trusted_fraction() < 0.34);
        assert!(apache.change_fraction() < 0.01);

        let ssh = PartitioningMetrics::paper_openssh();
        // "reduced the quantity of privileged code by over 75%".
        assert!(ssh.trusted_fraction() < 0.25);
        assert!((ssh.change_fraction() - 0.02).abs() < 0.005);
    }

    #[test]
    fn measured_metrics_have_the_same_shape() {
        let measured = measured_apache();
        assert!(measured.callgate_loc > 0);
        assert!(measured.sthread_loc > 0);
        // The defining property: most partitioned code runs unprivileged.
        assert!(
            measured.trusted_fraction() < 0.5,
            "callgate code must be the minority: {measured:?}"
        );
        assert!(measured.total_loc > measured.callgate_loc + measured.sthread_loc / 2);
    }

    #[test]
    fn fraction_helpers_handle_zero() {
        let zero = PartitioningMetrics {
            callgate_loc: 0,
            sthread_loc: 0,
            changed_loc: 0,
            total_loc: 0,
        };
        assert_eq!(zero.trusted_fraction(), 0.0);
        assert_eq!(zero.change_fraction(), 0.0);
    }
}
