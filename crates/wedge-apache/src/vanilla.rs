//! The monolithic Apache/OpenSSL baseline ("Vanilla" in Table 2).
//!
//! Everything — the RSA private key, the session cache, key derivation and
//! request parsing — lives in a single compartment, exactly like unmodified
//! Apache with mod_ssl. The baseline exists for two purposes: the Table 2
//! throughput comparison, and the §5.1 attack demonstration that an exploit
//! of the network-facing code discloses the private key.

use std::sync::Arc;

use parking_lot::Mutex;

use wedge_core::{MemProt, SBuf, SecurityPolicy, Tag, Wedge, WedgeError};
use wedge_crypto::{RsaKeyPair, WedgeRng};
use wedge_net::Duplex;
use wedge_tls::handshake::server_handshake;
use wedge_tls::SessionCache;

use crate::http::{HttpRequest, PageStore};

/// Serialise a private key into the bytes placed in the key's memory region
/// (what an exploit would exfiltrate).
pub fn serialize_private_key(keypair: &RsaKeyPair) -> Vec<u8> {
    let mut out = b"RSA-PRIVATE-KEY:".to_vec();
    out.extend_from_slice(&keypair.private.n.to_le_bytes());
    out.extend_from_slice(&keypair.private.d.to_le_bytes());
    out
}

/// Outcome of serving one connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeReport {
    /// Did the handshake resume a cached session?
    pub resumed: bool,
    /// Number of requests served on the connection.
    pub requests: u32,
}

/// The monolithic HTTPS server.
pub struct VanillaApache {
    wedge: Wedge,
    keypair: RsaKeyPair,
    pages: PageStore,
    cache: Arc<Mutex<SessionCache>>,
    key_tag: Tag,
    key_buf: SBuf,
    rng: Mutex<WedgeRng>,
}

impl VanillaApache {
    /// Build the server. The private key is written into ordinary server
    /// memory (a tagged region the whole server can read) — the monolithic
    /// arrangement Wedge is designed to replace.
    pub fn new(
        wedge: Wedge,
        keypair: RsaKeyPair,
        pages: PageStore,
    ) -> Result<VanillaApache, WedgeError> {
        let root = wedge.root();
        let key_tag = root.tag_new()?;
        let key_buf = root.smalloc_init(key_tag, &serialize_private_key(&keypair))?;
        Ok(VanillaApache {
            wedge,
            keypair,
            pages,
            cache: Arc::new(Mutex::new(SessionCache::new())),
            key_tag,
            key_buf,
            rng: Mutex::new(WedgeRng::from_entropy()),
        })
    }

    /// The server's public key (what clients are configured with).
    pub fn public_key(&self) -> wedge_crypto::RsaPublicKey {
        self.keypair.public
    }

    /// The memory region holding the private key.
    pub fn key_buf(&self) -> SBuf {
        self.key_buf
    }

    /// The Wedge runtime backing the server.
    pub fn wedge(&self) -> &Wedge {
        &self.wedge
    }

    /// The policy the monolithic worker runs with: because the application
    /// is not partitioned, the network-facing worker holds read-write access
    /// to the private key region (and everything else it touches).
    pub fn worker_policy(&self) -> SecurityPolicy {
        let mut policy = SecurityPolicy::deny_all();
        policy.sc_mem_add(self.key_tag, MemProt::ReadWrite);
        policy
    }

    /// Serve one connection: SSL handshake, then serve requests until the
    /// client closes.
    pub fn serve_connection(&self, link: &Duplex) -> Result<ServeReport, String> {
        let mut cache = self.cache.lock();
        let mut rng = self.rng.lock();
        let mut conn = server_handshake(link, &self.keypair, &mut cache, &mut rng)
            .map_err(|e| e.to_string())?;
        drop(cache);
        drop(rng);
        let mut requests = 0;
        while let Ok(raw) = conn.recv(link) {
            let Some(request) = HttpRequest::parse(&raw) else {
                break;
            };
            let response = self.pages.respond(&request);
            if conn.send(link, &response).is_err() {
                break;
            }
            requests += 1;
        }
        Ok(ServeReport {
            resumed: conn.resumed,
            requests,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wedge_net::{duplex_pair, RecvTimeout};
    use wedge_tls::TlsClient;

    #[test]
    fn serves_https_requests() {
        let keypair = RsaKeyPair::generate(&mut WedgeRng::from_seed(1));
        let server = VanillaApache::new(Wedge::init(), keypair, PageStore::sample()).unwrap();
        let (client_link, server_link) = duplex_pair("client", "server");
        let public = server.public_key();
        let handle = std::thread::spawn(move || {
            let mut client = TlsClient::new(public, WedgeRng::from_seed(2));
            let mut conn = client.connect(&client_link).unwrap();
            conn.send(&client_link, b"GET /index.html HTTP/1.0\r\n\r\n")
                .unwrap();
            let response = conn.recv(&client_link).unwrap();
            drop(client_link);
            response
        });
        let report = server.serve_connection(&server_link).unwrap();
        let response = handle.join().unwrap();
        assert!(response.starts_with(b"HTTP/1.0 200 OK"));
        assert!(!report.resumed);
        assert_eq!(report.requests, 1);
    }

    #[test]
    fn session_caching_works_across_connections() {
        let keypair = RsaKeyPair::generate(&mut WedgeRng::from_seed(3));
        let server = VanillaApache::new(Wedge::init(), keypair, PageStore::sample()).unwrap();
        let public = server.public_key();
        let mut client = TlsClient::new(public, WedgeRng::from_seed(4));

        for round in 0..2 {
            let (client_link, server_link) = duplex_pair("client", "server");
            let server_thread = std::thread::scope(|scope| {
                let server_ref = &server;
                let handle = scope.spawn(move || server_ref.serve_connection(&server_link));
                let mut conn = client.connect(&client_link).unwrap();
                conn.send(&client_link, b"GET / HTTP/1.0\r\n\r\n").unwrap();
                let response = conn.recv(&client_link).unwrap();
                assert!(response.starts_with(b"HTTP/1.0 200"));
                drop(client_link);
                (handle.join().unwrap().unwrap(), conn.resumed)
            });
            let (report, client_resumed) = server_thread;
            assert_eq!(report.resumed, round == 1, "second connection resumes");
            assert_eq!(client_resumed, round == 1);
        }
    }

    #[test]
    fn key_region_contains_the_private_key_material() {
        let keypair = RsaKeyPair::generate(&mut WedgeRng::from_seed(5));
        let server = VanillaApache::new(Wedge::init(), keypair, PageStore::sample()).unwrap();
        let data = server.wedge().root().read_all(&server.key_buf()).unwrap();
        assert!(data.starts_with(b"RSA-PRIVATE-KEY:"));
        // The worker policy grants access to it — that is the vulnerability.
        assert!(server
            .worker_policy()
            .mem_grant(server.key_buf().tag)
            .is_some());
    }

    #[test]
    fn malformed_request_ends_the_connection_gracefully() {
        let keypair = RsaKeyPair::generate(&mut WedgeRng::from_seed(6));
        let server = VanillaApache::new(Wedge::init(), keypair, PageStore::sample()).unwrap();
        let (client_link, server_link) = duplex_pair("client", "server");
        let public = server.public_key();
        let handle = std::thread::spawn(move || {
            let mut client = TlsClient::new(public, WedgeRng::from_seed(7));
            let mut conn = client.connect(&client_link).unwrap();
            conn.send(&client_link, b"").unwrap();
            // Server closes without responding; recv eventually errors.
            let _ = client_link.recv(RecvTimeout::After(std::time::Duration::from_millis(200)));
        });
        let report = server.serve_connection(&server_link).unwrap();
        assert_eq!(report.requests, 0);
        handle.join().unwrap();
    }
}
