//! The pooled-concurrent HTTPS front-end.
//!
//! A single [`WedgeApache`] instance owns per-connection tagged regions
//! (`session_state`, the current-link slot), so it can only drive one
//! connection at a time — the sequential-service limitation called out in
//! the scheduler issue. [`ConcurrentApache`] lifts that limit with
//! `wedge-sched`: it pre-builds a pool of N partitioned server instances
//! (all sharing one certificate keypair, each with recycled callgates kept
//! warm across the connections it serves — the single-machine analogue of
//! one worker process per core) and drives incoming connections through a
//! work-stealing [`Scheduler`] whose admission control rejects load the
//! pool cannot absorb.
//!
//! Isolation is unchanged: every instance still enforces the full §5.1.2
//! partitioning inside its own simulated kernel. What is shared across
//! connections is only what the recycled mode already shares — and
//! `wedge-sched`'s checkin zeroization story applies to the pooled-worker
//! layer underneath (see `crates/wedge-sched/README.md`).

use std::sync::Arc;

use parking_lot::Mutex;

use wedge_core::{KernelStats, Wedge, WedgeError};
use wedge_crypto::{RsaKeyPair, RsaPublicKey};
use wedge_net::Duplex;
use wedge_sched::{InstancePool, JobHandle, SchedStats, Scheduler, SchedulerConfig};

use crate::http::PageStore;
use crate::partitioned::{ApacheConfig, ConnectionReport, WedgeApache};

/// Configuration of the pooled-concurrent front-end.
#[derive(Debug, Clone, Copy)]
pub struct ConcurrentApacheConfig {
    /// Server instances in the pool — also the scheduler worker count, so a
    /// running connection job can always claim an instance.
    pub workers: usize,
    /// Bounded per-worker run-queue capacity.
    pub queue_capacity: usize,
    /// Admission limit on in-flight connections (`None`: only the bounded
    /// queues push back).
    pub max_pending: Option<u64>,
    /// Run each instance's callgates in recycled mode (the Table 2 fast
    /// path; the default for the pooled front-end).
    pub recycled: bool,
}

impl Default for ConcurrentApacheConfig {
    fn default() -> Self {
        ConcurrentApacheConfig {
            workers: 4,
            queue_capacity: 64,
            max_pending: None,
            recycled: true,
        }
    }
}

/// N partitioned HTTPS servers behind one scheduler.
pub struct ConcurrentApache {
    servers: Vec<Arc<WedgeApache>>,
    pool: Arc<InstancePool>,
    sched: Scheduler,
    public_key: RsaPublicKey,
}

impl ConcurrentApache {
    /// Build `config.workers` partitioned instances sharing `keypair` and
    /// `pages`, plus the scheduler that multiplexes connections over them.
    pub fn new(
        keypair: RsaKeyPair,
        pages: PageStore,
        config: ConcurrentApacheConfig,
    ) -> Result<ConcurrentApache, WedgeError> {
        let workers = config.workers.max(1);
        let mut servers = Vec::with_capacity(workers);
        for _ in 0..workers {
            servers.push(Arc::new(WedgeApache::new(
                Wedge::init(),
                keypair,
                pages.clone(),
                ApacheConfig {
                    recycled: config.recycled,
                },
            )?));
        }
        Ok(ConcurrentApache {
            servers,
            pool: Arc::new(InstancePool::new(workers)),
            sched: Scheduler::new(SchedulerConfig {
                workers,
                queue_capacity: config.queue_capacity,
                max_pending: config.max_pending,
            }),
            public_key: keypair.public,
        })
    }

    /// The shared certificate public key clients pin.
    pub fn public_key(&self) -> RsaPublicKey {
        self.public_key
    }

    /// Pool width (instances == scheduler workers).
    pub fn workers(&self) -> usize {
        self.servers.len()
    }

    /// Scheduler counters.
    pub fn sched_stats(&self) -> SchedStats {
        self.sched.stats()
    }

    /// Kernel counters summed across every pooled instance.
    pub fn kernel_stats(&self) -> KernelStats {
        let mut total = KernelStats::default();
        for server in &self.servers {
            total += &server.wedge().kernel().stats();
        }
        total
    }

    /// The one connection-job body: claim an instance (guard releases it
    /// even if `serve_connection` panics), serve, return the report. The
    /// link lives in a shared slot so a rejected submission does not consume
    /// it and the submit can be retried.
    fn submit_slot(
        &self,
        slot: Arc<Mutex<Option<Duplex>>>,
    ) -> Result<JobHandle<Result<ConnectionReport, WedgeError>>, WedgeError> {
        let servers = self.servers.clone();
        let pool = self.pool.clone();
        self.sched.submit(move || {
            let link = slot.lock().take().expect("link present when job runs");
            let claim = pool.claim();
            servers[claim.index()].serve_connection(link)
        })
    }

    /// Submit one connection for service. The job claims a free instance
    /// (always available to a *running* job, since instances == workers),
    /// serves the connection end to end, and returns the instance.
    ///
    /// Fails with [`WedgeError::ResourceExhausted`] when admission control
    /// rejects the connection — the caller sheds the connection instead of
    /// queuing it unboundedly.
    pub fn serve(
        &self,
        link: Duplex,
    ) -> Result<JobHandle<Result<ConnectionReport, WedgeError>>, WedgeError> {
        self.submit_slot(Arc::new(Mutex::new(Some(link))))
    }

    /// Convenience driver: serve every link, backing off briefly whenever
    /// admission pushes back (blocking semantics for batch callers like the
    /// benches), and return the per-connection outcomes in submit order.
    pub fn serve_all(&self, links: Vec<Duplex>) -> Vec<Result<ConnectionReport, WedgeError>> {
        let mut handles = Vec::with_capacity(links.len());
        for link in links {
            let slot = Arc::new(Mutex::new(Some(link)));
            let handle = loop {
                match self.submit_slot(slot.clone()) {
                    Ok(handle) => break Ok(handle),
                    Err(WedgeError::ResourceExhausted { .. }) => {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                    Err(other) => break Err(other),
                }
            };
            handles.push(handle);
        }
        handles
            .into_iter()
            .map(|handle| handle.and_then(|h| h.join()).and_then(|report| report))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wedge_crypto::WedgeRng;
    use wedge_net::duplex_pair;
    use wedge_tls::TlsClient;

    fn run_connections(server: &ConcurrentApache, count: usize) -> Vec<ConnectionReport> {
        let mut client_links = Vec::new();
        let mut server_links = Vec::new();
        for i in 0..count {
            let (c, s) = duplex_pair(&format!("client-{i}"), &format!("server-{i}"));
            client_links.push(c);
            server_links.push(s);
        }
        let public_key = server.public_key();
        let clients: Vec<_> = client_links
            .into_iter()
            .enumerate()
            .map(|(i, link)| {
                std::thread::spawn(move || {
                    let mut client =
                        TlsClient::new(public_key, WedgeRng::from_seed(100 + i as u64));
                    let mut conn = client.connect(&link).expect("handshake");
                    conn.send(&link, b"GET /index.html HTTP/1.0\r\n\r\n")
                        .expect("send");
                    let response = conn.recv(&link).expect("response");
                    assert!(response.starts_with(b"HTTP/1.0 200 OK"));
                })
            })
            .collect();
        let reports: Vec<_> = server
            .serve_all(server_links)
            .into_iter()
            .map(|r| r.expect("connection served"))
            .collect();
        for client in clients {
            client.join().expect("client thread");
        }
        reports
    }

    #[test]
    fn pool_serves_many_simultaneous_connections() {
        let keypair = RsaKeyPair::generate(&mut WedgeRng::from_seed(41));
        let server = ConcurrentApache::new(
            keypair,
            PageStore::sample(),
            ConcurrentApacheConfig {
                workers: 4,
                ..ConcurrentApacheConfig::default()
            },
        )
        .unwrap();
        let reports = run_connections(&server, 12);
        assert_eq!(reports.len(), 12);
        assert!(reports.iter().all(|r| r.handshake_ok && r.requests == 1));

        let sched = server.sched_stats();
        assert_eq!(sched.submitted, 12);
        assert_eq!(sched.completed, 12);
        assert_eq!(sched.rejected, 0);

        // Each connection runs the two-phase §5.1.2 partitioning.
        let kernel = server.kernel_stats();
        assert_eq!(kernel.sthreads_created, 24);
        assert!(kernel.recycled_invocations > 0, "pool runs recycled gates");
    }

    #[test]
    fn admission_limit_rejects_direct_serves() {
        let keypair = RsaKeyPair::generate(&mut WedgeRng::from_seed(43));
        let server = ConcurrentApache::new(
            keypair,
            PageStore::sample(),
            ConcurrentApacheConfig {
                workers: 1,
                queue_capacity: 1,
                max_pending: Some(1),
                recycled: true,
            },
        )
        .unwrap();
        // One connection whose client never speaks occupies the only slot
        // until its handshake times out.
        let (_idle_client, idle_server) = duplex_pair("idle-client", "idle-server");
        let _busy = server.serve(idle_server).unwrap();
        let (_c2, s2) = duplex_pair("c2", "s2");
        let err = server.serve(s2).unwrap_err();
        assert!(matches!(err, WedgeError::ResourceExhausted { .. }));
        assert_eq!(server.sched_stats().rejected, 1);
    }
}
