//! The sharded HTTPS front-end.
//!
//! A single [`WedgeApache`] instance owns per-connection tagged regions
//! (`session_state`, the current-link slot), so it can only drive one
//! connection at a time. [`ConcurrentApache`] lifts that limit by putting
//! N forked, fully partitioned instances behind `wedge-sched`'s generic
//! [`ShardedFrontEnd`] — the shared serving stack (acceptor placement,
//! per-shard health/backpressure, optional supervisor auto-restart,
//! listener accept loop) lives there; this module only adds what is
//! HTTPS-specific: the shared certificate keypair, the page store, and
//! the cross-shard TLS session cache.
//!
//! What crosses shard boundaries is exactly one thing: the
//! [`SharedSessionCache`], a confined lookup service every shard's key
//! callgates consult through a narrow insert/lookup API. A TLS client that
//! handshakes on shard A and resumes on shard B still gets the abbreviated
//! handshake, because the premaster shard A cached is visible to shard B's
//! `begin_handshake` gate. No tagged memory is shared across shard
//! kernels: each shard still enforces the full §5.1.2 partitioning inside
//! its own kernel, so a compromised shard can at most replay cache lookups
//! — it cannot walk a sibling's address space.

use std::sync::Arc;
use std::time::Duration;

use wedge_core::{KernelStats, Wedge, WedgeError};
use wedge_crypto::{RsaKeyPair, RsaPublicKey};
use wedge_net::{Duplex, Listener};
use wedge_sched::{
    AcceptPolicy, FrontEndConfig, KillReport, RestartStats, SchedStats, ShardJobHandle,
    ShardServer, ShardStats, ShardedFrontEnd, SupervisorConfig,
};
use wedge_tls::{SessionStore, SharedSessionCache};

use crate::http::PageStore;
use crate::partitioned::{ApacheConfig, ConnectionReport, WedgeApache};

/// Configuration of the sharded front-end.
#[derive(Debug, Clone, Copy)]
pub struct ConcurrentApacheConfig {
    /// Shard workers to fork — each an independent kernel running one
    /// partitioned server instance.
    pub shards: usize,
    /// Bounded per-shard link-queue capacity.
    pub queue_capacity: usize,
    /// Per-shard admission limit on in-flight connections (`None`: only
    /// the bounded queues push back).
    pub max_inflight: Option<u64>,
    /// Run each shard's callgates in recycled mode (the Table 2 fast
    /// path; the default for the sharded front-end).
    pub recycled: bool,
    /// How the acceptor places links on shards.
    pub policy: AcceptPolicy,
    /// Enable the shard watchdog (auto-restart of killed shards).
    pub supervisor: Option<SupervisorConfig>,
}

impl Default for ConcurrentApacheConfig {
    fn default() -> Self {
        ConcurrentApacheConfig {
            shards: 4,
            queue_capacity: 64,
            max_inflight: None,
            recycled: true,
            policy: AcceptPolicy::RoundRobin,
            supervisor: None,
        }
    }
}

impl ShardServer for WedgeApache {
    type Report = ConnectionReport;

    fn serve_link(&self, shard: usize, link: Duplex) -> Result<ConnectionReport, WedgeError> {
        self.serve_connection(link).map(|mut report| {
            report.shard = shard;
            report
        })
    }

    fn kernel_stats(&self) -> KernelStats {
        self.wedge().kernel().stats()
    }

    fn handshake_kind(report: &ConnectionReport) -> Option<wedge_telemetry::HandshakeKind> {
        report.handshake_ok.then_some(if report.resumed {
            wedge_telemetry::HandshakeKind::Abbreviated
        } else {
            wedge_telemetry::HandshakeKind::Full
        })
    }

    fn instrument(&self, telemetry: &wedge_telemetry::Telemetry) {
        self.wedge().kernel().instrument(telemetry);
    }
}

/// N forked, partitioned HTTPS shards behind the shared front-end,
/// sharing only the session-lookup service.
pub struct ConcurrentApache {
    front: ShardedFrontEnd<WedgeApache>,
    store: Arc<dyn SessionStore>,
    public_key: RsaPublicKey,
}

impl ConcurrentApache {
    /// Fork `config.shards` shard workers, each booting a partitioned
    /// instance sharing `keypair` and `pages` — and one fresh
    /// [`SharedSessionCache`] — plus the acceptor that distributes
    /// connections over them (and the supervisor, when configured).
    pub fn new(
        keypair: RsaKeyPair,
        pages: PageStore,
        config: ConcurrentApacheConfig,
    ) -> Result<ConcurrentApache, WedgeError> {
        ConcurrentApache::with_session_store(
            keypair,
            pages,
            config,
            Arc::new(SharedSessionCache::new()),
        )
    }

    /// [`ConcurrentApache::new`] with an explicit session-lookup service:
    /// pass a `wedge_cachenet::CacheRing` and this front-end becomes one
    /// "machine" of a cross-machine serving fleet — a TLS session
    /// established through any machine on the same ring resumes here with
    /// the abbreviated handshake, because every shard's key callgates
    /// consult the ring instead of a process-local cache.
    pub fn with_session_store(
        keypair: RsaKeyPair,
        pages: PageStore,
        config: ConcurrentApacheConfig,
        store: Arc<dyn SessionStore>,
    ) -> Result<ConcurrentApache, WedgeError> {
        let factory_store = store.clone();
        let apache_config = ApacheConfig {
            recycled: config.recycled,
        };
        let front = ShardedFrontEnd::with_session_store(
            FrontEndConfig {
                shards: config.shards,
                queue_capacity: config.queue_capacity,
                max_inflight: config.max_inflight,
                policy: config.policy,
                supervisor: config.supervisor,
                ..FrontEndConfig::default()
            },
            store.clone(),
            move |_shard| {
                WedgeApache::with_session_store(
                    Wedge::init(),
                    keypair,
                    pages.clone(),
                    apache_config,
                    factory_store.clone(),
                )
            },
        )?;
        Ok(ConcurrentApache {
            front,
            store,
            public_key: keypair.public,
        })
    }

    /// The shared certificate public key clients pin.
    pub fn public_key(&self) -> RsaPublicKey {
        self.public_key
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.front.shards()
    }

    /// The session-lookup service every shard consults — the cross-shard
    /// shared cache, or the cross-machine ring when configured with one
    /// (its `stats`/`hit_rate` expose resumption health either way).
    pub fn session_cache(&self) -> &Arc<dyn SessionStore> {
        &self.store
    }

    /// Resumption health as the generic front-end reports it (`None`
    /// until the store serves its first lookup).
    pub fn resumption_hit_rate(&self) -> Option<f64> {
        self.front.resumption_hit_rate()
    }

    /// Front-end counters (see [`ShardedFrontEnd::sched_stats`]).
    pub fn sched_stats(&self) -> SchedStats {
        self.front.sched_stats()
    }

    /// Per-shard snapshots (health, boot cost, restarts, depth, counters,
    /// kernel).
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.front.shard_stats()
    }

    /// Kernel counters summed across every shard.
    pub fn kernel_stats(&self) -> KernelStats {
        self.front.kernel_stats()
    }

    /// The supervisor's restart counters (`None` when unsupervised).
    pub fn restart_stats(&self) -> Option<RestartStats> {
        self.front.restart_stats()
    }

    /// Register the whole front-end on `telemetry` (see
    /// [`ShardedFrontEnd::instrument`]): scheduler counters, the
    /// `shard.serve` latency histogram, the full-vs-abbreviated TLS
    /// handshake mix, every shard kernel's counters and the session
    /// store's resumption health.
    pub fn instrument(&self, telemetry: &wedge_telemetry::Telemetry) {
        self.front.instrument(telemetry);
    }

    /// One aggregated metric snapshot (`None` until
    /// [`ConcurrentApache::instrument`] is called).
    pub fn telemetry_snapshot(&self) -> Option<wedge_telemetry::TelemetrySnapshot> {
        self.front.telemetry_snapshot()
    }

    /// Kill shard `idx` (fault injection): queued links are re-routed to
    /// healthy shards; the link it is serving right now finishes; a
    /// configured supervisor respawns the shard.
    pub fn kill_shard(&self, idx: usize) -> KillReport {
        self.front.kill_shard(idx)
    }

    /// Manually revive killed shard `idx` (fresh kernel, old ring index).
    pub fn restart_shard(&self, idx: usize) -> Result<Duration, WedgeError> {
        self.front.restart_shard(idx)
    }

    /// Block until shard `idx` is healthy again (supervised restarts are
    /// asynchronous), up to `timeout`.
    pub fn await_healthy(&self, idx: usize, timeout: Duration) -> bool {
        self.front.await_healthy(idx, timeout)
    }

    /// Submit one connection for service on whichever shard the acceptor
    /// picks. The returned handle resolves to the connection report, whose
    /// `shard` field names the shard that actually served it.
    ///
    /// Fails with [`WedgeError::ResourceExhausted`] only when **every**
    /// shard rejects the link — the caller sheds the connection instead of
    /// queuing it unboundedly.
    pub fn serve(&self, link: Duplex) -> Result<ShardJobHandle<ConnectionReport>, WedgeError> {
        self.front.serve(link)
    }

    /// [`ConcurrentApache::serve`] with an explicit affinity key (used by
    /// [`wedge_sched::AcceptPolicy::SessionAffinity`]; ignored by the
    /// other policies). Links accepted through a [`Listener`] already
    /// carry a source-address key — this override is for callers with
    /// richer identity.
    pub fn serve_with_key(
        &self,
        link: Duplex,
        key: u64,
    ) -> Result<ShardJobHandle<ConnectionReport>, WedgeError> {
        self.front.serve_with_key(link, key)
    }

    /// Serve every link and return the outcomes **in link order** (see
    /// [`ShardedFrontEnd::serve_all`]).
    pub fn serve_all(&self, links: Vec<Duplex>) -> Vec<Result<ConnectionReport, WedgeError>> {
        self.front.serve_all(links)
    }

    /// Run the accept loop over `listener` until it closes, serving every
    /// accepted connection with source-address affinity (see
    /// [`ShardedFrontEnd::serve_listener`]).
    pub fn serve_listener(
        &self,
        listener: &Listener,
        batch: usize,
    ) -> Vec<Result<ConnectionReport, WedgeError>> {
        self.front.serve_listener(listener, batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wedge_crypto::WedgeRng;
    use wedge_net::duplex_pair;
    use wedge_tls::TlsClient;

    fn run_connections(server: &ConcurrentApache, count: usize) -> Vec<ConnectionReport> {
        let mut client_links = Vec::new();
        let mut server_links = Vec::new();
        for i in 0..count {
            let (c, s) = duplex_pair(&format!("client-{i}"), &format!("server-{i}"));
            client_links.push(c);
            server_links.push(s);
        }
        let public_key = server.public_key();
        let clients: Vec<_> = client_links
            .into_iter()
            .enumerate()
            .map(|(i, link)| {
                std::thread::spawn(move || {
                    let mut client =
                        TlsClient::new(public_key, WedgeRng::from_seed(100 + i as u64));
                    let mut conn = client.connect(&link).expect("handshake");
                    conn.send(&link, b"GET /index.html HTTP/1.0\r\n\r\n")
                        .expect("send");
                    let response = conn.recv(&link).expect("response");
                    assert!(response.starts_with(b"HTTP/1.0 200 OK"));
                })
            })
            .collect();
        let reports: Vec<_> = server
            .serve_all(server_links)
            .into_iter()
            .map(|r| r.expect("connection served"))
            .collect();
        for client in clients {
            client.join().expect("client thread");
        }
        reports
    }

    #[test]
    fn shards_serve_many_simultaneous_connections() {
        let keypair = RsaKeyPair::generate(&mut WedgeRng::from_seed(41));
        let server = ConcurrentApache::new(
            keypair,
            PageStore::sample(),
            ConcurrentApacheConfig {
                shards: 4,
                ..ConcurrentApacheConfig::default()
            },
        )
        .unwrap();
        let reports = run_connections(&server, 12);
        assert_eq!(reports.len(), 12);
        assert!(reports.iter().all(|r| r.handshake_ok && r.requests == 1));

        let sched = server.sched_stats();
        assert_eq!(sched.submitted, 12);
        assert_eq!(sched.completed, 12);
        assert_eq!(sched.rejected, 0);

        // Round-robin spreads the batch over every shard.
        let used: std::collections::HashSet<usize> = reports.iter().map(|r| r.shard).collect();
        assert_eq!(used.len(), 4, "all four shards must serve");

        // Each connection runs the two-phase §5.1.2 partitioning, summed
        // over the independent shard kernels.
        let kernel = server.kernel_stats();
        assert_eq!(kernel.sthreads_created, 24);
        assert!(kernel.recycled_invocations > 0, "shards run recycled gates");

        // Per-shard snapshots aggregate (AddAssign) back to the totals.
        let mut total = wedge_sched::ShardStats::default();
        for stats in server.shard_stats() {
            assert!(
                stats.boot_cost > std::time::Duration::ZERO,
                "fork cost charged"
            );
            total += &stats;
        }
        assert_eq!(total.sched.completed, 12);
        assert_eq!(total.kernel.sthreads_created, 24);
        assert!(total.healthy, "all shards healthy aggregates to healthy");
    }

    #[test]
    fn admission_limit_rejects_direct_serves_when_all_shards_full() {
        let keypair = RsaKeyPair::generate(&mut WedgeRng::from_seed(43));
        let server = ConcurrentApache::new(
            keypair,
            PageStore::sample(),
            ConcurrentApacheConfig {
                shards: 1,
                queue_capacity: 1,
                max_inflight: Some(1),
                ..ConcurrentApacheConfig::default()
            },
        )
        .unwrap();
        // One connection whose client never speaks occupies the only shard
        // until its handshake times out.
        let (_idle_client, idle_server) = duplex_pair("idle-client", "idle-server");
        let _busy = server.serve(idle_server).unwrap();
        let (_c2, s2) = duplex_pair("c2", "s2");
        let err = server.serve(s2).unwrap_err();
        assert!(matches!(err, WedgeError::ResourceExhausted { .. }));
        assert_eq!(server.sched_stats().rejected, 1);
    }
}
