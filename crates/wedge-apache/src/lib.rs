//! # wedge-apache — the Apache/OpenSSL case study (§5.1)
//!
//! Three server variants over the same [`wedge_tls`] protocol and the same
//! tiny HTTP engine, so that the paper's security and performance
//! comparisons can be reproduced end to end:
//!
//! * [`vanilla::VanillaApache`] — the monolithic baseline: handshake,
//!   private key, session keys and request handling all live in one
//!   compartment (one pooled worker), as in unmodified Apache/OpenSSL.
//! * [`simple::SimpleApache`] — the §5.1.1 partitioning: one unprivileged
//!   worker sthread per connection; the RSA private key lives in tagged
//!   memory reachable only by the `setup_session_key` callgate, which also
//!   generates the server random itself. The worker receives the session
//!   key (so it can run the connection) but can never see or use the
//!   private key.
//! * [`partitioned::WedgeApache`] — the §5.1.2 (man-in-the-middle-hardened)
//!   partitioning: a master per connection runs an `ssl_handshake` sthread
//!   (network-facing, **no** session-key access) and then a
//!   `client_handler` sthread (no network access, no session-key access);
//!   five callgates (`begin_handshake`, `setup_session_key`,
//!   `receive_finished`, `send_finished`, `ssl_read`/`ssl_write`) own the
//!   private key, the session key and the `finished_state` regions.
//!   A constructor flag selects standard or *recycled* callgates (the
//!   Table 2 "Wedge" vs "Recycled" columns).
//!
//! [`concurrent::ConcurrentApache`] is the pooled-concurrent front-end: a
//! pool of partitioned instances behind a `wedge-sched` work-stealing
//! scheduler, serving many connections simultaneously with admission
//! control — the production-scale path the sequential variants lack.
//!
//! [`attacks`] drives the exploit and man-in-the-middle scenarios against
//! each variant, and [`metrics`] reports the partitioning metrics of §5.1.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod attacks;
pub mod concurrent;
pub mod http;
pub mod metrics;
pub mod partitioned;
pub mod simple;
pub mod state;
pub mod vanilla;

pub use concurrent::{ConcurrentApache, ConcurrentApacheConfig};
pub use http::{HttpRequest, PageStore};
pub use partitioned::{ApacheConfig, WedgeApache};
pub use simple::SimpleApache;
pub use vanilla::VanillaApache;
