//! A minimal HTTP/1.0 request parser and static page store — just enough to
//! serve the "static web pages" workload of Table 2.

use std::collections::HashMap;

/// A parsed HTTP request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// The method (only GET is meaningful to the page store).
    pub method: String,
    /// The requested path.
    pub path: String,
}

impl HttpRequest {
    /// Parse the first line of an HTTP request. Returns `None` for
    /// syntactically hopeless input.
    pub fn parse(raw: &[u8]) -> Option<HttpRequest> {
        let text = String::from_utf8_lossy(raw);
        let first_line = text.lines().next()?;
        let mut parts = first_line.split_whitespace();
        let method = parts.next()?.to_string();
        let path = parts.next()?.to_string();
        Some(HttpRequest { method, path })
    }

    /// Render the request as wire bytes (used by the test client).
    pub fn to_bytes(&self) -> Vec<u8> {
        format!("{} {} HTTP/1.0\r\n\r\n", self.method, self.path).into_bytes()
    }
}

/// The static page store served by every Apache variant.
#[derive(Debug, Clone)]
pub struct PageStore {
    pages: HashMap<String, Vec<u8>>,
}

impl Default for PageStore {
    fn default() -> Self {
        PageStore::sample()
    }
}

impl PageStore {
    /// An empty store.
    pub fn new() -> PageStore {
        PageStore {
            pages: HashMap::new(),
        }
    }

    /// The sample site used by tests and benchmarks.
    pub fn sample() -> PageStore {
        let mut store = PageStore::new();
        store.add(
            "/",
            b"<html><body>wedge-apache index</body></html>".to_vec(),
        );
        store.add(
            "/index.html",
            b"<html><body>wedge-apache index</body></html>".to_vec(),
        );
        store.add(
            "/account",
            b"<html><body>account balance: 1234.56</body></html>".to_vec(),
        );
        store.add("/static/logo", vec![0x89u8; 512]);
        store
    }

    /// Add (or replace) a page.
    pub fn add(&mut self, path: &str, body: Vec<u8>) {
        self.pages.insert(path.to_string(), body);
    }

    /// Number of pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Build the HTTP response for a request.
    pub fn respond(&self, request: &HttpRequest) -> Vec<u8> {
        if request.method != "GET" {
            return b"HTTP/1.0 405 Method Not Allowed\r\n\r\n".to_vec();
        }
        match self.pages.get(&request.path) {
            Some(body) => {
                let mut response =
                    format!("HTTP/1.0 200 OK\r\nContent-Length: {}\r\n\r\n", body.len())
                        .into_bytes();
                response.extend_from_slice(body);
                response
            }
            None => b"HTTP/1.0 404 Not Found\r\n\r\n".to_vec(),
        }
    }

    /// Serialise the store for placement in tagged memory (path\tbody-hex).
    pub fn serialize(&self) -> Vec<u8> {
        let mut paths: Vec<&String> = self.pages.keys().collect();
        paths.sort();
        let mut out = String::new();
        for path in paths {
            let body = &self.pages[path];
            out.push_str(path);
            out.push('\t');
            out.push_str(&wedge_crypto::sha256::to_hex(body));
            out.push('\t');
            out.push_str(&body.len().to_string());
            out.push('\n');
        }
        out.into_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_request_lines() {
        let req = HttpRequest::parse(b"GET /index.html HTTP/1.0\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/index.html");
        assert!(HttpRequest::parse(b"garbage").is_none());
        assert!(HttpRequest::parse(b"").is_none());
    }

    #[test]
    fn request_roundtrips_through_bytes() {
        let req = HttpRequest {
            method: "GET".into(),
            path: "/account".into(),
        };
        assert_eq!(HttpRequest::parse(&req.to_bytes()).unwrap(), req);
    }

    #[test]
    fn responds_200_404_405() {
        let store = PageStore::sample();
        let ok = store.respond(&HttpRequest::parse(b"GET / HTTP/1.0").unwrap());
        assert!(ok.starts_with(b"HTTP/1.0 200 OK"));
        assert!(ok.windows(5).any(|w| w == b"index"));
        let missing = store.respond(&HttpRequest::parse(b"GET /nope HTTP/1.0").unwrap());
        assert!(missing.starts_with(b"HTTP/1.0 404"));
        let bad_method = store.respond(&HttpRequest::parse(b"POST / HTTP/1.0").unwrap());
        assert!(bad_method.starts_with(b"HTTP/1.0 405"));
    }

    #[test]
    fn serialisation_is_stable_and_nonempty() {
        let store = PageStore::sample();
        assert_eq!(store.serialize(), store.serialize());
        assert!(!store.serialize().is_empty());
        assert_eq!(store.len(), 4);
        assert!(!store.is_empty());
    }
}
