//! The shared acceptor: one front door distributing links over a
//! [`ShardSet`].
//!
//! The acceptor owns no connection state — it only *places* links. Policy
//! picks the preferred shard; placement then walks the remaining shards in
//! ring order, skipping any that refuse (saturated admission quota, full
//! queue, or killed), so a single unhealthy shard degrades capacity
//! instead of availability. Only when **every** shard refuses does a
//! submission fail, with the same [`WedgeError::ResourceExhausted`]
//! backpressure signal the rest of the stack sheds load on.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use wedge_core::WedgeError;
use wedge_net::Duplex;
use wedge_telemetry::TelemetryEvent;

use crate::metrics::{SchedCounters, SchedStats};
use crate::shard::{all_shards_exhausted, ShardJob, ShardServer, ShardSet, ShardSetInner};

/// How the acceptor picks each link's preferred shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AcceptPolicy {
    /// Rotate through the shards, one link each.
    #[default]
    RoundRobin,
    /// Prefer the shard with the fewest queued + in-flight links
    /// (ties broken by shard id).
    LeastLoaded,
    /// Hash an affinity key (caller-provided, else the link's endpoint
    /// name) to a shard, so repeat clients land where their warm state
    /// lives. With the shared session cache this is an optimisation, not a
    /// correctness requirement — resumption works on any shard.
    SessionAffinity,
}

/// Handle to a link placed on a shard; resolves to the serving report.
pub struct ShardJobHandle<R> {
    rx: crossbeam::channel::Receiver<Result<R, WedgeError>>,
    shard: usize,
}

impl<R> std::fmt::Debug for ShardJobHandle<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardJobHandle")
            .field("shard", &self.shard)
            .finish()
    }
}

impl<R> ShardJobHandle<R> {
    /// The shard the link was initially placed on (a kill may re-route it;
    /// the authoritative serving shard is whatever the report says).
    pub fn placed_on(&self) -> usize {
        self.shard
    }

    /// Block until the link is served. A panicking shard server surfaces
    /// as [`WedgeError::SthreadPanicked`]; a link shed after its shard
    /// died as [`WedgeError::ResourceExhausted`].
    pub fn join(self) -> Result<R, WedgeError> {
        self.rx
            .recv()
            .map_err(|_| WedgeError::InvalidOperation("shard set dropped the link".into()))?
    }

    /// Non-blocking poll; `None` while the link is still queued or being
    /// served.
    pub fn try_join(&self) -> Option<Result<R, WedgeError>> {
        self.rx.try_recv().ok()
    }
}

/// The shared front door over a [`ShardSet`].
pub struct Acceptor<S: ShardServer> {
    inner: Arc<ShardSetInner<S>>,
    policy: AcceptPolicy,
    next: AtomicUsize,
}

impl<S: ShardServer> std::fmt::Debug for Acceptor<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Acceptor")
            .field("policy", &self.policy)
            .field("shards", &self.inner.shards.len())
            .finish()
    }
}

impl<S: ShardServer> Acceptor<S> {
    /// An acceptor distributing links over `set` with `policy`.
    pub fn new(set: &ShardSet<S>, policy: AcceptPolicy) -> Acceptor<S> {
        Acceptor {
            inner: set.inner().clone(),
            policy,
            next: AtomicUsize::new(0),
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> AcceptPolicy {
        self.policy
    }

    /// Front-end-level counters (the same snapshot as
    /// [`ShardSet::stats`]).
    pub fn stats(&self) -> SchedStats {
        self.inner.front_stats()
    }

    /// The shard-probing order for one placement: the policy's preferred
    /// shard first, then the rest of the ring.
    fn order(&self, key: Option<u64>) -> Vec<usize> {
        let n = self.inner.shards.len();
        let start = match self.policy {
            AcceptPolicy::RoundRobin => self.next.fetch_add(1, Ordering::Relaxed) % n,
            AcceptPolicy::LeastLoaded => self
                .inner
                .shards
                .iter()
                .enumerate()
                // Dead shards refuse everything (and drain to depth 0, which
                // would otherwise make them permanently "least loaded").
                .filter(|(_, shard)| shard.health() == crate::shard::ShardHealth::Healthy)
                .min_by_key(|(id, shard)| (shard.depth(), *id))
                .map(|(id, _)| id)
                .unwrap_or(0),
            AcceptPolicy::SessionAffinity => {
                // Rendezvous fallback: when the affinity-hashed shard is
                // dead, deterministically prefer the next *healthy* shard
                // in ring order — every connection carrying this key
                // agrees on the same fallback home (so its warm state
                // accumulates in one place), nothing counts as "stolen",
                // and the moment the hashed shard rejoins the ring the key
                // maps back to it.
                let hashed = shard_for_key(key.unwrap_or(0), n);
                (0..n)
                    .map(|offset| (hashed + offset) % n)
                    .find(|&idx| {
                        self.inner.shards[idx].health() == crate::shard::ShardHealth::Healthy
                    })
                    .unwrap_or(hashed)
            }
        };
        (0..n).map(|offset| (start + offset) % n).collect()
    }

    /// Submit one link, using the link's own affinity key under
    /// [`AcceptPolicy::SessionAffinity`]: the **source address** for links
    /// accepted through a [`wedge_net::Listener`] (repeat clients land on
    /// the shard holding their warm state with zero protocol
    /// cooperation), else a hash of the endpoint name.
    pub fn submit(&self, link: Duplex) -> Result<ShardJobHandle<S::Report>, WedgeError> {
        let key = link.affinity_key();
        self.submit_with_key(link, key)
    }

    /// Submit one link with an explicit affinity key (ignored by the
    /// non-affinity policies). Counts the link once in `submitted`; it
    /// will resolve into exactly one of `completed` or `rejected`.
    pub fn submit_with_key(
        &self,
        link: Duplex,
        key: u64,
    ) -> Result<ShardJobHandle<S::Report>, WedgeError> {
        self.offer(link, key).map_err(|(_link, err)| err)
    }

    /// [`Acceptor::submit_with_key`], but an all-shards-rejected outcome
    /// hands the link back so the caller can retry after backing off
    /// (the front-end's batch drivers need this — a `Duplex` endpoint is
    /// not clonable). Every offer is counted: a link offered three times
    /// before landing contributes 3 to `submitted` and 2 to `rejected`,
    /// so `submitted == completed + rejected` still balances.
    // Handing the whole link back on refusal is the point of this API —
    // a `Duplex` cannot be rebuilt by the caller — so the large Err
    // variant is deliberate.
    #[allow(clippy::result_large_err)]
    pub fn offer(
        &self,
        link: Duplex,
        key: u64,
    ) -> Result<ShardJobHandle<S::Report>, (Duplex, WedgeError)> {
        SchedCounters::bump(&self.inner.aggregate.submitted);
        let (tx, rx) = crossbeam::channel::bounded(1);
        // A link stamped at a traced listener carries its root context;
        // attach the tracer and the submit stamp so the serving shard can
        // close the queue span no matter which worker dequeues it.
        let trace = link.trace().and_then(|lt| {
            let tracer = self.inner.probes.get()?.telemetry.tracer()?;
            let submitted_ns = tracer.now_ns();
            Some(Box::new(crate::shard::JobTrace {
                tracer,
                ctx: lt.ctx,
                root_start_ns: lt.root_start_ns,
                submitted_ns,
            }))
        });
        let job = ShardJob { link, tx, trace };
        let order = self.order(Some(key));
        match self.inner.place(job, &order, false) {
            Ok(position) => {
                if position != 0 {
                    // The preferred shard refused; the link was skipped to
                    // a sibling.
                    SchedCounters::bump(&self.inner.aggregate.stolen);
                }
                if let Some(probes) = self.inner.probes.get() {
                    probes.telemetry.emit_with(|| TelemetryEvent::Placed {
                        shard: order[position],
                        stolen: position != 0,
                    });
                }
                Ok(ShardJobHandle {
                    rx,
                    shard: order[position],
                })
            }
            Err(job) => {
                SchedCounters::bump(&self.inner.aggregate.rejected);
                if let Some(probes) = self.inner.probes.get() {
                    probes
                        .telemetry
                        .emit_with(|| TelemetryEvent::PlacementRejected);
                }
                // Only a *shut-down* set refuses permanently — its workers
                // are joined and gone, so retrying can never succeed. A set
                // whose every shard is killed or saturated sheds with the
                // stack's uniform backpressure signal instead: killed
                // shards are revivable (`restart_shard` / the supervisor),
                // so an all-dead ring is deterministic `ResourceExhausted`,
                // exactly like total saturation.
                let err = if self.inner.shutdown.load(Ordering::SeqCst) {
                    WedgeError::InvalidOperation("shard front-end is shut down".to_string())
                } else {
                    all_shards_exhausted(order.len())
                };
                Err((job.link, err))
            }
        }
    }
}

/// The shard a key maps to under [`AcceptPolicy::SessionAffinity`]
/// (Fibonacci hashing: multiply, then keep the *high* bits — the low bits
/// of the product are barely mixed, so a plain modulo would collapse to
/// `key % shards` for power-of-two shard counts). Public so callers — and
/// tests — can predict placement without duplicating the constant.
pub fn shard_for_key(key: u64, shards: usize) -> usize {
    ((key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) % shards.max(1) as u64) as usize
}

/// FNV-1a over an endpoint name — a stable affinity key for clients that
/// reconnect under the same name. (Links accepted through a
/// [`wedge_net::Listener`] prefer their source-address key; see
/// [`wedge_net::Duplex::affinity_key`].)
pub fn hash_name(name: &str) -> u64 {
    wedge_net::duplex::fnv1a(name.as_bytes())
}
