//! One protocol-agnostic sharded front-end.
//!
//! Before this module every protocol crate hand-rolled the same
//! scaffolding around [`ShardSet`] + [`Acceptor`]: a config struct, the
//! submit/serve-all driver loop, report aggregation and shard
//! attribution, kill-shard plumbing. [`ShardedFrontEnd`] is that
//! scaffolding written once, generically over [`ShardServer`] — the
//! Apache, SSH and POP3 front-ends are now thin wrappers that only add
//! their protocol-specific state (certificate keys, session caches,
//! OTP ledgers).
//!
//! The front-end composes the three serving-stack layers:
//!
//! 1. **Listener** ([`wedge_net::Listener`]) — `serve_listener` runs the
//!    accept loop, draining connection batches; with
//!    [`FrontEndConfig::defer_accept`] (the default) accepted links park
//!    on a readiness [`Reactor`] until their first byte arrives and only
//!    then occupy a shard, each submitted with the **source-address
//!    affinity key** it arrived with, so
//!    [`AcceptPolicy::SessionAffinity`] works without any protocol
//!    cooperation.
//! 2. **Supervision** ([`crate::Supervisor`]) — enabled with
//!    [`FrontEndConfig::supervisor`], killed shards respawn automatically
//!    (fresh kernel, old ring index) with bounded backoff and
//!    restart-storm detection; [`Self::restart_stats`] exposes the
//!    watchdog's counters.
//! 3. **Placement** ([`Acceptor`]) — pluggable policy, per-shard health
//!    and admission backpressure, kill-time re-routing.

use std::sync::Arc;
use std::time::Duration;

use wedge_core::{KernelStats, WedgeError};
use wedge_net::{Duplex, Listener, NetError, Reactor, RecvTimeout};
use wedge_telemetry::{Telemetry, TelemetrySnapshot};
use wedge_tls::SessionStore;

use crate::acceptor::{AcceptPolicy, Acceptor, ShardJobHandle};
use crate::metrics::SchedStats;
use crate::shard::{KillReport, ShardConfig, ShardHealth, ShardServer, ShardSet, ShardStats};
use crate::supervisor::{RestartStats, Supervisor, SupervisorConfig};

/// Configuration of a [`ShardedFrontEnd`].
#[derive(Debug, Clone, Copy)]
pub struct FrontEndConfig {
    /// Shard workers to fork — each an independent kernel running one
    /// server instance.
    pub shards: usize,
    /// Bounded per-shard link-queue capacity.
    pub queue_capacity: usize,
    /// Per-shard admission limit on in-flight links (`None`: only the
    /// bounded queues push back).
    pub max_inflight: Option<u64>,
    /// Address-space image size the simulated fork copies at shard boot.
    pub fork_image_bytes: usize,
    /// Descriptor-table size the simulated fork copies at shard boot.
    pub fork_fd_count: usize,
    /// How the acceptor places links on shards.
    pub policy: AcceptPolicy,
    /// Enable the auto-restart watchdog with this configuration.
    pub supervisor: Option<SupervisorConfig>,
    /// Park accepted links on the front-end's readiness reactor until
    /// their first byte arrives, and only then occupy a shard slot —
    /// so thousands of idle connections cost one parked sthread, not a
    /// queue slot and a serving thread each. Correct for
    /// client-speaks-first protocols (TLS, SSH: the client sends the
    /// hello). Protocols where the **server** speaks first (POP3 sends
    /// its `+OK` greeting unprompted) must disable this, or greeting and
    /// client would deadlock waiting for each other.
    pub defer_accept: bool,
}

impl Default for FrontEndConfig {
    fn default() -> Self {
        let shard = ShardConfig::default();
        FrontEndConfig {
            shards: shard.shards,
            queue_capacity: shard.queue_capacity,
            max_inflight: shard.max_inflight,
            fork_image_bytes: shard.fork_image_bytes,
            fork_fd_count: shard.fork_fd_count,
            policy: AcceptPolicy::RoundRobin,
            supervisor: None,
            defer_accept: true,
        }
    }
}

impl FrontEndConfig {
    fn shard_config(&self) -> ShardConfig {
        ShardConfig {
            shards: self.shards,
            queue_capacity: self.queue_capacity,
            max_inflight: self.max_inflight,
            fork_image_bytes: self.fork_image_bytes,
            fork_fd_count: self.fork_fd_count,
            ..ShardConfig::default()
        }
    }
}

/// The generic sharded front-end: N forked shards, one acceptor, an
/// optional supervisor — shared by every protocol.
pub struct ShardedFrontEnd<S: ShardServer> {
    set: ShardSet<S>,
    acceptor: Acceptor<S>,
    supervisor: Option<Supervisor>,
    /// The session store this front-end's shards consult, when the
    /// protocol has one (TLS front-ends do). Held here so operators can
    /// watch resumption health at the front-end — and so a front-end can
    /// be pointed at a **remote cache ring** (`wedge-cachenet`) instead
    /// of an in-process cache without the generic layer noticing.
    session_store: Option<Arc<dyn SessionStore>>,
    /// The registry this front-end reports into, once
    /// [`Self::instrument`] has been called.
    telemetry: std::sync::OnceLock<Telemetry>,
    /// See [`FrontEndConfig::defer_accept`].
    defer_accept: bool,
    /// The readiness reactor idle accepted links park on (spawned lazily
    /// by the first [`Self::serve_listener`] call that defers).
    reactor: std::sync::OnceLock<Reactor>,
}

impl<S: ShardServer> std::fmt::Debug for ShardedFrontEnd<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedFrontEnd")
            .field("shards", &self.set.shards())
            .field("policy", &self.acceptor.policy())
            .field("supervised", &self.supervisor.is_some())
            .field("session_store", &self.session_store.is_some())
            .finish()
    }
}

impl<S: ShardServer> ShardedFrontEnd<S> {
    /// Fork `config.shards` shards via `factory` (one call per shard,
    /// inside the simulated forked child; retained for restarts), build
    /// the acceptor, and start the supervisor when configured.
    pub fn new<F>(config: FrontEndConfig, factory: F) -> Result<ShardedFrontEnd<S>, WedgeError>
    where
        F: Fn(usize) -> Result<S, WedgeError> + Send + Sync + 'static,
    {
        ShardedFrontEnd::build(config, None, factory)
    }

    /// [`Self::new`], registering the [`SessionStore`] the shards consult
    /// — the in-process `SharedSessionCache` or a `wedge-cachenet` remote
    /// ring; the front-end treats both identically. The factory still
    /// owns wiring the store into each shard's server (it holds its own
    /// `Arc` clone); registering it here additionally exposes resumption
    /// health through [`Self::resumption_hit_rate`].
    pub fn with_session_store<F>(
        config: FrontEndConfig,
        store: Arc<dyn SessionStore>,
        factory: F,
    ) -> Result<ShardedFrontEnd<S>, WedgeError>
    where
        F: Fn(usize) -> Result<S, WedgeError> + Send + Sync + 'static,
    {
        ShardedFrontEnd::build(config, Some(store), factory)
    }

    fn build<F>(
        config: FrontEndConfig,
        session_store: Option<Arc<dyn SessionStore>>,
        factory: F,
    ) -> Result<ShardedFrontEnd<S>, WedgeError>
    where
        F: Fn(usize) -> Result<S, WedgeError> + Send + Sync + 'static,
    {
        let set = ShardSet::new(config.shard_config(), factory)?;
        let acceptor = Acceptor::new(&set, config.policy);
        let supervisor = config
            .supervisor
            .map(|sup_config| Supervisor::spawn(&set, sup_config));
        Ok(ShardedFrontEnd {
            set,
            acceptor,
            supervisor,
            session_store,
            telemetry: std::sync::OnceLock::new(),
            defer_accept: config.defer_accept,
            reactor: std::sync::OnceLock::new(),
        })
    }

    /// The accept reactor, spawned on first use and instrumented if the
    /// front-end already is.
    fn accept_reactor(&self) -> &Reactor {
        self.reactor.get_or_init(|| {
            let reactor = Reactor::spawn("frontend-accept");
            if let Some(telemetry) = self.telemetry.get() {
                reactor.instrument(telemetry);
            }
            reactor
        })
    }

    /// Register every layer of this front-end on `telemetry`: the shard
    /// set (scheduler counters, `shard.serve` latency, handshake mix,
    /// per-shard kernels via [`ShardServer::instrument`]), the supervisor
    /// when one runs, and the session store's `tls.session_cache.*`
    /// resumption counters when one is registered. Idempotent — only the
    /// first call wires anything. After this,
    /// [`Self::telemetry_snapshot`] aggregates the whole stack.
    pub fn instrument(&self, telemetry: &Telemetry) {
        if self.telemetry.set(telemetry.clone()).is_err() {
            return;
        }
        self.set.instrument(telemetry);
        if let Some(supervisor) = &self.supervisor {
            supervisor.instrument(telemetry);
        }
        if let Some(reactor) = self.reactor.get() {
            reactor.instrument(telemetry);
        }
        if let Some(store) = &self.session_store {
            let store = Arc::downgrade(store);
            telemetry.register_collector(move |sample| {
                let Some(store) = store.upgrade() else { return };
                let (hits, misses) = store.stats();
                sample.counter("tls.session_cache.hits", hits);
                sample.counter("tls.session_cache.misses", misses);
                sample.gauge("tls.session_cache.resident", store.len() as u64);
            });
        }
    }

    /// One aggregated snapshot of every metric this front-end (and
    /// anything else sharing the registry) reports. `None` until
    /// [`Self::instrument`] has been called.
    pub fn telemetry_snapshot(&self) -> Option<TelemetrySnapshot> {
        self.telemetry.get().map(Telemetry::snapshot)
    }

    /// The registry handed to [`Self::instrument`], if any — so callers
    /// can install a [`wedge_telemetry::TelemetrySink`] or register more
    /// collectors on the same registry.
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.telemetry.get()
    }

    /// The session store registered at construction (`None` for
    /// protocols without TLS-style warm state).
    pub fn session_store(&self) -> Option<&Arc<dyn SessionStore>> {
        self.session_store.as_ref()
    }

    /// Resumption health: the registered session store's hit rate
    /// (`None` when no store is registered **or** the store has served
    /// no lookups yet — see `SharedSessionCache::hit_rate` for the
    /// spec).
    pub fn resumption_hit_rate(&self) -> Option<f64> {
        self.session_store
            .as_ref()
            .and_then(|store| store.hit_rate())
    }

    /// The underlying shard set (per-shard admission, health, servers).
    pub fn set(&self) -> &ShardSet<S> {
        &self.set
    }

    /// The configured placement policy.
    pub fn policy(&self) -> AcceptPolicy {
        self.acceptor.policy()
    }

    /// Number of shards (healthy or not).
    pub fn shards(&self) -> usize {
        self.set.shards()
    }

    /// Shard `idx`'s health.
    pub fn health(&self, idx: usize) -> ShardHealth {
        self.set.health(idx)
    }

    /// Front-end counters: every offered link bumps `submitted` and
    /// resolves into exactly one of `completed` / `rejected` — a link the
    /// batch drivers re-offer after backpressure counts as a fresh offer,
    /// so `submitted == completed + rejected` always balances; `stolen`
    /// counts placements away from the policy's first choice (skips of
    /// saturated shards and post-kill re-routes).
    pub fn sched_stats(&self) -> SchedStats {
        self.set.stats()
    }

    /// Per-shard snapshots (health, boot cost, restarts, depth, counters,
    /// kernel), in shard order.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.set.shard_stats()
    }

    /// The per-shard snapshots folded into one aggregate (counters sum,
    /// `healthy` only when every shard is).
    pub fn aggregate_stats(&self) -> ShardStats {
        let mut total = ShardStats::default();
        for stats in self.set.shard_stats() {
            total += &stats;
        }
        total
    }

    /// Kernel counters summed across every shard.
    pub fn kernel_stats(&self) -> KernelStats {
        self.set.kernel_stats()
    }

    /// The supervisor's restart counters; `None` when the front-end runs
    /// unsupervised.
    pub fn restart_stats(&self) -> Option<RestartStats> {
        self.supervisor.as_ref().map(Supervisor::stats)
    }

    /// Shard indices the supervisor's storm guard has written off —
    /// dead with no pending revival (empty when unsupervised or when
    /// every failed shard is still being restarted). The health-polling
    /// counterpart of [`Supervisor::abandoned`].
    pub fn abandoned_shards(&self) -> Vec<usize> {
        self.supervisor
            .as_ref()
            .map(Supervisor::abandoned)
            .unwrap_or_default()
    }

    /// Kill shard `idx` (fault injection): queued links re-route to
    /// healthy shards, the link in service finishes, and — when a
    /// supervisor is configured — the shard respawns automatically.
    pub fn kill_shard(&self, idx: usize) -> KillReport {
        self.set.kill_shard(idx)
    }

    /// Manually revive killed shard `idx` (the supervisor does this
    /// automatically when configured). Returns the respawn's boot cost.
    pub fn restart_shard(&self, idx: usize) -> Result<Duration, WedgeError> {
        self.set.restart_shard(idx)
    }

    /// Block until shard `idx` reports healthy, up to `timeout`. Returns
    /// whether it did — the test/demo helper for "the shard rejoined the
    /// ring".
    pub fn await_healthy(&self, idx: usize, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        while std::time::Instant::now() < deadline {
            if self.set.health(idx) == ShardHealth::Healthy {
                return true;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        false
    }

    /// Submit one link for service on whichever shard the acceptor picks
    /// (the link's source-address affinity key is used under
    /// [`AcceptPolicy::SessionAffinity`]). The handle resolves to the
    /// report, whose shard attribution names the shard that served it.
    pub fn serve(&self, link: Duplex) -> Result<ShardJobHandle<S::Report>, WedgeError> {
        self.acceptor.submit(link)
    }

    /// [`Self::serve`] with an explicit affinity key (ignored by the
    /// non-affinity policies).
    pub fn serve_with_key(
        &self,
        link: Duplex,
        key: u64,
    ) -> Result<ShardJobHandle<S::Report>, WedgeError> {
        self.acceptor.submit_with_key(link, key)
    }

    /// Batch driver: serve every link and return the outcomes **in link
    /// order** — `result[i]` is `links[i]`'s outcome — backing off
    /// briefly whenever every shard pushes back. On a supervised
    /// front-end a transiently all-dead set (every shard killed, restarts
    /// pending) is also waited out; only a shut-down set fails the link.
    pub fn serve_all(&self, links: Vec<Duplex>) -> Vec<Result<S::Report, WedgeError>> {
        let handles: Vec<Result<ShardJobHandle<S::Report>, WedgeError>> = links
            .into_iter()
            .map(|link| self.submit_with_backoff(link))
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.and_then(ShardJobHandle::join))
            .collect()
    }

    /// The accept loop: drain `listener` in batches of up to `batch`
    /// links and — once the listener closes and its backlog is drained —
    /// return every outcome **in arrival order**. No accepted connection
    /// is ever silently dropped: each either serves or resolves with an
    /// error.
    ///
    /// With [`FrontEndConfig::defer_accept`] (the default) an accepted
    /// link does not go to a shard yet: it parks on the front-end's
    /// readiness [`Reactor`], and only when its first byte arrives is it
    /// handed back — intact, the byte still queued — and submitted with
    /// the source-address affinity key it arrived with. One parked
    /// sthread thus fronts an arbitrary number of idle connections while
    /// shard queues hold only links with work to do. Protocols where the
    /// server speaks first disable deferral and submit on accept, as
    /// this loop always did.
    pub fn serve_listener(
        &self,
        listener: &Listener,
        batch: usize,
    ) -> Vec<Result<S::Report, WedgeError>> {
        let mut handles: Vec<Option<Result<ShardJobHandle<S::Report>, WedgeError>>> = Vec::new();
        // Readiness hand-backs: the reactor's notify callbacks send
        // `(arrival index, link)` here the moment a parked link has data.
        let (ready_tx, ready_rx) = std::sync::mpsc::channel::<(usize, Duplex)>();
        // Arrival index → the reactor id of its still-parked watch.
        let mut parked: Vec<(usize, u64)> = Vec::new();
        loop {
            match listener.accept_batch(batch, RecvTimeout::After(Duration::from_millis(20))) {
                Ok(links) => {
                    for link in links {
                        let idx = handles.len();
                        if self.defer_accept {
                            let tx = ready_tx.clone();
                            let id = self.accept_reactor().watch(link, move |link| {
                                // The pump may have returned already (its
                                // flush reclaims stragglers): a dead
                                // channel is fine.
                                let _ = tx.send((idx, link));
                            });
                            parked.push((idx, id));
                            handles.push(None);
                        } else {
                            handles.push(Some(self.submit_with_backoff(link)));
                        }
                    }
                }
                Err(NetError::Timeout) => {}
                Err(_) => break,
            }
            // Submit whatever woke while we were accepting.
            while let Ok((idx, link)) = ready_rx.try_recv() {
                handles[idx] = Some(self.submit_with_backoff(link));
            }
        }
        // Flush: the listener is closed, but some links may still be
        // parked. Reclaim each watch atomically — `take` returning the
        // link means its callback never fired (the client never spoke;
        // submit it anyway so it resolves rather than dangles), `None`
        // means the hand-back is in the channel (or about to be).
        for (idx, id) in parked {
            if handles[idx].is_some() {
                continue;
            }
            if let Some(link) = self.accept_reactor().take(id) {
                handles[idx] = Some(self.submit_with_backoff(link));
            }
        }
        while handles.iter().any(Option::is_none) {
            // Guaranteed to arrive: every un-taken watch has fired its
            // callback (or is inside it), and our sender keeps the
            // channel open.
            match ready_rx.recv_timeout(Duration::from_secs(1)) {
                Ok((idx, link)) => handles[idx] = Some(self.submit_with_backoff(link)),
                Err(_) => break,
            }
        }
        handles
            .into_iter()
            .map(|handle| match handle {
                Some(handle) => handle.and_then(ShardJobHandle::join),
                // Unreachable by construction; resolve rather than panic
                // if the impossible happens.
                None => Err(WedgeError::InvalidOperation(
                    "accepted link lost between reactor and shard".into(),
                )),
            })
            .collect()
    }

    /// Offer a link until something admits it or the refusal is final.
    /// Transient saturation (some shard healthy, all momentarily full)
    /// always backs off and retries; an **all-dead** set is waited out
    /// only while a supervisor exists that can still revive a shard —
    /// otherwise its uniform `ResourceExhausted` is surfaced immediately
    /// (deterministic shedding, never a spin). A shut-down set fails
    /// immediately with its permanent error.
    fn submit_with_backoff(&self, link: Duplex) -> Result<ShardJobHandle<S::Report>, WedgeError> {
        let key = link.affinity_key();
        let mut link = link;
        loop {
            match self.acceptor.offer(link, key) {
                Ok(handle) => return Ok(handle),
                Err((back, err)) => {
                    let shut_down = self
                        .set
                        .inner()
                        .shutdown
                        .load(std::sync::atomic::Ordering::SeqCst);
                    if shut_down {
                        return Err(err);
                    }
                    // A healthy shard exists: the refusal was transient
                    // saturation — back off and re-offer.
                    let any_healthy = self.set.inner().alive();
                    // `abandoned_shards` gauges shards the watchdog has
                    // currently written off; once it covers the whole
                    // ring nothing will come back, so waiting would spin
                    // forever.
                    let revivable = self.supervisor.as_ref().is_some_and(|supervisor| {
                        (supervisor.stats().abandoned_shards as usize) < self.set.shards()
                    });
                    if any_healthy || revivable {
                        link = back;
                        std::thread::sleep(Duration::from_millis(1));
                    } else {
                        // Every shard dead, nothing reviving them: shed
                        // deterministically with the acceptor's error.
                        return Err(err);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;
    use wedge_net::SourceAddr;

    /// Echo-style test server: waits for one message, reports the serving
    /// shard and the link's source host (so tests can match connections
    /// to outcomes).
    struct TagServer;

    #[derive(Debug)]
    struct TagReport {
        shard: usize,
        host: u8,
    }

    impl ShardServer for TagServer {
        type Report = TagReport;

        fn serve_link(&self, shard: usize, link: Duplex) -> Result<TagReport, WedgeError> {
            let _ = link.recv(RecvTimeout::Forever);
            Ok(TagReport {
                shard,
                host: link.source().map(|s| s.host[3]).unwrap_or(0),
            })
        }

        fn kernel_stats(&self) -> KernelStats {
            KernelStats::default()
        }
    }

    #[test]
    fn serve_listener_uses_source_affinity_without_protocol_help() {
        let front = ShardedFrontEnd::new(
            FrontEndConfig {
                shards: 4,
                policy: AcceptPolicy::SessionAffinity,
                ..FrontEndConfig::default()
            },
            |_id| Ok(TagServer),
        )
        .expect("front");
        let listener = Listener::bind("svc", 64);

        // Three hosts, three connections each (fresh ephemeral ports).
        let mut clients = Vec::new();
        for host in 1u8..=3 {
            for conn in 0u16..3 {
                let client = listener
                    .connect(SourceAddr::new([10, 0, 0, host], 40_000 + conn))
                    .expect("connect");
                client.send(b"go").unwrap();
                clients.push(client);
            }
        }
        listener.close();
        let outcomes = front.serve_listener(&listener, 4);
        assert_eq!(outcomes.len(), 9);
        // Same host ⇒ same shard, every time, with zero protocol bytes
        // examined (the ephemeral ports all differ).
        let mut host_shards: std::collections::HashMap<u8, Vec<usize>> =
            std::collections::HashMap::new();
        for outcome in outcomes {
            let report = outcome.expect("served");
            host_shards
                .entry(report.host)
                .or_default()
                .push(report.shard);
        }
        assert_eq!(host_shards.len(), 3);
        for (host, shards) in host_shards {
            assert!(
                shards.windows(2).all(|w| w[0] == w[1]),
                "host {host} must stick to one shard: {shards:?}"
            );
        }
        let stats = front.sched_stats();
        assert_eq!(stats.submitted, 9);
        assert_eq!(stats.completed, 9);
        assert_eq!(listener.stats().accepted, 9);
        assert!(listener.stats().batches > 0, "accepts were batched");
    }

    #[test]
    fn deferred_accept_parks_idle_links_off_the_shards() {
        // 12 idle connections against one shard with a 4-slot queue: with
        // deferred accept they park on the reactor — no slot, no serving
        // thread — while the 3 links that actually speak get served. A
        // hang-up (client drop) also counts as readiness, so every parked
        // link still resolves once the clients leave.
        let front = ShardedFrontEnd::new(
            FrontEndConfig {
                shards: 1,
                queue_capacity: 4,
                ..FrontEndConfig::default()
            },
            |_id| Ok(TagServer),
        )
        .expect("front");
        let listener = Listener::bind("lazy-svc", 32);
        let mut idle = Vec::new();
        for n in 0..12u8 {
            idle.push(
                listener
                    .connect(SourceAddr::new([10, 0, 2, n], 42_000))
                    .expect("connect"),
            );
        }
        let active: Vec<_> = (0..3u16)
            .map(|n| {
                let client = listener
                    .connect(SourceAddr::new([10, 0, 2, 100], 42_100 + n))
                    .expect("connect");
                client.send(b"go").unwrap();
                client
            })
            .collect();
        std::thread::scope(|scope| {
            let pump = scope.spawn(|| front.serve_listener(&listener, 8));
            let deadline = Instant::now() + Duration::from_secs(5);
            while front.sched_stats().completed < 3 {
                assert!(Instant::now() < deadline, "active links never served");
                std::thread::sleep(Duration::from_millis(1));
            }
            assert_eq!(
                front.sched_stats().submitted,
                3,
                "idle links must not occupy shard slots"
            );
            assert!(
                front.reactor.get().expect("reactor spawned").links() >= 12,
                "idle links park on the reactor"
            );
            drop(idle);
            drop(active);
            listener.close();
            let outcomes = pump.join().expect("pump");
            assert_eq!(outcomes.len(), 15, "every accepted link resolves");
            assert!(outcomes.iter().all(Result::is_ok));
        });
        let stats = front.sched_stats();
        assert_eq!(stats.completed, 15);
        // Re-offers after transient saturation count as fresh offers, so
        // the balance invariant is the precise claim here.
        assert_eq!(stats.submitted, stats.completed + stats.rejected);
    }

    #[test]
    fn supervised_front_end_waits_out_a_fully_dead_set() {
        let front = Arc::new(
            ShardedFrontEnd::new(
                FrontEndConfig {
                    shards: 1,
                    supervisor: Some(SupervisorConfig {
                        poll_interval: Duration::from_millis(1),
                        backoff_base: Duration::from_millis(1),
                        ..SupervisorConfig::default()
                    }),
                    ..FrontEndConfig::default()
                },
                |_id| Ok(TagServer),
            )
            .expect("front"),
        );
        front.kill_shard(0);
        // With every shard dead, an unsupervised front would fail the
        // link permanently; the supervised one blocks until the watchdog
        // revives shard 0 and then serves.
        let (client, server) = wedge_net::duplex_pair("c", "s");
        client.send(b"go").unwrap();
        let submitter = {
            let front = front.clone();
            std::thread::spawn(move || front.serve_all(vec![server]))
        };
        let outcomes = submitter.join().expect("submitter");
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0].as_ref().expect("served").shard, 0);
        let deadline = Instant::now() + Duration::from_secs(5);
        while front.restart_stats().expect("supervised").restarts == 0 {
            assert!(Instant::now() < deadline, "restart never counted");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(front.restart_stats().expect("supervised").restarts, 1);
    }

    #[test]
    fn fully_abandoned_front_end_fails_submissions_instead_of_spinning() {
        // The retained factory fails every respawn: the storm guard must
        // abandon the only shard, after which submissions return an error
        // promptly instead of waiting forever for a revival that cannot
        // come.
        let boots = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let factory_boots = boots.clone();
        let front = ShardedFrontEnd::new(
            FrontEndConfig {
                shards: 1,
                supervisor: Some(SupervisorConfig {
                    poll_interval: Duration::from_millis(1),
                    backoff_base: Duration::from_millis(1),
                    storm_threshold: 2,
                    ..SupervisorConfig::default()
                }),
                ..FrontEndConfig::default()
            },
            move |_id| {
                if factory_boots.fetch_add(1, std::sync::atomic::Ordering::SeqCst) == 0 {
                    Ok(TagServer)
                } else {
                    Err(WedgeError::InvalidOperation("respawn always fails".into()))
                }
            },
        )
        .expect("front");
        front.kill_shard(0);
        let deadline = Instant::now() + Duration::from_secs(10);
        while front.restart_stats().expect("supervised").storms == 0 {
            assert!(Instant::now() < deadline, "storm guard never tripped");
            std::thread::sleep(Duration::from_millis(1));
        }
        let stats = front.restart_stats().expect("supervised");
        assert_eq!(stats.restarts, 0);
        assert_eq!(stats.failed_restarts, 2, "both respawn attempts failed");
        // serve_all must resolve with an error, not hang. The abandoned
        // set is not shut down, so the error is the uniform shedding
        // signal, not the permanent one.
        let (_client, server) = wedge_net::duplex_pair("late", "s");
        let outcomes = front.serve_all(vec![server]);
        assert_eq!(outcomes.len(), 1);
        assert!(matches!(
            outcomes[0],
            Err(WedgeError::ResourceExhausted { .. })
        ));
    }

    /// The all-dead-ring spec for [`AcceptPolicy::SessionAffinity`]: with
    /// *every* shard killed (not shut down), a submission must fail
    /// deterministically with `ResourceExhausted` — the same shedding
    /// signal saturation produces — without spinning or panicking, for
    /// any affinity key, repeatedly. (The single-dead-shard fallback is
    /// covered by the restart tests in `shard.rs` and the supervised
    /// front-end integration tests.)
    #[test]
    fn session_affinity_on_an_all_dead_ring_sheds_deterministically() {
        let front = ShardedFrontEnd::new(
            FrontEndConfig {
                shards: 3,
                policy: AcceptPolicy::SessionAffinity,
                ..FrontEndConfig::default()
            },
            |_id| Ok(TagServer),
        )
        .expect("front");
        for idx in 0..3 {
            front.kill_shard(idx);
        }
        // Every key — whichever dead shard it hashes to, including the
        // fallback walk finding nothing — fails fast with backpressure.
        for key in [0u64, 1, 7, 0xFEED_F00D, u64::MAX] {
            for _attempt in 0..3 {
                let started = Instant::now();
                let (_client, server) = wedge_net::duplex_pair("dead-ring", "s");
                let err = front.serve_with_key(server, key).unwrap_err();
                assert!(
                    matches!(err, WedgeError::ResourceExhausted { .. }),
                    "all-dead ring must shed with backpressure, got {err:?}"
                );
                assert!(
                    started.elapsed() < Duration::from_secs(1),
                    "shedding must be immediate, not a timeout or a spin"
                );
            }
        }
        let stats = front.sched_stats();
        assert_eq!(stats.submitted, 15);
        assert_eq!(stats.rejected, 15);
        assert_eq!(stats.completed, 0);
        // A revived shard turns the same keys back into served links.
        front.restart_shard(1).expect("revive");
        let (client, server) = wedge_net::duplex_pair("after-revival", "s");
        client.send(b"go").unwrap();
        let report = front.serve_with_key(server, 7).unwrap().join().unwrap();
        assert_eq!(report.shard, 1, "only healthy shard serves everything");
    }

    /// Same all-dead ring driven through the listener batch path: every
    /// accepted connection resolves with an error — no accepted link is
    /// silently dropped and the accept pump terminates.
    #[test]
    fn all_dead_ring_resolves_every_accepted_link_with_an_error() {
        let front = ShardedFrontEnd::new(
            FrontEndConfig {
                shards: 2,
                policy: AcceptPolicy::SessionAffinity,
                ..FrontEndConfig::default()
            },
            |_id| Ok(TagServer),
        )
        .expect("front");
        front.kill_shard(0);
        front.kill_shard(1);
        let listener = Listener::bind("dead-svc", 16);
        let _clients: Vec<_> = (0..4u8)
            .map(|n| {
                listener
                    .connect(SourceAddr::new([10, 0, 1, n], 41_000))
                    .expect("connect")
            })
            .collect();
        listener.close();
        let outcomes = front.serve_listener(&listener, 4);
        assert_eq!(outcomes.len(), 4, "every accepted link resolves");
        assert!(outcomes
            .iter()
            .all(|o| matches!(o, Err(WedgeError::ResourceExhausted { .. }))));
    }

    #[test]
    fn await_healthy_reports_the_rejoin() {
        let front = ShardedFrontEnd::new(
            FrontEndConfig {
                shards: 2,
                supervisor: Some(SupervisorConfig {
                    poll_interval: Duration::from_millis(1),
                    backoff_base: Duration::from_millis(1),
                    ..SupervisorConfig::default()
                }),
                ..FrontEndConfig::default()
            },
            |_id| Ok(TagServer),
        )
        .expect("front");
        let started = Instant::now();
        front.kill_shard(1);
        assert!(
            front.await_healthy(1, Duration::from_secs(5)),
            "supervisor must revive shard 1"
        );
        assert!(started.elapsed() < Duration::from_secs(5));
        assert_eq!(front.shard_stats()[1].restarts, 1);
        assert_eq!(front.aggregate_stats().restarts, 1);
    }
}
