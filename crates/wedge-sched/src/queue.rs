//! Bounded per-worker run queues with a work-stealing discipline.
//!
//! Each scheduler worker owns one [`RunQueue`]. The owner drains its queue
//! from the **front** (FIFO — oldest connection first, bounding per-job
//! latency); idle workers steal from the **back** of a sibling's queue
//! (newest job), the classic stealing end that minimises contention with
//! the owner and tends to migrate the work most likely to still be cold.
//!
//! Queues are *bounded*: a full queue refuses the push, and the scheduler
//! turns that refusal into backpressure at admission time rather than
//! letting memory grow with offered load.

use std::collections::VecDeque;

use parking_lot::Mutex;

/// A bounded double-ended job queue.
#[derive(Debug)]
pub struct RunQueue<T> {
    capacity: usize,
    jobs: Mutex<VecDeque<T>>,
}

impl<T> RunQueue<T> {
    /// Create a queue holding at most `capacity` jobs.
    pub fn new(capacity: usize) -> RunQueue<T> {
        RunQueue {
            capacity: capacity.max(1),
            jobs: Mutex::new(VecDeque::new()),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.jobs.lock().len()
    }

    /// Is the queue empty?
    pub fn is_empty(&self) -> bool {
        self.jobs.lock().is_empty()
    }

    /// Enqueue at the back. Returns the job back to the caller when the
    /// queue is full (the backpressure signal), otherwise the new depth.
    pub fn push(&self, job: T) -> Result<usize, T> {
        let mut jobs = self.jobs.lock();
        if jobs.len() >= self.capacity {
            return Err(job);
        }
        jobs.push_back(job);
        Ok(jobs.len())
    }

    /// Owner path: dequeue the oldest job.
    pub fn pop_front(&self) -> Option<T> {
        self.jobs.lock().pop_front()
    }

    /// Thief path: dequeue the newest job.
    pub fn steal_back(&self) -> Option<T> {
        self.jobs.lock().pop_back()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_for_owner_lifo_for_thief() {
        let q = RunQueue::new(4);
        for i in 0..4 {
            q.push(i).unwrap();
        }
        assert_eq!(q.pop_front(), Some(0));
        assert_eq!(q.steal_back(), Some(3));
        assert_eq!(q.pop_front(), Some(1));
        assert_eq!(q.pop_front(), Some(2));
        assert_eq!(q.pop_front(), None);
        assert_eq!(q.steal_back(), None);
    }

    #[test]
    fn full_queue_returns_the_job() {
        let q = RunQueue::new(2);
        assert_eq!(q.push("a"), Ok(1));
        assert_eq!(q.push("b"), Ok(2));
        assert_eq!(q.push("c"), Err("c"));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn capacity_is_at_least_one() {
        let q = RunQueue::new(0);
        assert_eq!(q.capacity(), 1);
        q.push(7).unwrap();
        assert!(!q.is_empty());
        assert_eq!(q.pop_front(), Some(7));
        assert!(q.is_empty());
    }
}
