//! Scheduler and pool counters, in the style of
//! [`wedge_core::KernelStats`]: cheap atomic counters accumulated on the
//! hot path, snapshotted into plain `Clone + PartialEq` structs for tests
//! and experiment harnesses.

use std::sync::atomic::{AtomicU64, Ordering};

/// A snapshot of scheduler activity (see [`crate::Scheduler::stats`]).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct SchedStats {
    /// Jobs accepted into a run queue.
    pub submitted: u64,
    /// Jobs that ran to completion.
    pub completed: u64,
    /// Jobs refused by admission control (quota or full queues).
    pub rejected: u64,
    /// Jobs executed by a worker that stole them from a sibling's queue.
    pub stolen: u64,
    /// Highest single-queue depth observed at enqueue time.
    pub peak_queue_depth: u64,
}

impl std::ops::AddAssign<&SchedStats> for SchedStats {
    /// Field-wise accumulation for aggregating per-shard counters, in the
    /// `KernelStats` style: counters sum, peak depths take the max. The
    /// exhaustive destructuring makes adding a field without extending
    /// this impl a compile error.
    fn add_assign(&mut self, other: &SchedStats) {
        let SchedStats {
            submitted,
            completed,
            rejected,
            stolen,
            peak_queue_depth,
        } = other;
        self.submitted += submitted;
        self.completed += completed;
        self.rejected += rejected;
        self.stolen += stolen;
        self.peak_queue_depth = self.peak_queue_depth.max(*peak_queue_depth);
    }
}

/// A snapshot of worker-pool activity (see [`crate::WorkerPool::stats`]).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct PoolStats {
    /// Successful checkouts.
    pub checkouts: u64,
    /// Checkins (every checkout is eventually checked back in).
    pub checkins: u64,
    /// Checkout attempts refused because too many callers were waiting.
    pub rejected: u64,
    /// Zeroize passes performed on checkin.
    pub scrubs: u64,
    /// Checkouts that had to wait for a free worker.
    pub contended: u64,
    /// Workers permanently retired because their checkin scrub failed
    /// (a tainted worker is never returned to the pool).
    pub retired: u64,
}

/// Internal atomic accumulator behind [`SchedStats`].
#[derive(Debug, Default)]
pub(crate) struct SchedCounters {
    pub(crate) submitted: AtomicU64,
    pub(crate) completed: AtomicU64,
    pub(crate) rejected: AtomicU64,
    pub(crate) stolen: AtomicU64,
    pub(crate) peak_queue_depth: AtomicU64,
}

impl SchedCounters {
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn observe_depth(&self, depth: u64) {
        self.peak_queue_depth.fetch_max(depth, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> SchedStats {
        SchedStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            stolen: self.stolen.load(Ordering::Relaxed),
            peak_queue_depth: self.peak_queue_depth.load(Ordering::Relaxed),
        }
    }
}

/// Internal atomic accumulator behind [`PoolStats`].
#[derive(Debug, Default)]
pub(crate) struct PoolCounters {
    pub(crate) checkouts: AtomicU64,
    pub(crate) checkins: AtomicU64,
    pub(crate) rejected: AtomicU64,
    pub(crate) scrubs: AtomicU64,
    pub(crate) contended: AtomicU64,
    pub(crate) retired: AtomicU64,
}

impl PoolCounters {
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> PoolStats {
        PoolStats {
            checkouts: self.checkouts.load(Ordering::Relaxed),
            checkins: self.checkins.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            scrubs: self.scrubs.load(Ordering::Relaxed),
            contended: self.contended.load(Ordering::Relaxed),
            retired: self.retired.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshots_reflect_bumps() {
        let sched = SchedCounters::default();
        SchedCounters::bump(&sched.submitted);
        SchedCounters::bump(&sched.submitted);
        SchedCounters::bump(&sched.stolen);
        sched.observe_depth(3);
        sched.observe_depth(2);
        let snap = sched.snapshot();
        assert_eq!(snap.submitted, 2);
        assert_eq!(snap.stolen, 1);
        assert_eq!(snap.peak_queue_depth, 3);

        let pool = PoolCounters::default();
        PoolCounters::bump(&pool.checkouts);
        PoolCounters::bump(&pool.scrubs);
        let snap = pool.snapshot();
        assert_eq!(snap.checkouts, 1);
        assert_eq!(snap.scrubs, 1);
        assert_eq!(snap.checkins, 0);
    }

    #[test]
    fn sched_stats_aggregate_with_add_assign() {
        let mut total = SchedStats {
            submitted: 3,
            completed: 2,
            rejected: 1,
            stolen: 0,
            peak_queue_depth: 5,
        };
        total += &SchedStats {
            submitted: 4,
            completed: 4,
            rejected: 0,
            stolen: 2,
            peak_queue_depth: 3,
        };
        assert_eq!(total.submitted, 7);
        assert_eq!(total.completed, 6);
        assert_eq!(total.rejected, 1);
        assert_eq!(total.stolen, 2);
        assert_eq!(total.peak_queue_depth, 5, "peak takes the max, not the sum");
    }
}
