//! The multi-worker job scheduler.
//!
//! N OS worker threads each own a bounded [`RunQueue`]; submitted jobs are
//! placed round-robin, executed FIFO by their owner, and stolen (newest
//! first) by idle siblings. Admission is controlled by a
//! [`ResourceAccountant`]: each in-flight job holds one slot on the
//! `Sthreads` axis (connection jobs spawn sthreads, so the axis is the
//! natural one), and both a full quota and full run queues reject the job
//! with [`WedgeError::ResourceExhausted`] instead of queuing unboundedly —
//! the backpressure contract servers build on.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use wedge_core::resource::{ResourceAccountant, ResourceKind, ResourceLimits};
use wedge_core::WedgeError;

use crate::metrics::{SchedCounters, SchedStats};
use crate::queue::RunQueue;

/// Scheduler sizing and admission configuration.
#[derive(Debug, Clone, Copy)]
pub struct SchedulerConfig {
    /// Number of worker threads (and run queues).
    pub workers: usize,
    /// Bounded capacity of each worker's run queue.
    pub queue_capacity: usize,
    /// Maximum jobs admitted (queued + running) at once; `None` leaves the
    /// quota axis unlimited and only the bounded queues push back.
    pub max_pending: Option<u64>,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            workers: 4,
            queue_capacity: 32,
            max_pending: None,
        }
    }
}

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    queues: Vec<RunQueue<Job>>,
    admission: Arc<ResourceAccountant>,
    counters: SchedCounters,
    shutdown: AtomicBool,
    wakeup: Mutex<()>,
    signal: Condvar,
}

impl Shared {
    fn find_work(&self, me: usize) -> Option<(Job, bool)> {
        if let Some(job) = self.queues[me].pop_front() {
            return Some((job, false));
        }
        let n = self.queues.len();
        for offset in 1..n {
            if let Some(job) = self.queues[(me + offset) % n].steal_back() {
                return Some((job, true));
            }
        }
        None
    }
}

/// A multi-worker scheduler with bounded work-stealing run queues.
pub struct Scheduler {
    shared: Arc<Shared>,
    next_queue: AtomicUsize,
    threads: Vec<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("workers", &self.threads.len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl Scheduler {
    /// Start `config.workers` worker threads.
    pub fn new(config: SchedulerConfig) -> Scheduler {
        let workers = config.workers.max(1);
        let mut limits = ResourceLimits::unlimited();
        if let Some(max) = config.max_pending {
            limits = limits.with_sthreads(max);
        }
        let shared = Arc::new(Shared {
            queues: (0..workers)
                .map(|_| RunQueue::new(config.queue_capacity))
                .collect(),
            admission: ResourceAccountant::new(limits),
            counters: SchedCounters::default(),
            shutdown: AtomicBool::new(false),
            wakeup: Mutex::new(()),
            signal: Condvar::new(),
        });
        let threads = (0..workers)
            .map(|me| {
                let shared = shared.clone();
                thread::Builder::new()
                    .name(format!("wedge-sched-{me}"))
                    .spawn(move || worker_loop(&shared, me))
                    .expect("spawn scheduler worker")
            })
            .collect();
        Scheduler {
            shared,
            next_queue: AtomicUsize::new(0),
            threads,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.threads.len()
    }

    /// Scheduler activity counters.
    pub fn stats(&self) -> SchedStats {
        self.shared.counters.snapshot()
    }

    /// The admission accountant (job slots are the `Sthreads` axis).
    pub fn admission(&self) -> &Arc<ResourceAccountant> {
        &self.shared.admission
    }

    /// Submit a job. Returns a handle resolving to the job's result, or
    /// [`WedgeError::ResourceExhausted`] when admission control (quota or
    /// full run queues) rejects it.
    pub fn submit<R, F>(&self, f: F) -> Result<JobHandle<R>, WedgeError>
    where
        R: Send + 'static,
        F: FnOnce() -> R + Send + 'static,
    {
        self.shared
            .admission
            .charge(ResourceKind::Sthreads, 1)
            .inspect_err(|_| {
                SchedCounters::bump(&self.shared.counters.rejected);
            })?;
        let (tx, rx) = crossbeam::channel::bounded::<Result<R, WedgeError>>(1);
        let shared = self.shared.clone();
        let mut job: Job = Box::new(move || {
            let outcome = catch_unwind(AssertUnwindSafe(f));
            shared.admission.release(ResourceKind::Sthreads, 1);
            SchedCounters::bump(&shared.counters.completed);
            let result = outcome
                .map_err(|payload| WedgeError::SthreadPanicked(wedge_core::panic_message(payload)));
            let _ = tx.send(result);
        });

        // Round-robin placement, falling over to any queue with room.
        let n = self.shared.queues.len();
        let start = self.next_queue.fetch_add(1, Ordering::Relaxed) % n;
        for offset in 0..n {
            match self.shared.queues[(start + offset) % n].push(job) {
                Ok(depth) => {
                    SchedCounters::bump(&self.shared.counters.submitted);
                    self.shared.counters.observe_depth(depth as u64);
                    // One waker suffices: any woken worker can steal the job
                    // from any queue, and the timed wait backstops a lost
                    // wakeup.
                    self.shared.signal.notify_one();
                    return Ok(JobHandle { rx });
                }
                Err(back) => job = back,
            }
        }
        // Every queue is full: refund the slot and push back.
        self.shared.admission.release(ResourceKind::Sthreads, 1);
        SchedCounters::bump(&self.shared.counters.rejected);
        Err(WedgeError::ResourceExhausted {
            resource: "scheduler run-queue slots".to_string(),
            limit: (n * self.shared.queues[0].capacity()) as u64,
            attempted: (n * self.shared.queues[0].capacity()) as u64 + 1,
        })
    }

    /// Stop accepting implicit work and join the workers after they drain
    /// every queued job.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.signal.notify_all();
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn worker_loop(shared: &Shared, me: usize) {
    loop {
        match shared.find_work(me) {
            Some((job, was_stolen)) => {
                if was_stolen {
                    SchedCounters::bump(&shared.counters.stolen);
                }
                job();
            }
            None => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    // Drain-then-exit: one more scan happens on the next
                    // iteration if a submit raced the shutdown flag.
                    if shared.queues.iter().all(|q| q.is_empty()) {
                        return;
                    }
                } else {
                    let mut guard = shared.wakeup.lock();
                    shared
                        .signal
                        .wait_for(&mut guard, Duration::from_millis(20));
                }
            }
        }
    }
}

/// Handle to a submitted job; resolves to the job's return value.
pub struct JobHandle<R> {
    rx: crossbeam::channel::Receiver<Result<R, WedgeError>>,
}

impl<R> std::fmt::Debug for JobHandle<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("JobHandle { .. }")
    }
}

impl<R> JobHandle<R> {
    /// Block until the job finishes. A panicking job surfaces as
    /// [`WedgeError::SthreadPanicked`].
    pub fn join(self) -> Result<R, WedgeError> {
        self.rx
            .recv()
            .map_err(|_| WedgeError::InvalidOperation("scheduler dropped the job".into()))?
    }

    /// Non-blocking poll; `None` while the job is still running.
    pub fn try_join(&self) -> Option<Result<R, WedgeError>> {
        self.rx.try_recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn jobs_run_and_results_round_trip() {
        let sched = Scheduler::new(SchedulerConfig {
            workers: 2,
            queue_capacity: 8,
            max_pending: None,
        });
        let handles: Vec<_> = (0..16u64)
            .map(|i| sched.submit(move || i * i).unwrap())
            .collect();
        let mut results: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        results.sort_unstable();
        assert_eq!(results, (0..16u64).map(|i| i * i).collect::<Vec<_>>());
        let stats = sched.stats();
        assert_eq!(stats.submitted, 16);
        assert_eq!(stats.completed, 16);
        assert_eq!(stats.rejected, 0);
    }

    #[test]
    fn admission_quota_rejects_beyond_max_pending() {
        let sched = Scheduler::new(SchedulerConfig {
            workers: 1,
            queue_capacity: 16,
            max_pending: Some(2),
        });
        let gate = Arc::new(std::sync::Barrier::new(2));
        let g1 = gate.clone();
        // One job blocks the single worker...
        let blocker = sched.submit(move || g1.wait()).unwrap();
        // ...a second occupies the remaining admission slot...
        let queued = sched.submit(|| ()).unwrap();
        // ...and the third is refused by the quota.
        let err = sched.submit(|| ()).unwrap_err();
        assert!(matches!(err, WedgeError::ResourceExhausted { .. }));
        gate.wait();
        blocker.join().unwrap();
        queued.join().unwrap();
        assert_eq!(sched.stats().rejected, 1);
        // Slots are released on completion, so admission recovers.
        sched.submit(|| ()).unwrap().join().unwrap();
    }

    #[test]
    fn full_bounded_queues_reject_with_backpressure() {
        let sched = Scheduler::new(SchedulerConfig {
            workers: 1,
            queue_capacity: 1,
            max_pending: None,
        });
        let started = Arc::new(std::sync::Barrier::new(2));
        let release = Arc::new(std::sync::Barrier::new(2));
        let (s, r) = (started.clone(), release.clone());
        let blocker = sched
            .submit(move || {
                s.wait();
                r.wait();
            })
            .unwrap();
        // Rendezvous: the worker is now definitely running the blocker, so
        // the single queue slot is empty.
        started.wait();
        let queued = sched.submit(|| ()).unwrap();
        // Queue capacity 1: one queued job fits, the next must bounce.
        let err = sched.submit(|| ()).unwrap_err();
        assert!(matches!(err, WedgeError::ResourceExhausted { .. }));
        release.wait();
        blocker.join().unwrap();
        queued.join().unwrap();
        assert_eq!(sched.stats().rejected, 1);
    }

    #[test]
    fn idle_workers_steal_queued_jobs() {
        // Worker 0 is pinned by a long job; its queued siblings must be
        // stolen and completed by worker 1.
        let sched = Scheduler::new(SchedulerConfig {
            workers: 2,
            queue_capacity: 64,
            max_pending: None,
        });
        let gate = Arc::new(std::sync::Barrier::new(2));
        let executed = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for i in 0..12u64 {
            let executed = executed.clone();
            let gate = gate.clone();
            handles.push(
                sched
                    .submit(move || {
                        if i == 0 {
                            gate.wait();
                        }
                        executed.fetch_add(1, Ordering::Relaxed);
                    })
                    .unwrap(),
            );
        }
        // All short jobs finish even though one worker is blocked.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while executed.load(Ordering::Relaxed) < 11 {
            assert!(std::time::Instant::now() < deadline, "stealing stalled");
            std::thread::sleep(Duration::from_millis(2));
        }
        gate.wait();
        for h in handles {
            h.join().unwrap();
        }
        assert!(sched.stats().stolen > 0, "expected at least one steal");
    }

    #[test]
    fn panicking_jobs_report_and_release_their_slot() {
        let sched = Scheduler::new(SchedulerConfig {
            workers: 1,
            queue_capacity: 4,
            max_pending: Some(1),
        });
        let handle = sched.submit(|| panic!("job exploded")).unwrap();
        match handle.join() {
            Err(WedgeError::SthreadPanicked(msg)) => assert!(msg.contains("exploded")),
            other => panic!("expected panic report, got {other:?}"),
        }
        // The slot was released despite the panic.
        sched.submit(|| 7u8).unwrap().join().unwrap();
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let sched = Scheduler::new(SchedulerConfig {
            workers: 2,
            queue_capacity: 64,
            max_pending: None,
        });
        let count = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..32)
            .map(|_| {
                let count = count.clone();
                sched
                    .submit(move || {
                        std::thread::sleep(Duration::from_millis(1));
                        count.fetch_add(1, Ordering::Relaxed);
                    })
                    .unwrap()
            })
            .collect();
        sched.shutdown();
        assert_eq!(count.load(Ordering::Relaxed), 32);
        for h in handles {
            h.join().unwrap();
        }
    }
}
