//! # wedge-sched — a concurrent compartment scheduler for Wedge workloads
//!
//! The paper's recycled callgates (§3.3, Table 2) amortise compartment
//! creation over successive invocations, but the reproduction's servers
//! still served connections *sequentially per server instance*. This crate
//! is the subsystem that lifts them to concurrent operation:
//!
//! * [`WorkerPool`] — per-workload pools of **pre-warmed pooled recycled
//!   workers** ([`wedge_core::RecycledWorkerHandle`]). Workers are spawned
//!   at pool creation, checked out per request, and **zeroized between
//!   principals** on checkin (the kernel wipes the worker's private scratch
//!   segment and COW views), closing the §3.3 residue leak that plain
//!   recycled callgates accept.
//! * [`Scheduler`] — a multi-worker job scheduler with **bounded per-worker
//!   run queues** and **work stealing**: each worker drains its own queue in
//!   FIFO order and steals from the back of siblings' queues when idle.
//! * **Admission control and backpressure** — job slots are charged against
//!   a [`wedge_core::resource::ResourceAccountant`], so exhaustion surfaces
//!   as the same [`wedge_core::WedgeError::ResourceExhausted`] the resource
//!   quotas use, and full run queues reject instead of growing without
//!   bound.
//! * [`SchedStats`] / [`PoolStats`] — `KernelStats`-style counters for every
//!   scheduler and pool decision (submitted, completed, rejected, stolen,
//!   checkouts, scrubs, peak depths).
//! * [`ShardSet`] + [`Acceptor`] — the **multi-process sharding front-end**:
//!   N forked shard workers, each owning an independent simulated kernel
//!   (the fork image/descriptor-copy cost is charged once at boot via
//!   `wedge_core::procsim::ForkSim` and amortised by pre-warming), behind a
//!   shared acceptor with pluggable placement policies (round-robin,
//!   least-loaded, session-affinity hashing with deterministic
//!   next-healthy fallback), per-shard health and admission backpressure,
//!   and kill-time re-routing of queued links ([`KillReport`]).
//! * [`Supervisor`] — the shard watchdog: auto-restarts killed shards
//!   (fresh kernel via the retained factory, old ring index) with bounded
//!   exponential backoff and restart-storm detection; [`RestartStats`]
//!   counts revivals and kill-to-healthy latency.
//! * [`ShardedFrontEnd`] — the protocol-agnostic serving front-end tying
//!   the layers together: one generic config/serve-loop/aggregation shell
//!   over `ShardSet` + `Acceptor` + `Supervisor`, including
//!   [`front::ShardedFrontEnd::serve_listener`], the accept loop over a
//!   [`wedge_net::Listener`] that derives source-address affinity keys.
//!   The Apache, SSH and POP3 front-ends are thin wrappers around it.
//!   A front-end can register the [`wedge_tls::SessionStore`] its shards
//!   consult ([`front::ShardedFrontEnd::with_session_store`]) — the
//!   in-process shared cache or a `wedge-cachenet` remote ring — and
//!   expose resumption health
//!   ([`front::ShardedFrontEnd::resumption_hit_rate`]).
//!
//! `wedge-apache` builds its concurrent front-end and `wedge-ssh` its
//! pooled privsep monitors on top of this crate; `wedge-bench` measures the
//! sequential-vs-pooled and single-vs-many-shard throughput gaps. See
//! `README.md` for the isolation trade-offs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod acceptor;
pub mod front;
pub mod metrics;
pub mod pool;
pub mod queue;
pub mod scheduler;
pub mod shard;
pub mod supervisor;

pub use acceptor::{hash_name, shard_for_key, AcceptPolicy, Acceptor, ShardJobHandle};
pub use front::{FrontEndConfig, ShardedFrontEnd};
pub use metrics::{PoolStats, SchedStats};
pub use pool::{PoolCheckout, PoolConfig, WorkerPool};
pub use queue::RunQueue;
pub use scheduler::{JobHandle, Scheduler, SchedulerConfig};
pub use shard::{
    BootStrategy, KillReport, ShardConfig, ShardHealth, ShardServer, ShardSet, ShardStats,
};
pub use supervisor::{RestartStats, Supervisor, SupervisorConfig};
