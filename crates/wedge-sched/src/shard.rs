//! Forked kernel shards behind a shared front-end.
//!
//! The instance pools of the first scheduler iteration sharded *within*
//! one front-end object: N server instances, one work-stealing scheduler,
//! one process. A [`ShardSet`] is the multi-process analogue: each shard
//! boots its **own** server instance over an independent simulated kernel
//! (paying [`wedge_core::procsim::ForkSim`]'s fork cost — the full
//! image + descriptor-table copy a real `fork` would pay — once at boot,
//! amortised by pre-warming every shard before the first connection), and
//! runs a dedicated worker that drains the shard's bounded link queue.
//!
//! Per-shard **health and backpressure** ride the same admission path as
//! everything else in the reproduction: each shard charges one slot per
//! in-flight link on a [`ResourceAccountant`] (`Sthreads` axis), so a
//! saturated shard refuses with [`WedgeError::ResourceExhausted`] and a
//! killed shard refuses outright; the [`crate::Acceptor`] skips refusing
//! shards and surfaces `ResourceExhausted` only when *every* shard
//! rejects. Killing a shard drains its queued links and re-routes them to
//! healthy siblings — a queued connection is never silently dropped; if no
//! sibling can take it, its handle resolves to the same
//! `ResourceExhausted` a fresh submission would have seen.
//!
//! A killed shard is no longer dead forever: [`ShardSet::restart_shard`]
//! respawns it **with its old ring index** — a fresh simulated kernel via
//! [`ForkSim`] (the same image + descriptor copy the original boot paid),
//! the factory re-run inside the forked child, the server swapped in and a
//! new queue worker started — after which placement policies see it
//! healthy again and session-affinity keys that hash to it come home. The
//! [`crate::Supervisor`] automates this with bounded exponential backoff
//! and restart-storm detection.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex, RwLock};

use wedge_core::procsim::ForkSim;
use wedge_core::resource::{ResourceAccountant, ResourceKind, ResourceLimits};
use wedge_core::{KernelStats, WedgeError};
use wedge_net::Duplex;
use wedge_telemetry::{Counter, HandshakeKind, Histogram, Telemetry, TelemetryEvent};

use crate::metrics::{SchedCounters, SchedStats};

/// A server a shard can boot and drive. One instance per shard, each over
/// its own independent kernel; the shard's worker thread is the only
/// caller of [`ShardServer::serve_link`], but stats may be read from any
/// thread.
pub trait ShardServer: Send + Sync + 'static {
    /// The per-connection report the server produces.
    type Report: Send + 'static;

    /// Serve one link end to end on this shard. `shard` is the serving
    /// shard's id, for stamping into the report so callers can attribute
    /// outcomes (and failures) to a shard.
    fn serve_link(&self, shard: usize, link: Duplex) -> Result<Self::Report, WedgeError>;

    /// The shard kernel's counters.
    fn kernel_stats(&self) -> KernelStats;

    /// Classify a successful report as a full or abbreviated (resumed)
    /// TLS handshake, or `None` for non-TLS protocols and reports whose
    /// handshake failed. The shard worker uses this to keep the
    /// `tls.handshake.full` / `tls.handshake.abbreviated` counters
    /// without the generic scheduler depending on any protocol crate.
    fn handshake_kind(_report: &Self::Report) -> Option<HandshakeKind> {
        None
    }

    /// Hook for the server to register its own collectors (typically the
    /// shard kernel's counters) on the front-end's [`Telemetry`]. Called
    /// once when the owning [`ShardSet`] is instrumented, and again on
    /// every freshly forked replacement server after a restart.
    fn instrument(&self, _telemetry: &Telemetry) {}
}

/// How a shard's simulated fork constructs the child kernel's state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BootStrategy {
    /// Classic fork semantics: copy the parent's whole address-space
    /// image (`fork_image_bytes`) into the child. Boot cost scales with
    /// image size regardless of how much state the child actually needs.
    ImageCopy,
    /// Node-replication boot: ship only the compact policy op log and let
    /// the child's kernel replicas reconstruct state by **replaying** it
    /// (`wedge_core::oplog`). The fork copies `log_bytes` — the
    /// serialized log, typically a few KiB — so boot cost scales with
    /// logged operations, not address-space size.
    LogReplay {
        /// Serialized op-log size shipped to the child (see
        /// `wedge_core::Kernel::oplog_bytes` for a live kernel's value).
        log_bytes: usize,
    },
}

impl BootStrategy {
    /// Bytes the simulated fork must copy under this strategy.
    fn image_bytes(self, fork_image_bytes: usize) -> usize {
        match self {
            BootStrategy::ImageCopy => fork_image_bytes,
            BootStrategy::LogReplay { log_bytes } => log_bytes,
        }
    }
}

/// Shard-set sizing, backpressure and boot-cost configuration.
#[derive(Debug, Clone, Copy)]
pub struct ShardConfig {
    /// Number of shard workers (independent kernels) to fork.
    pub shards: usize,
    /// Bounded per-shard link-queue capacity.
    pub queue_capacity: usize,
    /// Per-shard admission limit on in-flight links (queued + serving);
    /// `None` leaves the quota axis unlimited and only the bounded queue
    /// pushes back.
    pub max_inflight: Option<u64>,
    /// Address-space image size the simulated fork copies at shard boot
    /// (only paid under [`BootStrategy::ImageCopy`]).
    pub fork_image_bytes: usize,
    /// Descriptor-table size the simulated fork copies at shard boot.
    pub fork_fd_count: usize,
    /// How the child kernel's state is constructed at boot and restart.
    pub boot: BootStrategy,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shards: 4,
            queue_capacity: 64,
            max_inflight: None,
            // A small server image: 1 MiB of address space and a handful
            // of listening/log descriptors.
            fork_image_bytes: 1 << 20,
            fork_fd_count: 16,
            // Replay-based boot is the default: a fresh shard kernel is an
            // op-log replica reconstructed from a few KiB of logged policy
            // ops, not a copy of the parent's image.
            boot: BootStrategy::LogReplay { log_bytes: 4096 },
        }
    }
}

/// Liveness of one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardHealth {
    /// Accepting links.
    Healthy,
    /// Killed (fault injection or operator action); accepts nothing.
    Failed,
    /// A restart is respawning the shard's kernel; accepts nothing yet.
    Restarting,
}

const HEALTH_HEALTHY: u8 = 0;
const HEALTH_FAILED: u8 = 1;
const HEALTH_RESTARTING: u8 = 2;

/// What [`ShardSet::kill_shard`] did with the dead shard's queued links.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KillReport {
    /// Queued links re-routed to a healthy sibling.
    pub rerouted: usize,
    /// Queued links no sibling could admit; each resolved through its
    /// handle with [`WedgeError::ResourceExhausted`] — failed loudly,
    /// never silently dropped.
    pub failed: usize,
}

/// The trace a job carries from placement to serve: the root context the
/// listener minted (read off the link), the tracer that owns it, and the
/// stamps the worker needs to close the `queue` span and the root. Rides
/// through re-routes unchanged, so a stolen link's queue span covers its
/// whole wait, first shard included.
pub(crate) struct JobTrace {
    pub(crate) tracer: std::sync::Arc<wedge_telemetry::Tracer>,
    /// The root span's context.
    pub(crate) ctx: wedge_telemetry::TraceContext,
    /// Root-span start (backlog enqueue), in tracer-clock ns.
    pub(crate) root_start_ns: u64,
    /// When the acceptor submitted the job, in tracer-clock ns.
    pub(crate) submitted_ns: u64,
}

/// One queued unit of work: a link plus the channel its report resolves
/// through. Public only to the crate so the acceptor can build and
/// re-route jobs.
pub(crate) struct ShardJob<R> {
    pub(crate) link: Duplex,
    pub(crate) tx: crossbeam::channel::Sender<Result<R, WedgeError>>,
    /// The request's trace, when the link came through a traced listener.
    /// Boxed so the untraced job (the common case) stays small enough to
    /// bounce through `Result` re-routes by value.
    pub(crate) trace: Option<Box<JobTrace>>,
}

pub(crate) struct Shard<S: ShardServer> {
    pub(crate) id: usize,
    /// The shard's server instance. Swapped for a freshly forked one on
    /// restart; the worker holds the read side while serving, restart
    /// takes the write side only after the old worker has been joined.
    pub(crate) server: RwLock<S>,
    pub(crate) queue: Mutex<VecDeque<ShardJob<S::Report>>>,
    signal: Condvar,
    admission: Arc<ResourceAccountant>,
    health: AtomicU8,
    /// Queued + currently-serving links (the least-loaded policy's load
    /// signal).
    depth: AtomicUsize,
    pub(crate) counters: SchedCounters,
    /// Simulated fork + prewarm cost of the most recent boot.
    boot_cost: Mutex<Duration>,
    /// Times this shard has been restarted after a kill.
    restarts: AtomicU64,
    /// The queue worker's join handle. Taken by restart (to wait out the
    /// in-flight link) and by shutdown.
    worker: Mutex<Option<thread::JoinHandle<()>>>,
    /// Claimed (CAS) by the one caller allowed to run a restart at a time.
    restart_claim: AtomicBool,
    queue_capacity: usize,
}

impl<S: ShardServer> Shard<S> {
    pub(crate) fn health(&self) -> ShardHealth {
        match self.health.load(Ordering::SeqCst) {
            HEALTH_HEALTHY => ShardHealth::Healthy,
            HEALTH_RESTARTING => ShardHealth::Restarting,
            _ => ShardHealth::Failed,
        }
    }

    /// Queued + in-flight links.
    pub(crate) fn depth(&self) -> usize {
        self.depth.load(Ordering::SeqCst)
    }

    /// Try to enqueue a job. `rerouted` marks jobs drained from a dead
    /// sibling (counted as `stolen` on this shard instead of `submitted`,
    /// so aggregate submissions count each link once).
    // Err hands the whole job back for re-routing — it is the normal
    // refusal path, not a rare error, so its size is the job's size.
    #[allow(clippy::result_large_err)]
    pub(crate) fn try_enqueue(
        &self,
        job: ShardJob<S::Report>,
        rerouted: bool,
    ) -> Result<(), ShardJob<S::Report>> {
        if self.health() != ShardHealth::Healthy {
            return Err(job);
        }
        if self.admission.charge(ResourceKind::Sthreads, 1).is_err() {
            SchedCounters::bump(&self.counters.rejected);
            return Err(job);
        }
        let mut queue = self.queue.lock();
        // Re-check under the queue lock: a kill drains the queue under this
        // lock, so a job enqueued after the health flip would be stranded.
        if self.health() != ShardHealth::Healthy || queue.len() >= self.queue_capacity {
            drop(queue);
            self.admission.release(ResourceKind::Sthreads, 1);
            SchedCounters::bump(&self.counters.rejected);
            return Err(job);
        }
        queue.push_back(job);
        let depth = self.depth.fetch_add(1, Ordering::SeqCst) + 1;
        self.counters.observe_depth(depth as u64);
        if rerouted {
            SchedCounters::bump(&self.counters.stolen);
        } else {
            SchedCounters::bump(&self.counters.submitted);
        }
        drop(queue);
        self.signal.notify_one();
        Ok(())
    }

    /// Mark the shard failed and hand back every queued job for
    /// re-routing.
    fn fail_and_drain(&self) -> Vec<ShardJob<S::Report>> {
        let mut queue = self.queue.lock();
        self.health.store(HEALTH_FAILED, Ordering::SeqCst);
        let drained: Vec<_> = queue.drain(..).collect();
        drop(queue);
        for _ in &drained {
            self.admission.release(ResourceKind::Sthreads, 1);
            self.depth.fetch_sub(1, Ordering::SeqCst);
        }
        self.signal.notify_all();
        drained
    }
}

/// Live instruments shared by every shard worker, installed once by
/// [`ShardSetInner::instrument`]. The serve histogram is recorded on the
/// worker thread (connection-scale work, so the `Instant::now` pair is
/// noise); the handshake counters are bumped from the report
/// classification so TLS mix is visible without a sink installed.
pub(crate) struct ShardProbes {
    pub(crate) telemetry: Telemetry,
    serve: Histogram,
    handshake_full: Counter,
    handshake_abbreviated: Counter,
}

pub(crate) struct ShardSetInner<S: ShardServer> {
    pub(crate) shards: Vec<Shard<S>>,
    /// Front-end-level counters: `submitted` counts every *offer* (a
    /// batch driver re-offering a refused link counts again, matching the
    /// `rejected` its refusal recorded — so `submitted == completed +
    /// rejected` always balances), `completed` each served link,
    /// `rejected` each offer refused by every shard (at submit time or
    /// after a failed re-route), `stolen` each link placed somewhere other
    /// than the acceptor policy's first choice.
    pub(crate) aggregate: SchedCounters,
    pub(crate) shutdown: AtomicBool,
    /// The per-shard server factory, kept so a restart can re-run it
    /// inside a freshly forked child.
    factory: Arc<dyn Fn(usize) -> Result<S, WedgeError> + Send + Sync>,
    fork_image_bytes: usize,
    fork_fd_count: usize,
    boot: BootStrategy,
    /// Set once by [`Self::instrument`]; workers check it with one
    /// lock-free load per link and skip all timing when absent.
    pub(crate) probes: std::sync::OnceLock<ShardProbes>,
}

impl<S: ShardServer> ShardSetInner<S> {
    /// The front-end counter snapshot: the aggregate counters, with the
    /// peak queue depth folded in from the per-shard observations (depth
    /// is observed where the queue lives).
    pub(crate) fn front_stats(&self) -> SchedStats {
        let mut stats = self.aggregate.snapshot();
        for shard in &self.shards {
            stats.peak_queue_depth = stats
                .peak_queue_depth
                .max(shard.counters.snapshot().peak_queue_depth);
        }
        stats
    }

    /// Offer `job` to the shards in `order`; the first shard that admits
    /// it wins. Returns the winning position within `order`, or the job
    /// back when every shard refuses. A shut-down set refuses outright —
    /// its workers are gone, so an enqueued job would never be served.
    // Err hands the whole job back (see `try_enqueue`).
    #[allow(clippy::result_large_err)]
    pub(crate) fn place(
        &self,
        mut job: ShardJob<S::Report>,
        order: &[usize],
        rerouted: bool,
    ) -> Result<usize, ShardJob<S::Report>> {
        if self.shutdown.load(Ordering::SeqCst) {
            return Err(job);
        }
        for (position, &idx) in order.iter().enumerate() {
            match self.shards[idx].try_enqueue(job, rerouted) {
                Ok(()) => return Ok(position),
                Err(back) => job = back,
            }
        }
        Err(job)
    }

    /// `true` while the set can still make progress: not shut down, and
    /// at least one shard healthy. When this turns `false` a refusal is
    /// permanent for an unsupervised set — retrying cannot help (a
    /// [`crate::Supervisor`] can still bring shards back).
    pub(crate) fn alive(&self) -> bool {
        !self.shutdown.load(Ordering::SeqCst)
            && self
                .shards
                .iter()
                .any(|s| s.health() == ShardHealth::Healthy)
    }

    /// Register this set's metrics on `telemetry` (idempotent — only the
    /// first call wires anything). Installs the live serve histogram and
    /// handshake counters, lets every current server instrument itself,
    /// and registers a pull collector for the scheduler counters and
    /// shard health/depth gauges. The collector holds a `Weak`, so a
    /// dropped set simply vanishes from later snapshots.
    pub(crate) fn instrument(self: &Arc<Self>, telemetry: &Telemetry) {
        let probes = ShardProbes {
            telemetry: telemetry.clone(),
            serve: telemetry.histogram("shard.serve"),
            handshake_full: telemetry.counter("tls.handshake.full"),
            handshake_abbreviated: telemetry.counter("tls.handshake.abbreviated"),
        };
        if self.probes.set(probes).is_err() {
            return;
        }
        for shard in &self.shards {
            shard.server.read().instrument(telemetry);
        }
        let weak = Arc::downgrade(self);
        telemetry.register_collector(move |sample| {
            let Some(inner) = weak.upgrade() else { return };
            let stats = inner.front_stats();
            sample.counter("sched.submitted", stats.submitted);
            sample.counter("sched.completed", stats.completed);
            sample.counter("sched.rejected", stats.rejected);
            sample.counter("sched.stolen", stats.stolen);
            sample.gauge_max("shard.queue_depth.peak", stats.peak_queue_depth);
            let mut depth = 0u64;
            let mut healthy = 0u64;
            let mut restarts = 0u64;
            for shard in &inner.shards {
                depth += shard.depth() as u64;
                healthy += u64::from(shard.health() == ShardHealth::Healthy);
                restarts += shard.restarts.load(Ordering::SeqCst);
            }
            sample.gauge("shard.queue_depth", depth);
            sample.gauge("shard.healthy", healthy);
            sample.counter("shard.restarts", restarts);
        });
    }

    fn spawn_worker(inner: &Arc<ShardSetInner<S>>, me: usize) {
        let worker = {
            let inner = inner.clone();
            thread::Builder::new()
                .name(format!("wedge-shard-{me}"))
                .spawn(move || shard_worker(&inner, me))
                .expect("spawn shard worker")
        };
        *inner.shards[me].worker.lock() = Some(worker);
    }

    /// Respawn a killed shard in place: wait out its old worker (the link
    /// it was serving at kill time is allowed to finish), fork a fresh
    /// kernel and re-run the factory inside the child, swap the new server
    /// in, start a new queue worker and rejoin the ring **with the old
    /// index** — placement policies (and affinity keys that hash here)
    /// see the shard healthy again.
    ///
    /// The outcome distinguishes a restart that was never *attempted*
    /// (lost the claim to a concurrent restart, shard not failed, set
    /// shutting down) from one whose respawn genuinely failed — the
    /// supervisor only counts the latter against the shard.
    pub(crate) fn try_restart_shard(self: &Arc<Self>, idx: usize) -> RestartOutcome {
        if idx >= self.shards.len() {
            return RestartOutcome::Skipped(WedgeError::InvalidOperation(format!(
                "no shard {idx} to restart"
            )));
        }
        if self.shutdown.load(Ordering::SeqCst) {
            return RestartOutcome::Skipped(WedgeError::InvalidOperation(
                "shard set is shut down".to_string(),
            ));
        }
        let shard = &self.shards[idx];
        if shard.health() != ShardHealth::Failed {
            return RestartOutcome::Skipped(WedgeError::InvalidOperation(format!(
                "shard {idx} is not failed (restart only revives killed shards)"
            )));
        }
        // Exactly one caller revives the shard at a time.
        if shard
            .restart_claim
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return RestartOutcome::Skipped(WedgeError::InvalidOperation(format!(
                "shard {idx} restart already in progress"
            )));
        }
        // Re-check under the claim: a racing restart may have completed
        // between the health check above and winning the CAS — without
        // this, the loser would join the *healthy* shard's fresh worker
        // (which only exits on Failed) and block forever.
        if shard.health() != ShardHealth::Failed {
            shard.restart_claim.store(false, Ordering::SeqCst);
            return RestartOutcome::Skipped(WedgeError::InvalidOperation(format!(
                "shard {idx} is not failed (restart only revives killed shards)"
            )));
        }
        let outcome = self.restart_claimed(idx);
        shard.restart_claim.store(false, Ordering::SeqCst);
        outcome
    }

    /// The body of [`Self::try_restart_shard`], run while holding the
    /// shard's restart claim.
    fn restart_claimed(self: &Arc<Self>, idx: usize) -> RestartOutcome {
        let shard = &self.shards[idx];
        // The old worker exits once it observes Failed — after finishing
        // the link it was serving at kill time. (A previous failed respawn
        // leaves no handle: the dead worker was already joined then.)
        let old_worker = shard.worker.lock().take();
        if let Some(old_worker) = old_worker {
            let _ = old_worker.join();
        }
        shard.health.store(HEALTH_RESTARTING, Ordering::SeqCst);

        // The same boot a cold shard pays: under `ImageCopy` fork the full
        // image + descriptor table; under `LogReplay` ship only the op log
        // and let the child rebuild by replay.
        let parent = ForkSim::new(
            self.boot.image_bytes(self.fork_image_bytes),
            self.fork_fd_count,
        );
        let factory = self.factory.clone();
        let (server, boot_cost) = parent.fork_and_wait_timed(move |_image, _fds| factory(idx));
        let server = match server {
            Ok(server) => server,
            Err(err) => {
                // Failed respawn: the shard stays dead; a later restart
                // attempt can claim it again.
                shard.health.store(HEALTH_FAILED, Ordering::SeqCst);
                return RestartOutcome::FactoryFailed(err);
            }
        };
        *shard.server.write() = server;
        *shard.boot_cost.lock() = boot_cost;
        // The replacement server has a fresh kernel: let it re-register
        // its collectors so its counters keep flowing into snapshots.
        if let Some(probes) = self.probes.get() {
            shard.server.read().instrument(&probes.telemetry);
        }
        if self.shutdown.load(Ordering::SeqCst) {
            shard.health.store(HEALTH_FAILED, Ordering::SeqCst);
            return RestartOutcome::Skipped(WedgeError::InvalidOperation(
                "shard set shut down during restart".to_string(),
            ));
        }
        // Counted only once the revival is actually going to land, so the
        // per-shard counter agrees with the reported outcome.
        shard.restarts.fetch_add(1, Ordering::SeqCst);
        Self::spawn_worker(self, idx);
        // A kill that raced the restart flipped Restarting → Failed; honour
        // it — the fresh worker sees Failed and exits.
        let _ = shard.health.compare_exchange(
            HEALTH_RESTARTING,
            HEALTH_HEALTHY,
            Ordering::SeqCst,
            Ordering::SeqCst,
        );
        if let Some(probes) = self.probes.get() {
            probes
                .telemetry
                .emit_with(|| TelemetryEvent::ShardRestarted { shard: idx });
        }
        RestartOutcome::Restarted(boot_cost)
    }
}

/// How one restart attempt ended (crate-internal: the public
/// [`ShardSet::restart_shard`] flattens this to a `Result`).
pub(crate) enum RestartOutcome {
    /// The shard was revived; carries the respawn's boot cost.
    Restarted(Duration),
    /// The retained factory refused to build a replacement server; the
    /// shard stays dead. Counts as a failed respawn.
    FactoryFailed(WedgeError),
    /// Nothing was attempted: the claim was lost to a concurrent restart,
    /// the shard was not failed, or the set is shutting down. Not a
    /// respawn failure — the supervisor must not count it as one.
    Skipped(WedgeError),
}

fn shard_worker<S: ShardServer>(inner: &ShardSetInner<S>, me: usize) {
    let shard = &inner.shards[me];
    loop {
        let job = {
            let mut queue = shard.queue.lock();
            loop {
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                if shard.health() == ShardHealth::Failed || inner.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                shard.signal.wait_for(&mut queue, Duration::from_millis(20));
            }
        };
        let Some(job) = job else {
            // Killed (queue already drained by the kill) or shutting down
            // with an empty queue: this worker is done.
            return;
        };
        let ShardJob { link, tx, trace } = job;
        let probes = inner.probes.get();
        let started = probes.map(|_| Instant::now());
        // Close the queue span (submit → dequeue), open the serve span,
        // and make it this thread's ambient trace: everything the server
        // does underneath — TLS handshake, kernel op-log applies, remote
        // cachenet ops — hangs its spans under `serve_ctx`, across
        // sthread spawns (wedge-core propagates the ambient trace).
        let serving = trace.as_ref().map(|jt| {
            let dequeued_ns = jt.tracer.now_ns();
            let queue_ctx = jt.tracer.child_of(jt.ctx);
            jt.tracer.record(
                queue_ctx,
                wedge_telemetry::SpanKind::Queue,
                jt.submitted_ns,
                dequeued_ns,
                true,
                me as u32,
            );
            let serve_ctx = jt.tracer.child_of(jt.ctx);
            let scope = wedge_telemetry::trace::push(wedge_telemetry::ActiveTrace {
                ctx: serve_ctx,
                tracer: jt.tracer.clone(),
            });
            (serve_ctx, dequeued_ns, scope)
        });
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            shard.server.read().serve_link(me, link)
        }));
        shard.admission.release(ResourceKind::Sthreads, 1);
        shard.depth.fetch_sub(1, Ordering::SeqCst);
        SchedCounters::bump(&shard.counters.completed);
        SchedCounters::bump(&inner.aggregate.completed);
        let result = outcome.unwrap_or_else(|payload| {
            Err(WedgeError::SthreadPanicked(wedge_core::panic_message(
                payload,
            )))
        });
        if let (Some(probes), Some(started)) = (probes, started) {
            let nanos = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            probes.serve.record(nanos);
            if let Some(kind) = result.as_ref().ok().and_then(S::handshake_kind) {
                let resumed = kind == HandshakeKind::Abbreviated;
                if resumed {
                    probes.handshake_abbreviated.incr();
                } else {
                    probes.handshake_full.incr();
                }
                probes
                    .telemetry
                    .emit_with(|| TelemetryEvent::Handshake { shard: me, resumed });
            }
            probes.telemetry.emit_with(|| TelemetryEvent::Served {
                shard: me,
                ok: result.is_ok(),
                nanos,
            });
        }
        // Record the serve span, drop the ambient scope, then end the
        // trace — the tail sampler decides whether this request's spans
        // are promoted to retention or left to be overwritten.
        if let (Some(jt), Some((serve_ctx, dequeued_ns, scope))) = (trace.as_ref(), serving) {
            let end_ns = jt.tracer.now_ns();
            jt.tracer.record(
                serve_ctx,
                wedge_telemetry::SpanKind::Serve,
                dequeued_ns,
                end_ns,
                result.is_ok(),
                me as u32,
            );
            drop(scope);
            jt.tracer
                .end_trace(jt.ctx, jt.root_start_ns, end_ns, result.is_ok(), me as u32);
        }
        let _ = tx.send(result);
    }
}

/// Per-shard observability snapshot. Aggregate a set with `+=`; the
/// [`SchedStats`]/[`KernelStats`] `AddAssign` impls sum counters and take
/// the max of peak depths.
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// The shard's id (meaningless after aggregation).
    pub shard: usize,
    /// Whether the shard is accepting links.
    pub healthy: bool,
    /// Simulated fork + prewarm cost paid at the most recent boot.
    pub boot_cost: Duration,
    /// Times the shard has been restarted after a kill.
    pub restarts: u64,
    /// Links queued + currently serving.
    pub depth: u64,
    /// Scheduler-style counters for this shard (`submitted` = links first
    /// accepted here, `stolen` = links re-routed here from a sibling).
    pub sched: SchedStats,
    /// The shard kernel's counters.
    pub kernel: KernelStats,
}

impl Default for ShardStats {
    /// The `+=` identity: counters zero and `healthy: true`, so folding
    /// shard snapshots into a default-constructed accumulator reports
    /// healthy exactly when every shard is.
    fn default() -> Self {
        ShardStats {
            shard: 0,
            healthy: true,
            boot_cost: Duration::ZERO,
            restarts: 0,
            depth: 0,
            sched: SchedStats::default(),
            kernel: KernelStats::default(),
        }
    }
}

impl std::ops::AddAssign<&ShardStats> for ShardStats {
    fn add_assign(&mut self, other: &ShardStats) {
        self.healthy &= other.healthy;
        self.boot_cost += other.boot_cost;
        self.restarts += other.restarts;
        self.depth += other.depth;
        self.sched += &other.sched;
        self.kernel += &other.kernel;
    }
}

/// N forked shard workers, each owning an independent kernel and serving
/// its own bounded link queue. Build an [`crate::Acceptor`] over the set
/// to distribute links.
pub struct ShardSet<S: ShardServer> {
    inner: Arc<ShardSetInner<S>>,
}

impl<S: ShardServer> std::fmt::Debug for ShardSet<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardSet")
            .field("shards", &self.inner.shards.len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl<S: ShardServer> ShardSet<S> {
    /// Fork and pre-warm `config.shards` shards. `factory` builds shard
    /// `id`'s server; it runs inside the simulated forked child, so every
    /// shard pays the full image + descriptor-table copy of a real `fork`
    /// **once, at boot** — pre-warming amortises it across every
    /// connection the shard will ever serve (the same trade the paper's
    /// recycled callgates make for compartment creation). The factory is
    /// retained: [`ShardSet::restart_shard`] re-runs it inside a fresh
    /// fork to revive a killed shard.
    pub fn new<F>(config: ShardConfig, factory: F) -> Result<ShardSet<S>, WedgeError>
    where
        F: Fn(usize) -> Result<S, WedgeError> + Send + Sync + 'static,
    {
        let shard_count = config.shards.max(1);
        let factory: Arc<dyn Fn(usize) -> Result<S, WedgeError> + Send + Sync> = Arc::new(factory);
        let mut shards = Vec::with_capacity(shard_count);
        for id in 0..shard_count {
            let parent = ForkSim::new(
                config.boot.image_bytes(config.fork_image_bytes),
                config.fork_fd_count,
            );
            let factory = factory.clone();
            // Under `ImageCopy` the child starts from a copy of the whole
            // parent image (the defining fork cost); under `LogReplay` it
            // copies only the serialized op log and the factory's fresh
            // kernel reconstructs policy state by replaying it.
            let (server, boot_cost) = parent.fork_and_wait_timed(move |_image, _fds| factory(id));
            let server = server?;
            let mut limits = ResourceLimits::unlimited();
            if let Some(max) = config.max_inflight {
                limits = limits.with_sthreads(max);
            }
            shards.push(Shard {
                id,
                server: RwLock::new(server),
                queue: Mutex::new(VecDeque::new()),
                signal: Condvar::new(),
                admission: ResourceAccountant::new(limits),
                health: AtomicU8::new(HEALTH_HEALTHY),
                depth: AtomicUsize::new(0),
                counters: SchedCounters::default(),
                boot_cost: Mutex::new(boot_cost),
                restarts: AtomicU64::new(0),
                worker: Mutex::new(None),
                restart_claim: AtomicBool::new(false),
                queue_capacity: config.queue_capacity.max(1),
            });
        }
        let inner = Arc::new(ShardSetInner {
            shards,
            aggregate: SchedCounters::default(),
            shutdown: AtomicBool::new(false),
            factory,
            fork_image_bytes: config.fork_image_bytes,
            fork_fd_count: config.fork_fd_count,
            boot: config.boot,
            probes: std::sync::OnceLock::new(),
        });
        for me in 0..shard_count {
            ShardSetInner::spawn_worker(&inner, me);
        }
        Ok(ShardSet { inner })
    }

    pub(crate) fn inner(&self) -> &Arc<ShardSetInner<S>> {
        &self.inner
    }

    /// Register this set's scheduler counters, shard gauges, the live
    /// `shard.serve` latency histogram and the TLS handshake-mix counters
    /// on `telemetry`, and let every shard's server instrument itself.
    /// Idempotent: only the first call wires anything.
    pub fn instrument(&self, telemetry: &Telemetry) {
        self.inner.instrument(telemetry);
    }

    /// Number of shards (healthy or not).
    pub fn shards(&self) -> usize {
        self.inner.shards.len()
    }

    /// Run `f` against shard `idx`'s server (e.g. for per-shard
    /// assertions). The server may be swapped by a restart, so only a
    /// scoped borrow is offered.
    pub fn with_server<R>(&self, idx: usize, f: impl FnOnce(&S) -> R) -> R {
        f(&self.inner.shards[idx].server.read())
    }

    /// Shard `idx`'s health.
    pub fn health(&self, idx: usize) -> ShardHealth {
        self.inner.shards[idx].health()
    }

    /// Shard `idx`'s admission accountant (in-flight links are the
    /// `Sthreads` axis).
    pub fn admission(&self, idx: usize) -> &Arc<ResourceAccountant> {
        &self.inner.shards[idx].admission
    }

    /// Front-end-level counters: every *offer* bumps `submitted` and
    /// resolves into exactly one of `completed` or `rejected` (a batch
    /// driver re-offering a refused link counts as a fresh offer, so the
    /// balance holds even under backoff-and-retry); `stolen` counts links
    /// that landed somewhere other than the acceptor's first choice
    /// (skips and post-kill re-routes).
    pub fn stats(&self) -> SchedStats {
        self.inner.front_stats()
    }

    /// Per-shard snapshots, in shard order.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.inner
            .shards
            .iter()
            .map(|shard| ShardStats {
                shard: shard.id,
                healthy: shard.health() == ShardHealth::Healthy,
                boot_cost: *shard.boot_cost.lock(),
                restarts: shard.restarts.load(Ordering::SeqCst),
                depth: shard.depth() as u64,
                sched: shard.counters.snapshot(),
                kernel: shard.server.read().kernel_stats(),
            })
            .collect()
    }

    /// Kernel counters summed across every shard.
    pub fn kernel_stats(&self) -> KernelStats {
        let mut total = KernelStats::default();
        for shard in &self.inner.shards {
            total += &shard.server.read().kernel_stats();
        }
        total
    }

    /// Kill shard `idx`: mark it failed, drain its queued links, and
    /// re-route them to healthy siblings (ring order starting after the
    /// dead shard). A link no sibling can admit resolves through its
    /// handle with [`WedgeError::ResourceExhausted`] — nothing is silently
    /// dropped. The link the shard is serving *right now* is allowed to
    /// finish.
    pub fn kill_shard(&self, idx: usize) -> KillReport {
        let n = self.inner.shards.len();
        let drained = self.inner.shards[idx].fail_and_drain();
        let order: Vec<usize> = (1..n).map(|offset| (idx + offset) % n).collect();
        let mut report = KillReport::default();
        for job in drained {
            match self.inner.place(job, &order, true) {
                Ok(_) => {
                    SchedCounters::bump(&self.inner.aggregate.stolen);
                    report.rerouted += 1;
                }
                Err(job) => {
                    SchedCounters::bump(&self.inner.aggregate.rejected);
                    report.failed += 1;
                    let _ = job.tx.send(Err(all_shards_exhausted(n)));
                }
            }
        }
        if let Some(probes) = self.inner.probes.get() {
            probes.telemetry.emit_with(|| TelemetryEvent::ShardKilled {
                shard: idx,
                rerouted: report.rerouted,
                failed: report.failed,
            });
        }
        report
    }

    /// Revive killed shard `idx` in place (fresh kernel via the retained
    /// factory, old ring index). Returns the respawn's boot cost. Fails if
    /// the shard is not killed, a restart is already in progress, the
    /// factory errors, or the set is shutting down. The
    /// [`crate::Supervisor`] calls this automatically.
    pub fn restart_shard(&self, idx: usize) -> Result<Duration, WedgeError> {
        match self.inner.try_restart_shard(idx) {
            RestartOutcome::Restarted(boot_cost) => Ok(boot_cost),
            RestartOutcome::FactoryFailed(err) | RestartOutcome::Skipped(err) => Err(err),
        }
    }

    fn shutdown_inner(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        for shard in &self.inner.shards {
            shard.signal.notify_all();
        }
        for shard in &self.inner.shards {
            let handle = shard.worker.lock().take();
            if let Some(handle) = handle {
                let _ = handle.join();
            }
        }
        // A submission can race the shutdown flag and land a job after its
        // worker drained and exited. Flip each shard to Failed *under its
        // queue lock* and drain stragglers in the same critical section:
        // `try_enqueue` re-checks health under that lock, so a racing push
        // either lands before the flip (and is drained here) or observes
        // Failed and refuses — no job can be stranded, and every straggler
        // fails through its handle instead of hanging its caller's join().
        for shard in &self.inner.shards {
            let drained: Vec<_> = {
                let mut queue = shard.queue.lock();
                shard.health.store(HEALTH_FAILED, Ordering::SeqCst);
                queue.drain(..).collect()
            };
            for job in drained {
                shard.admission.release(ResourceKind::Sthreads, 1);
                shard.depth.fetch_sub(1, Ordering::SeqCst);
                SchedCounters::bump(&self.inner.aggregate.rejected);
                let _ = job.tx.send(Err(WedgeError::InvalidOperation(
                    "shard set shut down before the link was served".to_string(),
                )));
            }
        }
    }
}

impl<S: ShardServer> Drop for ShardSet<S> {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// The error surfaced when every shard refuses a link.
pub(crate) fn all_shards_exhausted(shards: usize) -> WedgeError {
    WedgeError::ResourceExhausted {
        resource: "shard front-end (all shards rejected)".to_string(),
        limit: shards as u64,
        attempted: shards as u64 + 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acceptor::{AcceptPolicy, Acceptor};
    use wedge_net::{duplex_pair, RecvTimeout};

    /// A shard server that serves a link by waiting for one client
    /// message (or the client hanging up) and reporting which shard ran
    /// it — so tests control exactly when a shard is busy.
    struct HoldServer;

    impl ShardServer for HoldServer {
        type Report = usize;

        fn serve_link(&self, shard: usize, link: Duplex) -> Result<usize, WedgeError> {
            let _ = link.recv(RecvTimeout::Forever);
            Ok(shard)
        }

        fn kernel_stats(&self) -> KernelStats {
            KernelStats::default()
        }
    }

    fn hold_set(config: ShardConfig) -> ShardSet<HoldServer> {
        ShardSet::new(config, |_id| Ok(HoldServer)).expect("shard set")
    }

    /// A key whose affinity hash lands on `shard` of `n`.
    fn affinity_key(shard: usize, n: usize) -> u64 {
        (0u64..)
            .find(|k| crate::acceptor::shard_for_key(*k, n) == shard)
            .expect("key")
    }

    #[test]
    fn boot_pays_fork_cost_once_per_shard() {
        let set = hold_set(ShardConfig {
            shards: 2,
            ..ShardConfig::default()
        });
        for stats in set.shard_stats() {
            assert!(stats.boot_cost > Duration::ZERO, "fork copy cost charged");
            assert!(stats.healthy);
            assert_eq!(stats.restarts, 0);
        }
    }

    #[test]
    fn round_robin_rotates_across_shards() {
        let set = hold_set(ShardConfig {
            shards: 3,
            ..ShardConfig::default()
        });
        let acceptor = Acceptor::new(&set, AcceptPolicy::RoundRobin);
        let mut clients = Vec::new();
        let mut handles = Vec::new();
        for i in 0..6 {
            let (client, server) = duplex_pair("c", "s");
            client.send(format!("go-{i}").as_bytes()).unwrap();
            clients.push(client);
            handles.push(acceptor.submit(server).unwrap());
        }
        let served: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(served, vec![0, 1, 2, 0, 1, 2]);
        let stats = set.stats();
        assert_eq!(stats.submitted, 6);
        assert_eq!(stats.completed, 6);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.stolen, 0);
    }

    #[test]
    fn least_loaded_prefers_the_idle_shard() {
        let set = hold_set(ShardConfig {
            shards: 2,
            ..ShardConfig::default()
        });
        let acceptor = Acceptor::new(&set, AcceptPolicy::LeastLoaded);
        // Pin shard 0 with a link whose client stays silent.
        let (busy_client, busy_server) = duplex_pair("busy", "s");
        let busy = acceptor
            .submit_with_key(busy_server, affinity_key(0, 2))
            .unwrap();
        // Wait until the worker actually picked the link up is not needed:
        // depth counts queued + serving either way.
        for _ in 0..4 {
            let (client, server) = duplex_pair("c", "s");
            client.send(b"go").unwrap();
            let handle = acceptor.submit(server).unwrap();
            assert_eq!(handle.join().unwrap(), 1, "idle shard must be preferred");
        }
        busy_client.send(b"done").unwrap();
        assert_eq!(busy.join().unwrap(), 0);
    }

    #[test]
    fn least_loaded_ignores_dead_shards() {
        let set = hold_set(ShardConfig {
            shards: 3,
            ..ShardConfig::default()
        });
        let acceptor = Acceptor::new(&set, AcceptPolicy::LeastLoaded);
        // A killed shard drains to depth 0 — it must not become the
        // permanently-preferred "least loaded" choice.
        set.kill_shard(0);
        for _ in 0..4 {
            let (client, server) = duplex_pair("c", "s");
            client.send(b"go").unwrap();
            let handle = acceptor.submit(server).unwrap();
            assert_ne!(handle.placed_on(), 0, "dead shard must never be preferred");
            assert!(handle.join().is_ok());
        }
        // The dead shard was never the first choice, so nothing counts as
        // skipped/re-routed.
        assert_eq!(set.stats().stolen, 0);
    }

    #[test]
    fn session_affinity_is_sticky_per_key() {
        let set = hold_set(ShardConfig {
            shards: 4,
            ..ShardConfig::default()
        });
        let acceptor = Acceptor::new(&set, AcceptPolicy::SessionAffinity);
        let key = 0xFEED_F00Du64;
        let mut served = Vec::new();
        for _ in 0..5 {
            let (client, server) = duplex_pair("repeat-client", "s");
            client.send(b"go").unwrap();
            served.push(
                acceptor
                    .submit_with_key(server, key)
                    .unwrap()
                    .join()
                    .unwrap(),
            );
        }
        assert!(
            served.windows(2).all(|w| w[0] == w[1]),
            "one key must always land on one shard: {served:?}"
        );
    }

    #[test]
    fn saturated_shard_is_skipped_and_only_total_exhaustion_rejects() {
        let set = hold_set(ShardConfig {
            shards: 2,
            queue_capacity: 1,
            max_inflight: Some(1),
            ..ShardConfig::default()
        });
        let acceptor = Acceptor::new(&set, AcceptPolicy::SessionAffinity);
        let to_zero = affinity_key(0, 2);
        // Saturate shard 0.
        let (c0, s0) = duplex_pair("hold0", "s");
        let h0 = acceptor.submit_with_key(s0, to_zero).unwrap();
        assert_eq!(h0.placed_on(), 0);
        // Wait for the worker to take it so the next affinity submission
        // exercises the admission quota, not a still-queued link.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while set.shard_stats()[0].depth > 0 && std::time::Instant::now() < deadline {
            // depth stays 1 while serving; what must drain is the queue.
            if set.inner().shards[0].queue.lock().is_empty() {
                break;
            }
            thread::sleep(Duration::from_millis(1));
        }
        // Preferring shard 0 now skips to shard 1 instead of failing.
        let (c1, s1) = duplex_pair("hold1", "s");
        let h1 = acceptor.submit_with_key(s1, to_zero).unwrap();
        assert_eq!(h1.placed_on(), 1, "saturated shard must be skipped");
        assert_eq!(set.stats().stolen, 1);
        // Both shards saturated: now — and only now — the front door fails.
        let (_c2, s2) = duplex_pair("extra", "s");
        let err = acceptor.submit_with_key(s2, to_zero).unwrap_err();
        assert!(matches!(err, WedgeError::ResourceExhausted { .. }));
        c0.send(b"done").unwrap();
        c1.send(b"done").unwrap();
        assert_eq!(h0.join().unwrap(), 0);
        assert_eq!(h1.join().unwrap(), 1);
        let stats = set.stats();
        assert_eq!(stats.submitted, 3);
        assert_eq!(stats.completed + stats.rejected, 3, "every link resolves");
    }

    #[test]
    fn killing_a_shard_reroutes_its_queued_links() {
        let set = hold_set(ShardConfig {
            shards: 2,
            queue_capacity: 8,
            ..ShardConfig::default()
        });
        let acceptor = Acceptor::new(&set, AcceptPolicy::SessionAffinity);
        let to_zero = affinity_key(0, 2);
        // One link in service on shard 0 (client silent)...
        let (held_client, held_server) = duplex_pair("held", "s");
        let held = acceptor.submit_with_key(held_server, to_zero).unwrap();
        // ...wait until the worker holds it, then queue three more behind it.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !set.inner().shards[0].queue.lock().is_empty() || set.shard_stats()[0].depth == 0 {
            assert!(std::time::Instant::now() < deadline, "worker never started");
            thread::sleep(Duration::from_millis(1));
        }
        let mut clients = Vec::new();
        let mut queued = Vec::new();
        for _ in 0..3 {
            let (client, server) = duplex_pair("queued", "s");
            client.send(b"go").unwrap();
            clients.push(client);
            queued.push(acceptor.submit_with_key(server, to_zero).unwrap());
        }
        let report = set.kill_shard(0);
        assert_eq!(
            report.rerouted, 3,
            "all queued links move to the live shard"
        );
        assert_eq!(report.failed, 0);
        assert_eq!(set.health(0), ShardHealth::Failed);
        for handle in queued {
            assert_eq!(
                handle.join().unwrap(),
                1,
                "re-routed links serve on shard 1"
            );
        }
        // The link shard 0 was serving at kill time is allowed to finish.
        held_client.send(b"done").unwrap();
        assert_eq!(held.join().unwrap(), 0);
        let stats = set.stats();
        assert_eq!(stats.submitted, 4);
        assert_eq!(stats.completed, 4);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.stolen, 3);
        // A dead shard refuses new links; with no healthy sibling left
        // unsaturated the front door still works through shard 1.
        let (client, server) = duplex_pair("after", "s");
        client.send(b"go").unwrap();
        assert_eq!(acceptor.submit(server).unwrap().join().unwrap(), 1);
    }

    #[test]
    fn restart_revives_a_killed_shard_with_its_old_index() {
        let set = hold_set(ShardConfig {
            shards: 2,
            ..ShardConfig::default()
        });
        let acceptor = Acceptor::new(&set, AcceptPolicy::SessionAffinity);
        let to_zero = affinity_key(0, 2);
        set.kill_shard(0);
        assert_eq!(set.health(0), ShardHealth::Failed);
        // While dead, links for shard 0 fall over to shard 1.
        let (fallback_client, fallback_server) = duplex_pair("fall", "s");
        fallback_client.send(b"go").unwrap();
        assert_eq!(
            acceptor
                .submit_with_key(fallback_server, to_zero)
                .unwrap()
                .join()
                .unwrap(),
            1
        );
        // Restarting cannot revive a healthy shard.
        assert!(set.restart_shard(1).is_err());
        // Revive shard 0: fresh kernel, old ring index.
        let boot_cost = set.restart_shard(0).expect("restart");
        assert!(boot_cost > Duration::ZERO, "respawn pays the fork cost");
        assert_eq!(set.health(0), ShardHealth::Healthy);
        let stats = set.shard_stats();
        assert_eq!(stats[0].restarts, 1);
        assert_eq!(stats[1].restarts, 0);
        // Affinity keys that hash to shard 0 land on it again.
        let (client, server) = duplex_pair("home", "s");
        client.send(b"go").unwrap();
        assert_eq!(
            acceptor
                .submit_with_key(server, to_zero)
                .unwrap()
                .join()
                .unwrap(),
            0,
            "post-restart links land on the revived shard"
        );
        // A second restart of the (now healthy) shard is refused.
        assert!(set.restart_shard(0).is_err());
    }

    #[test]
    fn restart_waits_for_the_in_flight_link_to_finish() {
        let set = hold_set(ShardConfig {
            shards: 1,
            ..ShardConfig::default()
        });
        let acceptor = Acceptor::new(&set, AcceptPolicy::RoundRobin);
        let (held_client, held_server) = duplex_pair("held", "s");
        let held = acceptor.submit(held_server).unwrap();
        // Wait until the worker is serving the link.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !set.inner().shards[0].queue.lock().is_empty() {
            assert!(std::time::Instant::now() < deadline, "worker never started");
            thread::sleep(Duration::from_millis(1));
        }
        set.kill_shard(0);
        // The restart must block on the in-flight link; release it from a
        // sibling thread after a beat.
        let release = thread::spawn(move || {
            thread::sleep(Duration::from_millis(50));
            held_client.send(b"done").unwrap();
            held_client
        });
        set.restart_shard(0).expect("restart");
        assert_eq!(set.health(0), ShardHealth::Healthy);
        assert_eq!(held.join().unwrap(), 0, "in-flight link finished first");
        drop(release.join().unwrap());
    }

    #[test]
    fn submissions_after_shutdown_fail_fast_instead_of_hanging() {
        let set = hold_set(ShardConfig {
            shards: 2,
            ..ShardConfig::default()
        });
        let acceptor = Acceptor::new(&set, AcceptPolicy::RoundRobin);
        // The acceptor outlives the set: its workers are joined and gone.
        drop(set);
        let (_client, server) = duplex_pair("late", "s");
        let err = acceptor.submit(server).unwrap_err();
        assert!(
            matches!(err, WedgeError::InvalidOperation(_)),
            "a dead set must refuse permanently (not retryable backpressure): {err:?}"
        );
    }

    #[test]
    fn fully_killed_set_sheds_with_backpressure_and_serve_all_terminates() {
        // The batch driver lives on the front-end now; drive it through
        // one to pin the all-dead semantics of the one shared retry loop.
        // Killed shards are *revivable* (restart_shard / supervisor), so
        // an all-dead unsupervised set sheds with the stack's uniform
        // `ResourceExhausted` — deterministically, never a spin — while a
        // shut-down set (see the test above) refuses permanently.
        let front = crate::front::ShardedFrontEnd::new(
            crate::front::FrontEndConfig {
                shards: 2,
                ..crate::front::FrontEndConfig::default()
            },
            |_id| Ok(HoldServer),
        )
        .expect("front");
        front.kill_shard(0);
        front.kill_shard(1);
        // Direct submission: deterministic backpressure.
        let (_c, s) = duplex_pair("late", "s");
        let err = front.serve(s).unwrap_err();
        assert!(matches!(err, WedgeError::ResourceExhausted { .. }));
        // Batch driver: an unsupervised dead set returns one error per
        // link instead of spinning on the backoff-retry loop forever.
        let outcomes = front.serve_all((0..3).map(|_| duplex_pair("batch", "s").1).collect());
        assert_eq!(outcomes.len(), 3);
        assert!(outcomes
            .iter()
            .all(|o| matches!(o, Err(WedgeError::ResourceExhausted { .. }))));
        // Reviving one shard makes the same front door serve again.
        front.restart_shard(0).expect("manual revival");
        let (client, server) = duplex_pair("revived", "s");
        client.send(b"go").unwrap();
        assert_eq!(front.serve(server).unwrap().join().unwrap(), 0);
    }

    #[test]
    fn killing_the_only_shard_sheds_with_an_error_not_silence() {
        let set = hold_set(ShardConfig {
            shards: 1,
            queue_capacity: 8,
            ..ShardConfig::default()
        });
        let acceptor = Acceptor::new(&set, AcceptPolicy::RoundRobin);
        let (held_client, held_server) = duplex_pair("held", "s");
        let held = acceptor.submit(held_server).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !set.inner().shards[0].queue.lock().is_empty() {
            assert!(std::time::Instant::now() < deadline, "worker never started");
            thread::sleep(Duration::from_millis(1));
        }
        let (_queued_client, queued_server) = duplex_pair("queued", "s");
        let queued = acceptor.submit(queued_server).unwrap();
        let report = set.kill_shard(0);
        assert_eq!(
            report,
            KillReport {
                rerouted: 0,
                failed: 1
            }
        );
        // The shed link resolves with the backpressure error — never
        // silently dropped.
        let err = queued.join().unwrap_err();
        assert!(matches!(err, WedgeError::ResourceExhausted { .. }));
        held_client.send(b"done").unwrap();
        assert_eq!(held.join().unwrap(), 0);
        let stats = set.stats();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.rejected, 1);
        assert_eq!(
            stats.submitted,
            stats.completed + stats.rejected,
            "every offered link resolves exactly once"
        );
    }
}
