//! Pools of pre-warmed pooled recycled workers.
//!
//! A [`WorkerPool`] owns N long-lived recycled workers for one workload
//! (one callgate entry + policy + trusted argument), all spawned at pool
//! creation so no connection ever pays compartment-creation latency.
//! Callers [`WorkerPool::checkout`] a worker, drive it with
//! [`PoolCheckout::invoke`], and return it by dropping the checkout. On
//! checkin the worker's private scratch is **zeroized** (unless configured
//! off) so the next principal can observe nothing of the previous one —
//! the mitigation for the §3.3 recycled-callgate residue leak.
//!
//! Admission control: when every worker is busy, callers queue on the pool;
//! when more than [`PoolConfig::max_waiters`] callers are already queued,
//! further checkouts are refused with
//! [`WedgeError::ResourceExhausted`] — the same backpressure signal the
//! resource quotas use, so servers can degrade by rejecting instead of
//! collapsing.

use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use wedge_core::callgate::{CgEntryId, CgInput, CgOutput, TrustedArg};
use wedge_core::{RecycledWorkerHandle, SecurityPolicy, SthreadCtx, WedgeError};

use crate::metrics::{PoolCounters, PoolStats};

/// Pool sizing and checkin behaviour.
#[derive(Debug, Clone, Copy)]
pub struct PoolConfig {
    /// Number of workers pre-warmed at pool creation.
    pub size: usize,
    /// Maximum callers allowed to wait for a free worker before further
    /// checkouts are rejected outright.
    pub max_waiters: usize,
    /// Zeroize each worker's private scratch on checkin. Disabling this
    /// recovers the plain recycled-callgate behaviour (faster checkins,
    /// residue visible to the next principal) — measurable, and tested, as
    /// the isolation/throughput trade-off.
    pub scrub_on_checkin: bool,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            size: 4,
            max_waiters: 64,
            scrub_on_checkin: true,
        }
    }
}

struct PoolState {
    free: Vec<RecycledWorkerHandle>,
    waiters: usize,
    /// Workers not permanently retired (free + checked out).
    live: usize,
}

struct PoolInner {
    state: Mutex<PoolState>,
    available: Condvar,
    counters: PoolCounters,
    config: PoolConfig,
}

/// A pool of pre-warmed recycled workers for one workload.
pub struct WorkerPool {
    inner: Arc<PoolInner>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("size", &self.inner.config.size)
            .field("available", &self.available())
            .finish()
    }
}

impl WorkerPool {
    /// Spawn `config.size` workers running `entry` under `policy` (subset
    /// validated against `ctx`, which acts as the workers' creator) with the
    /// kernel-held `trusted` argument.
    pub fn prewarm(
        ctx: &SthreadCtx,
        entry: CgEntryId,
        policy: &SecurityPolicy,
        trusted: Option<TrustedArg>,
        config: PoolConfig,
    ) -> Result<WorkerPool, WedgeError> {
        let size = config.size.max(1);
        let mut free = Vec::with_capacity(size);
        for _ in 0..size {
            free.push(ctx.recycled_worker_spawn(entry, policy, trusted.clone())?);
        }
        Ok(WorkerPool {
            inner: Arc::new(PoolInner {
                state: Mutex::new(PoolState {
                    live: free.len(),
                    free,
                    waiters: 0,
                }),
                available: Condvar::new(),
                counters: PoolCounters::default(),
                config: PoolConfig { size, ..config },
            }),
        })
    }

    /// Number of workers in the pool.
    pub fn size(&self) -> usize {
        self.inner.config.size
    }

    /// Workers currently free.
    pub fn available(&self) -> usize {
        self.inner.state.lock().free.len()
    }

    /// Workers still alive (free + checked out); shrinks when a failed
    /// checkin scrub retires a worker.
    pub fn live(&self) -> usize {
        self.inner.state.lock().live
    }

    /// Pool activity counters.
    pub fn stats(&self) -> PoolStats {
        self.inner.counters.snapshot()
    }

    /// Check a worker out, blocking while all workers are busy. Fails with
    /// [`WedgeError::ResourceExhausted`] when `max_waiters` callers are
    /// already queued (admission control), or with
    /// [`WedgeError::InvalidOperation`] once every worker has been retired.
    pub fn checkout(&self) -> Result<PoolCheckout, WedgeError> {
        let mut state = self.inner.state.lock();
        if state.free.is_empty() {
            if state.live == 0 {
                return Err(WedgeError::InvalidOperation(
                    "pool has no live workers left".to_string(),
                ));
            }
            if state.waiters >= self.inner.config.max_waiters {
                PoolCounters::bump(&self.inner.counters.rejected);
                return Err(WedgeError::ResourceExhausted {
                    resource: "pool checkout waiters".to_string(),
                    limit: self.inner.config.max_waiters as u64,
                    attempted: state.waiters as u64 + 1,
                });
            }
            PoolCounters::bump(&self.inner.counters.contended);
            state.waiters += 1;
            while state.free.is_empty() {
                if state.live == 0 {
                    // Every worker was retired while we waited.
                    state.waiters -= 1;
                    return Err(WedgeError::InvalidOperation(
                        "pool has no live workers left".to_string(),
                    ));
                }
                self.inner.available.wait(&mut state);
            }
            state.waiters -= 1;
        }
        let worker = state.free.pop().expect("non-empty after wait");
        PoolCounters::bump(&self.inner.counters.checkouts);
        Ok(PoolCheckout {
            worker: Some(worker),
            inner: self.inner.clone(),
        })
    }

    /// Check a worker out without blocking; `Ok(None)` means all busy.
    pub fn try_checkout(&self) -> Option<PoolCheckout> {
        let mut state = self.inner.state.lock();
        let worker = state.free.pop()?;
        PoolCounters::bump(&self.inner.counters.checkouts);
        Some(PoolCheckout {
            worker: Some(worker),
            inner: self.inner.clone(),
        })
    }
}

/// A checked-out worker; dropping it checks the worker back in (scrubbing
/// its private scratch first unless the pool disables that).
pub struct PoolCheckout {
    worker: Option<RecycledWorkerHandle>,
    inner: Arc<PoolInner>,
}

impl std::fmt::Debug for PoolCheckout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolCheckout")
            .field("activation", &self.worker().activation())
            .finish()
    }
}

impl PoolCheckout {
    fn worker(&self) -> &RecycledWorkerHandle {
        self.worker.as_ref().expect("present until drop")
    }

    /// Invoke the checked-out worker.
    pub fn invoke(&self, input: CgInput) -> Result<CgOutput, WedgeError> {
        self.worker().invoke(input)
    }

    /// Invoke and downcast the result.
    pub fn invoke_expect<T: std::any::Any>(&self, input: CgInput) -> Result<T, WedgeError> {
        self.worker().invoke_expect(input)
    }

    /// The worker's activation compartment.
    pub fn activation(&self) -> wedge_core::CompartmentId {
        self.worker().activation()
    }
}

impl Drop for PoolCheckout {
    fn drop(&mut self) {
        let worker = self.worker.take().expect("present until drop");
        if self.inner.config.scrub_on_checkin {
            // A failed scrub (e.g. the kernel lost the compartment) must not
            // return a tainted worker; retire it and wake every waiter so
            // none of them sleeps forever on a pool that just shrank.
            if worker.scrub().is_err() {
                let mut state = self.inner.state.lock();
                state.live -= 1;
                PoolCounters::bump(&self.inner.counters.retired);
                self.inner.available.notify_all();
                return;
            }
            PoolCounters::bump(&self.inner.counters.scrubs);
        }
        let mut state = self.inner.state.lock();
        state.free.push(worker);
        PoolCounters::bump(&self.inner.counters.checkins);
        self.inner.available.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;
    use wedge_core::callgate::typed_entry;
    use wedge_core::Wedge;

    fn echo_pool(size: usize, max_waiters: usize) -> (Wedge, WorkerPool) {
        let wedge = Wedge::init();
        let entry = wedge
            .kernel()
            .cgate_register("echo", typed_entry(|_ctx, _t, n: u64| Ok(n * 2)));
        let pool = WorkerPool::prewarm(
            &wedge.root(),
            entry,
            &SecurityPolicy::deny_all(),
            None,
            PoolConfig {
                size,
                max_waiters,
                scrub_on_checkin: true,
            },
        )
        .unwrap();
        (wedge, pool)
    }

    /// Several pools on ONE kernel drive tagged reads on distinct tags from
    /// many OS threads at once — the workload the kernel's sharded segment
    /// table and per-sthread permission caches exist for. Pre-sharding, all
    /// of this serialised on a single `Mutex<KernelState>`; this pins the
    /// concurrent-correctness half (every read sees its own tag's bytes,
    /// no cross-pool interference), while `wedge-bench`'s `fast_path`
    /// experiment pins the throughput half.
    #[test]
    fn pools_on_one_kernel_hit_sharded_tables_concurrently() {
        use wedge_core::MemProt;

        let wedge = Wedge::init();
        let root = wedge.root();
        const POOLS: usize = 3;
        const THREADS_PER_POOL: usize = 2;
        const ROUNDS: usize = 50;

        let pools: Vec<(StdArc<WorkerPool>, u8)> = (0..POOLS)
            .map(|i| {
                let fill = b'a' + i as u8;
                let tag = root.tag_new().unwrap();
                let buf = root.smalloc_init(tag, &[fill; 32]).unwrap();
                let entry = wedge.kernel().cgate_register(
                    &format!("reader-{i}"),
                    typed_entry(move |ctx, _t, _n: u64| ctx.read(&buf, 0, 32)),
                );
                let mut policy = SecurityPolicy::deny_all();
                policy.sc_mem_add(tag, MemProt::Read);
                let pool = WorkerPool::prewarm(
                    &root,
                    entry,
                    &policy,
                    None,
                    PoolConfig {
                        size: THREADS_PER_POOL,
                        max_waiters: 16,
                        scrub_on_checkin: false,
                    },
                )
                .unwrap();
                (StdArc::new(pool), fill)
            })
            .collect();

        let threads: Vec<_> = pools
            .iter()
            .flat_map(|(pool, fill)| {
                (0..THREADS_PER_POOL).map({
                    let pool = pool.clone();
                    let fill = *fill;
                    move |_| {
                        let pool = pool.clone();
                        std::thread::spawn(move || {
                            for _ in 0..ROUNDS {
                                let worker = pool.checkout().expect("checkout");
                                let bytes =
                                    worker.invoke_expect::<Vec<u8>>(Box::new(1u64)).unwrap();
                                assert_eq!(bytes, vec![fill; 32], "cross-tag interference");
                            }
                        })
                    }
                })
            })
            .collect();
        for thread in threads {
            thread.join().expect("pool reader thread");
        }
        let reads = wedge.kernel().stats().mem_reads;
        assert!(reads >= (POOLS * THREADS_PER_POOL * ROUNDS) as u64);
    }

    #[test]
    fn prewarm_creates_all_workers_up_front() {
        let (wedge, pool) = echo_pool(3, 8);
        assert_eq!(pool.size(), 3);
        assert_eq!(pool.available(), 3);
        // Root + three pooled workers.
        assert_eq!(wedge.kernel().live_compartments(), 4);
        assert_eq!(wedge.kernel().stats().sthreads_created, 3);
    }

    #[test]
    fn checkout_invoke_checkin_roundtrip() {
        let (_wedge, pool) = echo_pool(2, 8);
        {
            let worker = pool.checkout().unwrap();
            assert_eq!(worker.invoke_expect::<u64>(Box::new(21u64)).unwrap(), 42);
            assert_eq!(pool.available(), 1);
        }
        assert_eq!(pool.available(), 2);
        let stats = pool.stats();
        assert_eq!(stats.checkouts, 1);
        assert_eq!(stats.checkins, 1);
        assert_eq!(stats.scrubs, 1);
    }

    #[test]
    fn exhausted_pool_rejects_when_waiters_capped() {
        let (_wedge, pool) = echo_pool(1, 0);
        let held = pool.checkout().unwrap();
        let err = pool.checkout().unwrap_err();
        assert!(matches!(err, WedgeError::ResourceExhausted { .. }));
        assert!(pool.try_checkout().is_none());
        drop(held);
        assert!(pool.checkout().is_ok());
        assert_eq!(pool.stats().rejected, 1);
    }

    #[test]
    fn blocked_checkout_wakes_on_checkin() {
        let (_wedge, pool) = echo_pool(1, 4);
        let pool = StdArc::new(pool);
        let held = pool.checkout().unwrap();
        let waiter = {
            let pool = pool.clone();
            std::thread::spawn(move || {
                let worker = pool.checkout().unwrap();
                worker.invoke_expect::<u64>(Box::new(5u64)).unwrap()
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(30));
        drop(held);
        assert_eq!(waiter.join().unwrap(), 10);
        assert_eq!(pool.stats().contended, 1);
    }

    #[test]
    fn scrub_on_checkin_is_reflected_in_kernel_stats() {
        let (wedge, pool) = echo_pool(1, 2);
        for _ in 0..3 {
            let worker = pool.checkout().unwrap();
            worker.invoke_expect::<u64>(Box::new(1u64)).unwrap();
        }
        assert_eq!(wedge.kernel().stats().private_scrubs, 3);
        assert_eq!(pool.stats().scrubs, 3);
    }
}
