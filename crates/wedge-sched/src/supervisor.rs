//! The shard supervisor: automatic restart of killed shards.
//!
//! A [`crate::ShardSet`] kills loudly — queued links re-route, the
//! in-flight link finishes — but before this module a killed shard stayed
//! dead until an operator called [`crate::ShardSet::restart_shard`] by
//! hand. The [`Supervisor`] is the watchdog that does it automatically:
//! a monitor thread polls every shard's [`crate::ShardHealth`] and revives
//! failed shards (fresh kernel via the retained factory, old ring index)
//! with two production guard rails:
//!
//! * **Bounded exponential backoff** — consecutive restarts of the same
//!   shard wait `backoff_base * 2^n`, capped at `backoff_cap`, so a shard
//!   that dies the moment it boots does not hot-loop the fork path. A
//!   shard that stays healthy for `healthy_reset` gets its attempt counter
//!   (and backoff) reset.
//! * **Restart-storm detection** — `storm_threshold` or more restart
//!   attempts on one shard inside `storm_window` abandon it (it stays dead,
//!   [`RestartStats::storms`] counts it) instead of burning the box
//!   re-forking a server that cannot stay up. The rest of the ring keeps
//!   serving.
//!
//! The supervisor exits on its own when the shard set shuts down.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use crate::shard::{RestartOutcome, ShardHealth, ShardServer, ShardSet, ShardSetInner};

/// Supervisor cadence, backoff and storm guard-rail configuration.
#[derive(Debug, Clone, Copy)]
pub struct SupervisorConfig {
    /// How often the monitor thread scans shard health.
    pub poll_interval: Duration,
    /// Backoff before the first re-restart of a shard that failed again.
    pub backoff_base: Duration,
    /// Upper bound on the exponential backoff.
    pub backoff_cap: Duration,
    /// A shard healthy this long gets its backoff attempt counter reset.
    pub healthy_reset: Duration,
    /// Restarts of one shard within [`SupervisorConfig::storm_window`]
    /// before the supervisor abandons it.
    pub storm_threshold: u32,
    /// The sliding window for restart-storm detection.
    pub storm_window: Duration,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            poll_interval: Duration::from_millis(2),
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(500),
            healthy_reset: Duration::from_secs(1),
            storm_threshold: 5,
            storm_window: Duration::from_secs(2),
        }
    }
}

/// Counters the supervisor accumulates (snapshot via
/// [`Supervisor::stats`]). Counters are updated by the restart-attempt
/// thread just **after** the shard's health flips, so a reader that
/// polls health can observe the flip a moment before the counter —
/// re-read after a beat rather than asserting both atomically.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RestartStats {
    /// Successful shard restarts.
    pub restarts: u64,
    /// Restart attempts whose respawn failed (factory error); the shard
    /// stays dead until the next backed-off attempt.
    pub failed_restarts: u64,
    /// Times the storm guard abandoned a shard (cumulative).
    pub storms: u64,
    /// Shards currently abandoned — a manually revived shard that holds
    /// healthy for `healthy_reset` is forgiven and leaves this gauge.
    pub abandoned_shards: u64,
    /// Nanoseconds from first observing a shard dead to it serving again,
    /// for the most recent successful restart.
    pub last_restart_latency_nanos: u64,
}

impl RestartStats {
    /// The most recent kill-to-healthy restart latency.
    pub fn last_restart_latency(&self) -> Duration {
        Duration::from_nanos(self.last_restart_latency_nanos)
    }
}

impl std::ops::AddAssign<&RestartStats> for RestartStats {
    /// Fold supervisor snapshots (counters sum, the `abandoned_shards`
    /// gauge sums across disjoint shard sets, and the restart latency
    /// keeps the slowest recent revival). Destructured exhaustively so a
    /// new field is a compile error here, not a silently dropped stat.
    fn add_assign(&mut self, other: &RestartStats) {
        let RestartStats {
            restarts,
            failed_restarts,
            storms,
            abandoned_shards,
            last_restart_latency_nanos,
        } = other;
        self.restarts += restarts;
        self.failed_restarts += failed_restarts;
        self.storms += storms;
        self.abandoned_shards += abandoned_shards;
        self.last_restart_latency_nanos = self
            .last_restart_latency_nanos
            .max(*last_restart_latency_nanos);
    }
}

#[derive(Debug, Default)]
struct SupervisorCounters {
    restarts: AtomicU64,
    failed_restarts: AtomicU64,
    storms: AtomicU64,
    /// Gauge, not counter: shards currently written off by the storm
    /// guard. The front-end's retry loop reads this to know whether an
    /// all-dead set can still come back.
    abandoned_shards: AtomicU64,
    last_restart_latency_nanos: AtomicU64,
}

/// Per-shard bookkeeping private to the monitor thread.
struct WatchState {
    /// When the supervisor first saw this shard dead (restart latency is
    /// measured from here — detection plus backoff plus respawn).
    first_failed_at: Option<Instant>,
    /// Earliest instant the next restart attempt may run.
    next_attempt_at: Instant,
    /// Consecutive attempts since the shard last held healthy.
    attempts: u32,
    /// Completion timestamps of recent restart attempts, successful or
    /// not (the storm window).
    recent: VecDeque<Instant>,
    /// Continuously healthy since this instant.
    healthy_since: Option<Instant>,
    /// Storm-detected: the supervisor gave up on this shard.
    abandoned: bool,
    /// A restart attempt currently running on its own thread — a restart
    /// blocks until the dead shard's in-flight link finishes, and one
    /// stuck link must not freeze supervision of every other shard.
    in_flight: Option<thread::JoinHandle<RestartOutcome>>,
}

impl WatchState {
    fn new(now: Instant) -> WatchState {
        WatchState {
            first_failed_at: None,
            next_attempt_at: now,
            attempts: 0,
            recent: VecDeque::new(),
            healthy_since: Some(now),
            abandoned: false,
            in_flight: None,
        }
    }
}

/// The watchdog thread reviving killed shards. Holds the shard set's
/// inner state — dropping the [`crate::ShardSet`] (which shuts the set
/// down) makes the supervisor exit on its own; dropping the supervisor
/// stops the watchdog without touching the set.
pub struct Supervisor {
    monitor: Option<thread::JoinHandle<()>>,
    stop: Arc<AtomicBool>,
    counters: Arc<SupervisorCounters>,
    /// Per-shard storm-abandonment flags, mirrored out of the monitor
    /// thread's private [`WatchState`] so health pollers can tell a shard
    /// that is "restarting soon" from one the watchdog has written off.
    abandoned: Arc<Vec<AtomicBool>>,
    /// Guards [`Supervisor::instrument`] against double registration.
    instrumented: AtomicBool,
}

impl std::fmt::Debug for Supervisor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Supervisor")
            .field("stats", &self.stats())
            .finish()
    }
}

impl Supervisor {
    /// Start supervising `set` with `config`.
    pub fn spawn<S: ShardServer>(set: &ShardSet<S>, config: SupervisorConfig) -> Supervisor {
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(SupervisorCounters::default());
        let inner = set.inner().clone();
        let abandoned: Arc<Vec<AtomicBool>> = Arc::new(
            (0..inner.shards.len())
                .map(|_| AtomicBool::new(false))
                .collect(),
        );
        let monitor = {
            let stop = stop.clone();
            let counters = counters.clone();
            let abandoned = abandoned.clone();
            thread::Builder::new()
                .name("wedge-supervisor".to_string())
                .spawn(move || monitor_loop(&inner, &config, &stop, &counters, &abandoned))
                .expect("spawn supervisor")
        };
        Supervisor {
            monitor: Some(monitor),
            stop,
            counters,
            abandoned,
            instrumented: AtomicBool::new(false),
        }
    }

    /// Register the watchdog's counters on `telemetry` as
    /// `supervisor.restarts` / `supervisor.failed_restarts` /
    /// `supervisor.storms` (counters), `supervisor.abandoned_shards`
    /// (gauge) and `supervisor.restart_latency_ns` (gauge, max across
    /// supervisors). The collector holds a `Weak`: a dropped supervisor
    /// disappears from later snapshots. Idempotent per supervisor.
    pub fn instrument(&self, telemetry: &wedge_telemetry::Telemetry) {
        if self
            .instrumented
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return;
        }
        let counters = Arc::downgrade(&self.counters);
        telemetry.register_collector(move |sample| {
            let Some(counters) = counters.upgrade() else {
                return;
            };
            sample.counter(
                "supervisor.restarts",
                counters.restarts.load(Ordering::Relaxed),
            );
            sample.counter(
                "supervisor.failed_restarts",
                counters.failed_restarts.load(Ordering::Relaxed),
            );
            sample.counter("supervisor.storms", counters.storms.load(Ordering::Relaxed));
            sample.gauge(
                "supervisor.abandoned_shards",
                counters.abandoned_shards.load(Ordering::Relaxed),
            );
            sample.gauge_max(
                "supervisor.restart_latency_ns",
                counters.last_restart_latency_nanos.load(Ordering::Relaxed),
            );
        });
    }

    /// The shard indices the storm guard has currently written off.
    ///
    /// A shard in this list reads [`crate::ShardHealth::Failed`] yet the
    /// supervisor will **not** revive it — callers polling health need
    /// this to distinguish "dead but restarting soon" from "given up".
    /// Manual revival ([`crate::ShardSet::restart_shard`]) followed by
    /// [`SupervisorConfig::healthy_reset`] of continuous health forgives
    /// the abandonment and removes the shard from this list.
    pub fn abandoned(&self) -> Vec<usize> {
        self.abandoned
            .iter()
            .enumerate()
            .filter(|(_, flag)| flag.load(Ordering::Relaxed))
            .map(|(idx, _)| idx)
            .collect()
    }

    /// Whether the storm guard has currently written off shard `idx`
    /// (out-of-range indices read as not abandoned).
    pub fn is_abandoned(&self, idx: usize) -> bool {
        self.abandoned
            .get(idx)
            .is_some_and(|flag| flag.load(Ordering::Relaxed))
    }

    /// Counters so far.
    pub fn stats(&self) -> RestartStats {
        RestartStats {
            restarts: self.counters.restarts.load(Ordering::Relaxed),
            failed_restarts: self.counters.failed_restarts.load(Ordering::Relaxed),
            storms: self.counters.storms.load(Ordering::Relaxed),
            abandoned_shards: self.counters.abandoned_shards.load(Ordering::Relaxed),
            last_restart_latency_nanos: self
                .counters
                .last_restart_latency_nanos
                .load(Ordering::Relaxed),
        }
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(monitor) = self.monitor.take() {
            let _ = monitor.join();
        }
    }
}

fn backoff(config: &SupervisorConfig, attempts: u32) -> Duration {
    let factor = 1u32 << attempts.min(16);
    config
        .backoff_base
        .saturating_mul(factor)
        .min(config.backoff_cap)
}

/// Reap a finished restart attempt, feeding the storm window (counters
/// were already updated by the attempt thread itself). Returns `true`
/// while the attempt is still running.
fn reap_attempt(state: &mut WatchState) -> bool {
    let Some(handle) = state.in_flight.take() else {
        return false;
    };
    if !handle.is_finished() {
        state.in_flight = Some(handle);
        return true;
    }
    match handle.join() {
        // Every real attempt — revival or failed respawn — counts toward
        // the storm window, so a factory that fails every respawn also
        // trips the guard instead of retrying forever. A Skipped attempt
        // (lost the claim to a concurrent manual restart, racing
        // kill/shutdown) attempted nothing and counts nothing.
        Ok(RestartOutcome::Restarted(_)) => {
            state.recent.push_back(Instant::now());
            state.first_failed_at = None;
        }
        Ok(RestartOutcome::FactoryFailed(_)) | Err(_) => {
            state.recent.push_back(Instant::now());
        }
        Ok(RestartOutcome::Skipped(_)) => {}
    }
    false
}

fn monitor_loop<S: ShardServer>(
    inner: &Arc<ShardSetInner<S>>,
    config: &SupervisorConfig,
    stop: &AtomicBool,
    counters: &Arc<SupervisorCounters>,
    abandoned: &[AtomicBool],
) {
    let now = Instant::now();
    let mut watch: Vec<WatchState> = (0..inner.shards.len())
        .map(|_| WatchState::new(now))
        .collect();
    while !stop.load(Ordering::SeqCst) && !inner.shutdown.load(Ordering::SeqCst) {
        let now = Instant::now();
        for (idx, state) in watch.iter_mut().enumerate() {
            // An attempt still blocked (e.g. waiting out the dead shard's
            // in-flight link) must not freeze supervision of the others.
            if reap_attempt(state) {
                continue;
            }
            match inner.shards[idx].health() {
                ShardHealth::Healthy => {
                    state.first_failed_at = None;
                    let healthy_since = *state.healthy_since.get_or_insert(now);
                    if now - healthy_since >= config.healthy_reset {
                        // Held healthy long enough: forgive the history so
                        // the next failure starts from the base backoff —
                        // including a storm abandonment, so a shard an
                        // operator manually revived is supervised again.
                        state.attempts = 0;
                        if state.abandoned {
                            state.abandoned = false;
                            state.recent.clear();
                            abandoned[idx].store(false, Ordering::Relaxed);
                            counters.abandoned_shards.fetch_sub(1, Ordering::Relaxed);
                        }
                    }
                }
                ShardHealth::Restarting => {}
                ShardHealth::Failed => {
                    state.healthy_since = None;
                    if state.abandoned {
                        continue;
                    }
                    state.first_failed_at.get_or_insert(now);
                    if now < state.next_attempt_at {
                        continue;
                    }
                    // Storm guard: too many restart attempts inside the
                    // window means the shard cannot stay up — stop
                    // feeding it.
                    while let Some(oldest) = state.recent.front() {
                        if now - *oldest > config.storm_window {
                            state.recent.pop_front();
                        } else {
                            break;
                        }
                    }
                    if state.recent.len() >= config.storm_threshold as usize {
                        state.abandoned = true;
                        abandoned[idx].store(true, Ordering::Relaxed);
                        counters.storms.fetch_add(1, Ordering::Relaxed);
                        counters.abandoned_shards.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    // First retry waits backoff_base, then the ladder
                    // doubles, capped.
                    state.next_attempt_at = now + backoff(config, state.attempts);
                    state.attempts = state.attempts.saturating_add(1);
                    // The attempt thread updates the counters itself, so
                    // stats lag the health flip by nanoseconds rather
                    // than a whole poll interval.
                    let inner = inner.clone();
                    let counters = counters.clone();
                    let first_failed_at = state.first_failed_at.unwrap_or(now);
                    state.in_flight = Some(
                        thread::Builder::new()
                            .name(format!("wedge-restart-{idx}"))
                            .spawn(move || {
                                let outcome = inner.try_restart_shard(idx);
                                match &outcome {
                                    RestartOutcome::Restarted(_boot_cost) => {
                                        counters.last_restart_latency_nanos.store(
                                            first_failed_at.elapsed().as_nanos() as u64,
                                            Ordering::Relaxed,
                                        );
                                        counters.restarts.fetch_add(1, Ordering::Relaxed);
                                    }
                                    RestartOutcome::FactoryFailed(_) => {
                                        // The backed-off next_attempt_at
                                        // throttles the retry.
                                        counters.failed_restarts.fetch_add(1, Ordering::Relaxed);
                                    }
                                    // Lost the claim to a concurrent manual
                                    // restart, or a racing kill/shutdown:
                                    // nothing was respawned, count nothing.
                                    RestartOutcome::Skipped(_) => {}
                                }
                                outcome
                            })
                            .expect("spawn restart attempt"),
                    );
                }
            }
        }
        thread::sleep(config.poll_interval);
    }
    // Exiting (stop or set shutdown): in-flight attempts are left to
    // finish on their own — restart_shard itself refuses to resurrect a
    // shut-down set, so a straggler can at worst complete a legitimate
    // revival.
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acceptor::{AcceptPolicy, Acceptor};
    use crate::shard::ShardConfig;
    use std::sync::atomic::AtomicUsize;
    use wedge_core::{KernelStats, WedgeError};
    use wedge_net::{duplex_pair, Duplex, RecvTimeout};

    struct EchoServer;

    impl ShardServer for EchoServer {
        type Report = usize;

        fn serve_link(&self, shard: usize, link: Duplex) -> Result<usize, WedgeError> {
            let _ = link.recv(RecvTimeout::Forever);
            Ok(shard)
        }

        fn kernel_stats(&self) -> KernelStats {
            KernelStats::default()
        }
    }

    fn await_health<S: ShardServer>(
        set: &ShardSet<S>,
        idx: usize,
        want: ShardHealth,
        timeout: Duration,
    ) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if set.health(idx) == want {
                return true;
            }
            thread::sleep(Duration::from_millis(1));
        }
        false
    }

    /// The restart counter is bumped by the attempt thread just *after*
    /// the health flip, so a reader racing `await_health` polls briefly.
    fn await_restarts(supervisor: &Supervisor, want: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if supervisor.stats().restarts >= want {
                return true;
            }
            thread::sleep(Duration::from_millis(1));
        }
        false
    }

    #[test]
    fn supervisor_revives_a_killed_shard() {
        let set = ShardSet::new(
            ShardConfig {
                shards: 2,
                ..ShardConfig::default()
            },
            |_id| Ok(EchoServer),
        )
        .expect("set");
        let supervisor = Supervisor::spawn(&set, SupervisorConfig::default());
        set.kill_shard(0);
        assert!(
            await_health(&set, 0, ShardHealth::Healthy, Duration::from_secs(5)),
            "supervisor must revive the killed shard"
        );
        assert!(await_restarts(&supervisor, 1, Duration::from_secs(5)));
        let stats = supervisor.stats();
        assert_eq!(stats.restarts, 1);
        assert_eq!(stats.storms, 0);
        assert!(
            stats.last_restart_latency() > Duration::ZERO,
            "restart latency is measured"
        );
        assert_eq!(set.shard_stats()[0].restarts, 1);
        // The revived shard serves again.
        let acceptor = Acceptor::new(&set, AcceptPolicy::RoundRobin);
        let (client, server) = duplex_pair("c", "s");
        client.send(b"go").unwrap();
        assert!(acceptor.submit(server).unwrap().join().is_ok());
    }

    #[test]
    fn repeated_kills_back_off_and_eventually_trip_the_storm_guard() {
        let set = ShardSet::new(
            ShardConfig {
                shards: 2,
                ..ShardConfig::default()
            },
            |_id| Ok(EchoServer),
        )
        .expect("set");
        let config = SupervisorConfig {
            poll_interval: Duration::from_millis(1),
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(5),
            storm_threshold: 3,
            storm_window: Duration::from_secs(30),
            ..SupervisorConfig::default()
        };
        let supervisor = Supervisor::spawn(&set, config);
        // Kill the shard every time it comes back: the storm guard must
        // abandon it after `storm_threshold` revivals.
        let deadline = Instant::now() + Duration::from_secs(10);
        while supervisor.stats().storms == 0 {
            assert!(Instant::now() < deadline, "storm guard never tripped");
            if set.health(0) == ShardHealth::Healthy {
                set.kill_shard(0);
            }
            thread::sleep(Duration::from_millis(1));
        }
        let stats = supervisor.stats();
        assert_eq!(stats.storms, 1);
        assert_eq!(
            stats.restarts, 3,
            "exactly storm_threshold revivals before giving up"
        );
        // The abandoned shard stays dead; the ring keeps serving on the
        // survivor.
        thread::sleep(Duration::from_millis(20));
        assert_eq!(set.health(0), ShardHealth::Failed);
        // Health alone reads Failed for both "restarting soon" and
        // "given up" — the accessor is what disambiguates.
        assert_eq!(supervisor.abandoned(), vec![0]);
        assert!(supervisor.is_abandoned(0));
        assert!(!supervisor.is_abandoned(1));
        assert!(!supervisor.is_abandoned(99), "out of range reads false");
        let acceptor = Acceptor::new(&set, AcceptPolicy::RoundRobin);
        let (client, server) = duplex_pair("c", "s");
        client.send(b"go").unwrap();
        assert_eq!(acceptor.submit(server).unwrap().join().unwrap(), 1);
    }

    #[test]
    fn a_manually_revived_abandoned_shard_is_supervised_again() {
        let set = ShardSet::new(
            ShardConfig {
                shards: 1,
                ..ShardConfig::default()
            },
            |_id| Ok(EchoServer),
        )
        .expect("set");
        let supervisor = Supervisor::spawn(
            &set,
            SupervisorConfig {
                poll_interval: Duration::from_millis(1),
                backoff_base: Duration::from_millis(1),
                backoff_cap: Duration::from_millis(5),
                healthy_reset: Duration::from_millis(50),
                storm_threshold: 2,
                storm_window: Duration::from_secs(30),
            },
        );
        // Storm-abandon the only shard by killing it whenever it returns.
        let deadline = Instant::now() + Duration::from_secs(10);
        while supervisor.stats().storms == 0 {
            assert!(Instant::now() < deadline, "storm guard never tripped");
            if set.health(0) == ShardHealth::Healthy {
                set.kill_shard(0);
            }
            thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(set.health(0), ShardHealth::Failed);
        assert_eq!(supervisor.stats().abandoned_shards, 1);
        assert_eq!(supervisor.abandoned(), vec![0]);
        // An operator revives it by hand and it holds healthy past
        // healthy_reset: the watchdog must forgive the abandonment...
        set.restart_shard(0).expect("manual revival");
        let deadline = Instant::now() + Duration::from_secs(10);
        while supervisor.stats().abandoned_shards > 0 {
            assert!(Instant::now() < deadline, "abandonment never forgiven");
            thread::sleep(Duration::from_millis(1));
        }
        assert!(
            supervisor.abandoned().is_empty(),
            "forgiveness clears the per-shard flag too"
        );
        // ...and supervise the next failure again.
        let revivals_so_far = supervisor.stats().restarts;
        set.kill_shard(0);
        assert!(
            await_health(&set, 0, ShardHealth::Healthy, Duration::from_secs(5)),
            "a forgiven shard must be auto-revived again"
        );
        assert!(await_restarts(
            &supervisor,
            revivals_so_far + 1,
            Duration::from_secs(5)
        ));
        assert_eq!(supervisor.stats().storms, 1, "the old storm stays counted");
    }

    #[test]
    fn failed_respawns_are_counted_and_retried() {
        // A factory that fails its first post-boot invocation for shard 0,
        // then succeeds: the supervisor must count the failure and still
        // revive the shard on the backed-off retry.
        let boots = Arc::new(AtomicUsize::new(0));
        let factory_boots = boots.clone();
        let set = ShardSet::new(
            ShardConfig {
                shards: 1,
                ..ShardConfig::default()
            },
            move |_id| {
                // Boot 0 is the cold boot; boot 1 (first restart attempt)
                // fails; boot 2 succeeds.
                if factory_boots.fetch_add(1, Ordering::SeqCst) == 1 {
                    Err(WedgeError::InvalidOperation("flaky respawn".into()))
                } else {
                    Ok(EchoServer)
                }
            },
        )
        .expect("set");
        let supervisor = Supervisor::spawn(
            &set,
            SupervisorConfig {
                poll_interval: Duration::from_millis(1),
                backoff_base: Duration::from_millis(1),
                ..SupervisorConfig::default()
            },
        );
        set.kill_shard(0);
        assert!(
            await_health(&set, 0, ShardHealth::Healthy, Duration::from_secs(5)),
            "shard must come back after the flaky respawn"
        );
        assert!(await_restarts(&supervisor, 1, Duration::from_secs(5)));
        let stats = supervisor.stats();
        assert_eq!(stats.failed_restarts, 1);
        assert_eq!(stats.restarts, 1);
        assert_eq!(boots.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn a_blocked_restart_does_not_freeze_supervision_of_other_shards() {
        let set = ShardSet::new(
            ShardConfig {
                shards: 2,
                ..ShardConfig::default()
            },
            |_id| Ok(EchoServer),
        )
        .expect("set");
        let supervisor = Supervisor::spawn(
            &set,
            SupervisorConfig {
                poll_interval: Duration::from_millis(1),
                backoff_base: Duration::from_millis(1),
                ..SupervisorConfig::default()
            },
        );
        let acceptor = Acceptor::new(&set, AcceptPolicy::SessionAffinity);
        let to_zero = (0u64..)
            .find(|k| crate::acceptor::shard_for_key(*k, 2) == 0)
            .expect("key");
        // Shard 0 serves a link whose client stays silent; wait until the
        // worker holds it.
        let (held_client, held_server) = duplex_pair("held", "s");
        let held = acceptor.submit_with_key(held_server, to_zero).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while !set.inner().shards[0].queue.lock().is_empty() {
            assert!(Instant::now() < deadline, "worker never started");
            thread::sleep(Duration::from_millis(1));
        }
        // Kill it: the supervisor's restart attempt must block waiting
        // out the in-flight link...
        set.kill_shard(0);
        // ...but killing shard 1 too must still be noticed and revived.
        thread::sleep(Duration::from_millis(20));
        set.kill_shard(1);
        assert!(
            await_health(&set, 1, ShardHealth::Healthy, Duration::from_secs(5)),
            "a stuck shard-0 restart must not freeze shard 1's revival"
        );
        assert_ne!(
            set.health(0),
            ShardHealth::Healthy,
            "shard 0 is still waiting out its in-flight link"
        );
        // Release the held link: shard 0's restart completes too.
        held_client.send(b"done").unwrap();
        assert_eq!(held.join().unwrap(), 0, "the in-flight link finished");
        assert!(
            await_health(&set, 0, ShardHealth::Healthy, Duration::from_secs(5)),
            "shard 0 revives once its in-flight link resolves"
        );
        assert!(await_restarts(&supervisor, 2, Duration::from_secs(5)));
        assert_eq!(supervisor.stats().restarts, 2);
    }

    #[test]
    fn supervisor_exits_when_the_set_shuts_down() {
        let set = ShardSet::new(
            ShardConfig {
                shards: 1,
                ..ShardConfig::default()
            },
            |_id| Ok(EchoServer),
        )
        .expect("set");
        let supervisor = Supervisor::spawn(&set, SupervisorConfig::default());
        drop(set);
        // Dropping the supervisor joins its monitor thread; the monitor
        // must have exited on the shutdown flag rather than deadlocking.
        drop(supervisor);
    }
}
