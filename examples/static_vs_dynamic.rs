//! §7 in practice: compare the grants a *static* whole-program analysis
//! would hand a compartment with the grants the *dynamic* Crowbar workflow
//! derives from an innocuous run — and show what that difference costs when
//! the compartment is exploited.
//!
//! Run with `cargo run --example static_vs_dynamic`.

use wedge::core::{Exploit, SecurityPolicy, Wedge, WedgeError};
use wedge::crowbar::static_analysis::ProgramModel;
use wedge::crowbar::{render_footprint, CbLog};

fn main() -> Result<(), WedgeError> {
    let wedge = Wedge::init();
    let root = wedge.root();

    // ------------------------------------------------------------------
    // The legacy application: a request handler that always parses the
    // request and updates the session, and only on the admin path touches
    // the server's private key.
    // ------------------------------------------------------------------
    let request_tag = root.tag_new()?;
    let session_tag = root.tag_new()?;
    let key_tag = root.tag_new()?;
    let request = root.smalloc_init(request_tag, b"GET /index.html")?;
    let session = root.smalloc(64, session_tag)?;
    let key = root.smalloc_init(key_tag, b"-----PRIVATE KEY-----")?;

    let run_request = |ctx: &wedge::core::SthreadCtx, admin: bool| -> Result<(), WedgeError> {
        let _f = ctx.trace_fn("handle_request");
        {
            let _p = ctx.trace_fn("parse_request");
            ctx.read_all(&request)?;
        }
        {
            let _s = ctx.trace_fn("update_session");
            ctx.write(&session, 0, b"session-state")?;
        }
        if admin {
            let _a = ctx.trace_fn("resign_config");
            ctx.read_all(&key)?;
        }
        Ok(())
    };

    // ------------------------------------------------------------------
    // Dynamic analysis (the paper's workflow): trace an innocuous workload.
    // ------------------------------------------------------------------
    let log = CbLog::new();
    log.install(wedge.kernel());
    run_request(&root, false)?;
    let innocuous = log.snapshot();
    log.clear();
    run_request(&root, true)?; // the rare admin workload, traced separately
    let admin_run = log.snapshot();
    CbLog::uninstall(wedge.kernel());

    println!("=== dynamic footprint (innocuous workload) ===");
    println!(
        "{}",
        render_footprint("handle_request", &innocuous.footprint_of("handle_request"))
    );

    // ------------------------------------------------------------------
    // Static analysis (§7): the exhaustive model — here inferred by merging
    // the models of every workload, as a source-level analysis would see
    // all paths at once.
    // ------------------------------------------------------------------
    let mut model = ProgramModel::from_trace(&innocuous);
    model.merge(&ProgramModel::from_trace(&admin_run));
    let comparison = model.compare_with_trace("handle_request", &innocuous);
    println!("=== static vs dynamic ===");
    println!("{}", comparison.render());

    // ------------------------------------------------------------------
    // Apply both policies and exploit the worker under each.
    // ------------------------------------------------------------------
    let dynamic_policy = innocuous
        .suggest_policy("handle_request")
        .to_security_policy();
    let static_policy = model.suggest_policy("handle_request").to_security_policy();

    for (label, policy) in [("dynamic", dynamic_policy), ("static", static_policy)] {
        let handle = root.sthread_create(&format!("worker-{label}"), &policy, move |ctx| {
            let mut exploit = Exploit::seize(ctx);
            exploit.try_read(&key).is_ok()
        })?;
        let key_leaks = handle.join()?;
        println!(
            "worker provisioned from {label:>7} analysis: exploited worker {} the private key",
            if key_leaks { "READS" } else { "cannot read" }
        );
    }

    println!();
    println!(
        "Shape check: both policies run the ordinary workload cleanly, but only the\n\
         dynamically derived (innocuous-workload) policy keeps the private key out of\n\
         an exploited worker's reach — the paper's argument for run-time analysis."
    );

    // The §5.1.1 guarantee in miniature: a default-deny worker never sees the
    // key at all, whichever analysis provisioned its siblings.
    let denied = root
        .sthread_create("default-deny", &SecurityPolicy::deny_all(), move |ctx| {
            ctx.read_all(&key).is_err()
        })?
        .join()?;
    assert!(denied);
    Ok(())
}
