//! The man-in-the-middle + exploit attack of §5.1.2, against both the
//! simple (§5.1.1) and the hardened (§5.1.2) partitionings.
//!
//! Run with `cargo run --example mitm_attack`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use wedge::apache::attacks::{decrypt_observed_client_records, plaintexts_contain};
use wedge::apache::{ApacheConfig, PageStore, SimpleApache, WedgeApache};
use wedge::core::{Exploit, Wedge};
use wedge::crypto::{RsaKeyPair, WedgeRng};
use wedge::net::Mitm;
use wedge::tls::TlsClient;

/// Run a legitimate client against a server through a passive MITM, pumping
/// the interposer from a helper thread. Returns the MITM (with everything it
/// observed) and the session keys the *worker* ended up holding (only the
/// simple partitioning hands keys to the worker).
fn run_simple_through_mitm() -> (Mitm, Option<wedge::tls::SessionKeys>) {
    let keypair = RsaKeyPair::generate(&mut WedgeRng::from_seed(41));
    let server = SimpleApache::new(Wedge::init(), keypair, PageStore::sample()).expect("server");
    let (client_link, mitm, server_link) = Mitm::interpose();
    let mitm = Arc::new(parking_lot::Mutex::new(mitm));
    let stop = Arc::new(AtomicBool::new(false));

    // Pump the interposer (the attacker passively forwarding traffic).
    let pump = {
        let mitm = mitm.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                mitm.lock().forward_all_pending();
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        })
    };

    let handle = server.serve_connection(server_link).expect("serve");
    let mut client = TlsClient::new(server.public_key(), WedgeRng::from_seed(42));
    let mut conn = client.connect(&client_link).expect("handshake");
    conn.send(&client_link, b"GET /account HTTP/1.0\r\n\r\n")
        .expect("send");
    let _response = conn.recv(&client_link).expect("recv");
    drop(conn);
    drop(client_link);
    let (_report, worker_keys) = handle.join().expect("worker");
    stop.store(true, Ordering::Relaxed);
    pump.join().expect("pump");
    let mitm = Arc::try_unwrap(mitm).expect("sole owner").into_inner();
    (mitm, worker_keys)
}

fn main() {
    println!("=== §5.1.1 simple partitioning under MITM + exploited worker ===");
    let (mitm, worker_keys) = run_simple_through_mitm();
    println!("attacker observed {}", mitm.observed().summary());
    let keys = worker_keys.expect("the simple partitioning hands the worker the session keys");
    println!("exploited worker leaks the session key to the attacker...");
    let recovered = decrypt_observed_client_records(&keys.material, &mitm);
    let got_plaintext = plaintexts_contain(&recovered, b"GET /account");
    println!("attacker decrypts the client's request: {got_plaintext}");
    assert!(
        got_plaintext,
        "the simple partitioning falls to this attack"
    );

    println!();
    println!("=== §5.1.2 hardened partitioning: the exploited compartment has nothing to leak ===");
    let keypair = RsaKeyPair::generate(&mut WedgeRng::from_seed(43));
    let server = WedgeApache::new(
        Wedge::init(),
        keypair,
        PageStore::sample(),
        ApacheConfig::default(),
    )
    .expect("server");
    let policy = server.handshake_policy();
    let key_buf = server.key_buf();
    let session_buf = server.session_state_buf();
    let outcome = server
        .wedge()
        .root()
        .sthread_create("exploited-ssl-handshake", &policy, move |ctx| {
            let mut exploit = Exploit::seize(ctx);
            (
                exploit.try_read(&key_buf).is_err(),
                exploit.try_read(&session_buf).is_err(),
            )
        })
        .expect("spawn")
        .join()
        .expect("join");
    println!(
        "private key unreachable from the network-facing sthread: {}",
        outcome.0
    );
    println!(
        "session key unreachable from the network-facing sthread:  {}",
        outcome.1
    );
    assert!(outcome.0 && outcome.1);
    println!();
    println!("Result: the attack that defeats the coarse partitioning is stopped by the fine-grained one.");
}
