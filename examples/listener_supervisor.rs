//! The unified serving stack end to end: a network-facing listener
//! feeding a supervised, sharded POP3 front-end — with a shard killed and
//! auto-restarted mid-traffic.
//!
//! 60 clients connect through the `Listener` (each with its own source
//! address, so session-affinity placement needs no protocol cooperation),
//! shard 1 is killed once traffic is flowing, the supervisor respawns it
//! (fresh kernel, old ring index), and every connection still serves —
//! nothing is silently dropped.
//!
//! Run with `cargo run --release --example listener_supervisor`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use wedge::net::{Duplex, Listener, RecvTimeout, SourceAddr};
use wedge::pop3::{MailDb, ShardedPop3, ShardedPop3Config};
use wedge::sched::{AcceptPolicy, SupervisorConfig};

const CONNECTIONS: usize = 60;
const SHARDS: usize = 4;
const KILLED: usize = 1;
const THINK_TIME: Duration = Duration::from_millis(3);

fn send_cmd(client: &Duplex, cmd: &str) -> Vec<u8> {
    client.send(cmd.as_bytes()).expect("send");
    client
        .recv(RecvTimeout::After(Duration::from_secs(10)))
        .expect("reply")
}

fn run_session(client: &Duplex) {
    let greeting = client
        .recv(RecvTimeout::After(Duration::from_secs(10)))
        .expect("greeting");
    assert!(greeting.starts_with(b"+OK"));
    assert!(send_cmd(client, "USER alice").starts_with(b"+OK"));
    assert!(send_cmd(client, "PASS wonderland").starts_with(b"+OK"));
    std::thread::sleep(THINK_TIME);
    assert!(send_cmd(client, "STAT").starts_with(b"+OK"));
    assert!(send_cmd(client, "QUIT").starts_with(b"+OK"));
}

fn main() {
    let server = Arc::new(
        ShardedPop3::new(
            &MailDb::sample(),
            ShardedPop3Config {
                shards: SHARDS,
                queue_capacity: CONNECTIONS,
                policy: AcceptPolicy::SessionAffinity,
                supervisor: Some(SupervisorConfig::default()),
                ..ShardedPop3Config::default()
            },
        )
        .expect("build sharded pop3"),
    );
    let listener = Listener::bind("pop3", CONNECTIONS);
    // One registry observes the whole stack: listener accept counters,
    // shard placement/queue depth, serve latency, supervisor restarts.
    let telemetry = wedge::telemetry::Telemetry::new();
    server.instrument(&telemetry);
    listener.instrument(&telemetry);
    println!(
        "serving {CONNECTIONS} POP3 connections through a listener into \
         {SHARDS} supervised shards (killing shard {KILLED} mid-traffic)..."
    );

    let serve = {
        let server = server.clone();
        let listener = listener.clone();
        std::thread::spawn(move || server.serve_listener(&listener, 8))
    };

    let started = Instant::now();
    let mut clients = Vec::with_capacity(CONNECTIONS);
    for n in 0..CONNECTIONS {
        let source = SourceAddr::new([172, 16, 0, n as u8], 40_000 + n as u16);
        let link = listener.connect(source).expect("connect");
        clients.push(std::thread::spawn(move || run_session(&link)));
        if n == CONNECTIONS / 3 {
            let report = server.kill_shard(KILLED);
            println!(
                "killed shard {KILLED} mid-traffic: {} queued links re-routed, {} failed",
                report.rerouted, report.failed
            );
        }
    }
    assert!(
        server.await_healthy(KILLED, Duration::from_secs(30)),
        "supervisor must revive shard {KILLED}"
    );
    // A homing wave: hosts whose source-affinity key hashes to the
    // revived shard, proving it rejoined the ring at its old index.
    let homing_hosts = (0..u16::MAX as usize)
        .map(|n| SourceAddr::new([192, 168, (n >> 8) as u8, (n & 0xFF) as u8], 45_000))
        .filter(|s| wedge::sched::shard_for_key(s.affinity_key(), SHARDS) == KILLED)
        .take(5);
    for source in homing_hosts {
        let link = listener.connect(source).expect("connect");
        clients.push(std::thread::spawn(move || run_session(&link)));
    }
    for client in clients {
        client.join().expect("client session");
    }
    listener.close();
    let outcomes = serve.join().expect("accept loop");
    let elapsed = started.elapsed();

    let mut per_shard = [0u64; SHARDS];
    for outcome in &outcomes {
        let report = outcome.as_ref().expect("connection served");
        assert!(report.stats.logged_in, "every session logs in");
        per_shard[report.shard] += 1;
    }
    assert_eq!(outcomes.len(), CONNECTIONS + 5);
    assert!(
        per_shard[KILLED] >= 5,
        "the revived shard must serve the homing wave"
    );

    let total = outcomes.len();
    println!(
        "\nserved {total} connections in {elapsed:?} \
         ({:.0} connections/sec aggregate)",
        total as f64 / elapsed.as_secs_f64()
    );

    // The whole stack in one unified snapshot — no per-struct dumps.
    let snapshot = telemetry.snapshot();
    println!("\ntelemetry snapshot:\n{}", snapshot.to_text());

    assert_eq!(snapshot.counter("listener.accept"), total as u64);
    assert_eq!(
        snapshot.counter("sched.submitted"),
        snapshot.counter("sched.completed") + snapshot.counter("sched.rejected")
    );
    assert!(
        snapshot.counter("supervisor.restarts") >= 1,
        "the kill must have been supervised"
    );
    let serve = snapshot.histogram("shard.serve").expect("serve latency");
    assert_eq!(serve.count, total as u64);
    println!("every connection served through the crash — nothing dropped.");
}
