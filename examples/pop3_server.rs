//! The partitioned POP3 server of Figure 1: client handler sthread, login
//! callgate, e-mail retriever callgate.
//!
//! Run with `cargo run --example pop3_server`.

use std::time::Duration;

use wedge::core::Wedge;
use wedge::net::{duplex_pair, RecvTimeout};
use wedge::pop3::{MailDb, Pop3Server};

fn command(client: &wedge::net::Duplex, cmd: &str) -> String {
    client.send(cmd.as_bytes()).expect("send");
    String::from_utf8_lossy(
        &client
            .recv(RecvTimeout::After(Duration::from_secs(5)))
            .expect("reply"),
    )
    .to_string()
}

fn main() {
    let server = Pop3Server::new(Wedge::init(), &MailDb::sample()).expect("server");
    let (client, server_link) = duplex_pair("pop3-client", "pop3-server");
    let handle = server.serve_connection(server_link).expect("connection");

    let greeting = client
        .recv(RecvTimeout::After(Duration::from_secs(5)))
        .expect("greeting");
    println!("S: {}", String::from_utf8_lossy(&greeting));

    for cmd in ["USER alice", "PASS wonderland", "STAT", "RETR 1", "QUIT"] {
        println!("C: {cmd}");
        println!("S: {}", command(&client, cmd));
    }

    let stats = handle.join().expect("join").expect("session");
    println!(
        "session: {} commands, logged_in={}, retrieved={}",
        stats.commands, stats.logged_in, stats.retrieved
    );
    println!("kernel stats: {:?}", server.wedge().kernel().stats());
}
