//! The §5.1.2-partitioned HTTPS server serving a real request from a real
//! (simulated-network) client, with the kernel statistics the paper quotes
//! ("each request creates two sthreads and invokes eight callgates").
//!
//! Run with `cargo run --example apache_ssl`.

use wedge::apache::{ApacheConfig, PageStore, WedgeApache};
use wedge::core::Wedge;
use wedge::crypto::{RsaKeyPair, WedgeRng};
use wedge::net::duplex_pair;
use wedge::tls::TlsClient;

fn main() {
    let keypair = RsaKeyPair::generate(&mut WedgeRng::from_seed(2026));
    let server = WedgeApache::new(
        Wedge::init(),
        keypair,
        PageStore::sample(),
        ApacheConfig { recycled: false },
    )
    .expect("server");

    let mut client = TlsClient::new(server.public_key(), WedgeRng::from_entropy());

    for round in 0..2 {
        let (client_link, server_link) = duplex_pair("browser", "apache");
        let report = std::thread::scope(|scope| {
            let handle = scope.spawn(|| server.serve_connection(server_link).expect("serve"));
            let mut conn = client.connect(&client_link).expect("handshake");
            conn.send(&client_link, b"GET /account HTTP/1.0\r\n\r\n")
                .expect("request");
            let response = conn.recv(&client_link).expect("response");
            println!(
                "round {round}: resumed={} response={:?}...",
                conn.resumed,
                String::from_utf8_lossy(&response[..40.min(response.len())])
            );
            drop(conn);
            drop(client_link);
            handle.join().expect("server thread")
        });
        println!(
            "  server report: handshake_ok={} resumed={} requests={}",
            report.handshake_ok, report.resumed, report.requests
        );
    }

    let stats = server.wedge().kernel().stats();
    println!("kernel stats after two connections: {stats:?}");
    println!(
        "  sthreads per connection ≈ {}, callgate activations per connection ≈ {}",
        stats.sthreads_created / 2,
        stats.callgate_invocations / 2
    );
}
