//! Quick-run evaluation harness: regenerate the *shape* of every figure and
//! table in the paper's evaluation (§6) in a single command, without waiting
//! for the full Criterion suite.
//!
//! ```text
//! cargo run --release --example figures            # everything
//! cargo run --release --example figures -- fig7    # one section
//! cargo run --release --example figures -- fig8 table2
//! ```
//!
//! Sections: `fig7` (primitive latency), `fig8` (memory calls), `fig9`
//! (Crowbar overhead), `table2` (Apache throughput + SSH latency),
//! `metrics` (partitioning metrics of §5.1/§5.2).
//!
//! The numbers printed here are indicative (a few hundred iterations with
//! `std::time::Instant`); `cargo bench --workspace` produces the
//! statistically robust versions recorded in EXPERIMENTS.md. The paper's
//! absolute numbers come from 2008-era hardware and a patched kernel, so
//! only the orderings and rough ratios are expected to carry over.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::unbounded;

use crowbar::{CbLog, PinSim};
use wedge::apache::metrics::{measured_apache, PartitioningMetrics};
use wedge::core::callgate::typed_entry;
use wedge::core::procsim::{ForkSim, PthreadSim};
use wedge::core::{AccessSink, SecurityPolicy, Wedge};
use wedge_alloc::{Arena, Segment, SegmentId, TagCache, TagCacheConfig};
use wedge_bench::spec::{run_spec, spec_workloads};
use wedge_bench::{ssh_login, ssh_scp, ApacheBed, ApacheVariant, SshBed};

fn main() {
    let requested: Vec<String> = std::env::args().skip(1).map(|a| a.to_lowercase()).collect();
    let want = |name: &str| requested.is_empty() || requested.iter().any(|r| r == name);

    println!("wedge-rs quick evaluation harness (see EXPERIMENTS.md for the full record)\n");
    if want("fig7") {
        fig7();
    }
    if want("fig8") {
        fig8();
    }
    if want("fig9") {
        fig9();
    }
    if want("table2") {
        table2_apache();
        table2_ssh();
    }
    if want("metrics") {
        metrics();
    }
}

/// Time `iters` runs of `f` and return the mean per-iteration duration.
fn time_mean<F: FnMut()>(iters: u32, mut f: F) -> Duration {
    // One warm-up iteration so lazy initialisation is not billed.
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed() / iters
}

fn micros(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

fn nanos(d: Duration) -> f64 {
    d.as_secs_f64() * 1e9
}

// ---------------------------------------------------------------------------
// Figure 7 — primitive creation/invocation latency
// ---------------------------------------------------------------------------

fn fig7() {
    println!("== Figure 7: sthread calls (µs per create/invoke + join) ==");
    println!(
        "   paper: pthread ≈ recycled (cheapest) ≪ sthread ≈ callgate ≈ fork (~8× recycled)\n"
    );
    const ITERS: u32 = 200;

    let pthread = time_mean(ITERS, || {
        PthreadSim::spawn_and_join(|| std::hint::black_box(1 + 1));
    });

    let fork_parent = ForkSim::new(4 * 1024 * 1024, 32);
    let fork = time_mean(ITERS, || {
        fork_parent.fork_and_wait(|image, fds| std::hint::black_box(image.len() + fds.len()));
    });

    let wedge = Wedge::init();
    let root = wedge.root();
    let sthread = time_mean(ITERS, || {
        let handle = root
            .sthread_create("fig7-sthread", &SecurityPolicy::deny_all(), |_ctx| 1u32)
            .expect("sthread");
        handle.join().expect("join");
    });

    // Callgate and recycled callgate, invoked from a persistent caller
    // sthread so only the invocation round trip is measured.
    let entry = wedge
        .kernel()
        .cgate_register("fig7_noop", typed_entry(|_ctx, _t, n: u64| Ok(n + 1)));
    let mut caller_policy = SecurityPolicy::deny_all();
    caller_policy.sc_cgate_add(entry, SecurityPolicy::deny_all(), None);

    let measure_gate = |recycled: bool| -> Duration {
        let (cmd_tx, cmd_rx) = unbounded::<()>();
        let (done_tx, done_rx) = unbounded::<u64>();
        let _caller = root
            .sthread_create("fig7-caller", &caller_policy, move |ctx| {
                while cmd_rx.recv().is_ok() {
                    let result = if recycled {
                        ctx.cgate_recycled_expect::<u64>(
                            entry,
                            &SecurityPolicy::deny_all(),
                            Box::new(1u64),
                        )
                    } else {
                        ctx.cgate_expect::<u64>(entry, &SecurityPolicy::deny_all(), Box::new(1u64))
                    }
                    .unwrap_or(0);
                    if done_tx.send(result).is_err() {
                        break;
                    }
                }
            })
            .expect("caller sthread");
        time_mean(ITERS, || {
            cmd_tx.send(()).expect("command");
            done_rx.recv().expect("reply");
        })
    };
    let callgate = measure_gate(false);
    let recycled = measure_gate(true);

    println!("   {:<20} {:>10}", "primitive", "µs");
    for (label, d) in [
        ("pthread", pthread),
        ("recycled callgate", recycled),
        ("sthread", sthread),
        ("callgate", callgate),
        ("fork", fork),
    ] {
        println!("   {:<20} {:>10.2}", label, micros(d));
    }
    println!(
        "   shape: recycled/callgate ratio = {:.1}x, sthread/pthread ratio = {:.1}x\n",
        micros(callgate) / micros(recycled).max(0.01),
        micros(sthread) / micros(pthread).max(0.01),
    );
}

// ---------------------------------------------------------------------------
// Figure 8 — memory call latency
// ---------------------------------------------------------------------------

fn fig8() {
    println!("== Figure 8: memory calls (ns per op) ==");
    println!("   paper: malloc ≪ tag_new(reuse) ≈ 4× malloc ≪ mmap ≈ 22× malloc\n");
    const ITERS: u32 = 20_000;

    let mut arena = Arena::new(256 * 1024).expect("arena");
    let malloc = time_mean(ITERS, || {
        let p = arena.alloc(64).expect("alloc");
        arena.free(p).expect("free");
    });

    let wedge = Wedge::init();
    let root = wedge.root();
    let tag = root.tag_new().expect("tag");
    let smalloc = time_mean(ITERS, || {
        let buf = root.smalloc(64, tag).expect("smalloc");
        root.sfree(&buf).expect("sfree");
    });

    let mut cache = TagCache::new(TagCacheConfig::default());
    let warm = cache.acquire(64 * 1024).expect("segment");
    cache.release(warm);
    let tag_new_reuse = time_mean(ITERS, || {
        let segment = cache.acquire(64 * 1024).expect("segment");
        cache.release(segment);
    });

    let mut fresh_id = 0u64;
    let mmap_fresh = time_mean(2_000, || {
        fresh_id += 1;
        std::hint::black_box(Segment::new(SegmentId(fresh_id), 64 * 1024).expect("segment"));
    });

    println!("   {:<20} {:>12}", "call", "ns");
    for (label, d) in [
        ("malloc", malloc),
        ("smalloc", smalloc),
        ("tag_new (reuse)", tag_new_reuse),
        ("mmap (fresh seg)", mmap_fresh),
    ] {
        println!("   {:<20} {:>12.1}", label, nanos(d));
    }
    println!(
        "   shape: tag_new(reuse)/malloc = {:.1}x, mmap/malloc = {:.1}x\n",
        nanos(tag_new_reuse) / nanos(malloc).max(0.01),
        nanos(mmap_fresh) / nanos(malloc).max(0.01),
    );
}

// ---------------------------------------------------------------------------
// Figure 9 — Crowbar (cb-log) overhead
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Native,
    Pin,
    Crowbar,
}

fn install_on_kernel(kernel: &wedge::core::Kernel, mode: Mode) {
    match mode {
        Mode::Native => kernel.set_tracer(None),
        Mode::Pin => kernel.set_tracer(Some(Arc::new(PinSim::new()))),
        Mode::Crowbar => {
            let log = CbLog::new();
            kernel.set_tracer(Some(log as Arc<dyn AccessSink>));
        }
    }
}

fn fig9() {
    println!("== Figure 9: cb-log overhead (completion time, ratios vs native) ==");
    println!("   paper: crowbar ≈ 96× native / ≈ 27× pin on average; ssh and apache show the\n   smallest ratios because they re-execute basic blocks least\n");
    println!(
        "   {:<12} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "workload", "native µs", "pin µs", "crowbar µs", "pin/nat", "cb/nat"
    );

    // Synthetic SPEC-like kernels.
    for workload in spec_workloads() {
        let mut results = [Duration::ZERO; 3];
        for (i, mode) in [Mode::Native, Mode::Pin, Mode::Crowbar]
            .into_iter()
            .enumerate()
        {
            let wedge = Wedge::init();
            install_on_kernel(wedge.kernel(), mode);
            let root = wedge.root();
            results[i] = time_mean(5, || {
                run_spec(&root, workload).expect("workload");
            });
        }
        print_fig9_row(workload.name, results);
    }

    // The two end-to-end applications, instrumented server-side.
    let mut ssh_results = [Duration::ZERO; 3];
    for (i, mode) in [Mode::Native, Mode::Pin, Mode::Crowbar]
        .into_iter()
        .enumerate()
    {
        let bed = SshBed::new(21);
        install_on_kernel(&bed.kernel(), mode);
        ssh_results[i] = time_mean(10, || {
            bed.login();
        });
    }
    print_fig9_row("ssh", ssh_results);

    let mut apache_results = [Duration::ZERO; 3];
    for (i, mode) in [Mode::Native, Mode::Pin, Mode::Crowbar]
        .into_iter()
        .enumerate()
    {
        let mut bed = ApacheBed::new(ApacheVariant::Wedge, 22);
        install_on_kernel(&bed.kernel(), mode);
        apache_results[i] = time_mean(10, || {
            bed.forget_session();
            bed.request("/index.html");
        });
    }
    print_fig9_row("apache", apache_results);
    println!();
}

fn print_fig9_row(name: &str, [native, pin, crowbar]: [Duration; 3]) {
    println!(
        "   {:<12} {:>12.1} {:>12.1} {:>12.1} {:>9.1}x {:>9.1}x",
        name,
        micros(native),
        micros(pin),
        micros(crowbar),
        micros(pin) / micros(native).max(0.01),
        micros(crowbar) / micros(native).max(0.01),
    );
}

// ---------------------------------------------------------------------------
// Table 2 — Apache throughput and OpenSSH latency
// ---------------------------------------------------------------------------

fn table2_apache() {
    println!("== Table 2 (top): Apache throughput (requests/s) ==");
    println!("   paper: cached  — vanilla 1238 / wedge 238 / recycled 339");
    println!("          uncached — vanilla 247 / wedge 132 / recycled 170\n");
    const REQUESTS: u32 = 40;

    println!(
        "   {:<12} {:>16} {:>18}",
        "variant", "cached req/s", "not-cached req/s"
    );
    for (label, variant) in [
        ("vanilla", ApacheVariant::Vanilla),
        ("simple", ApacheVariant::Simple),
        ("wedge", ApacheVariant::Wedge),
        ("recycled", ApacheVariant::Recycled),
    ] {
        // Sessions cached: resume the same session on every request.
        let mut bed = ApacheBed::new(variant, 31);
        bed.warm();
        let mut cached_total = Duration::ZERO;
        for _ in 0..REQUESTS {
            cached_total += bed.request("/index.html");
        }
        let cached_rps = REQUESTS as f64 / cached_total.as_secs_f64().max(1e-9);

        // Sessions not cached: full handshake every time.
        let mut bed = ApacheBed::new(variant, 32);
        let mut uncached_total = Duration::ZERO;
        for _ in 0..REQUESTS {
            bed.forget_session();
            uncached_total += bed.request("/index.html");
        }
        let uncached_rps = REQUESTS as f64 / uncached_total.as_secs_f64().max(1e-9);

        println!("   {label:<12} {cached_rps:>16.0} {uncached_rps:>18.0}");
    }
    println!();
}

fn table2_ssh() {
    println!("== Table 2 (bottom): OpenSSH latency ==");
    println!("   paper: login 0.145 s vs 0.148 s; 10 MB scp 0.376 s vs 0.370 s (negligible)\n");
    const SCP_BYTES: usize = 10 * 1024 * 1024;
    println!(
        "   {:<12} {:>16} {:>16}",
        "variant", "login ms", "scp 10MB ms"
    );
    for (label, wedged) in [("vanilla", false), ("wedge", true)] {
        let login = time_mean(3, || {
            ssh_login(wedged);
        });
        let scp = time_mean(2, || {
            ssh_scp(wedged, SCP_BYTES);
        });
        println!(
            "   {label:<12} {:>16.2} {:>16.2}",
            login.as_secs_f64() * 1e3,
            scp.as_secs_f64() * 1e3
        );
    }
    println!();
}

// ---------------------------------------------------------------------------
// §5.1 / §5.2 partitioning metrics
// ---------------------------------------------------------------------------

fn metrics() {
    println!("== Partitioning metrics (§5.1 / §5.2) ==\n");
    println!(
        "   {:<28} {:>9} {:>9} {:>9} {:>8} {:>8}",
        "partitioning", "callgate", "sthread", "changed", "trusted%", "changed%"
    );
    let row = |label: &str, m: &PartitioningMetrics| {
        println!(
            "   {label:<28} {:>9} {:>9} {:>9} {:>7.1}% {:>7.1}%",
            m.callgate_loc,
            m.sthread_loc,
            m.changed_loc,
            m.trusted_fraction() * 100.0,
            m.change_fraction() * 100.0,
        );
    };
    row(
        "paper: Apache/OpenSSL",
        &PartitioningMetrics::paper_apache(),
    );
    row("paper: OpenSSH", &PartitioningMetrics::paper_openssh());
    row("this repo: wedge-apache", &measured_apache());
    println!();
}
