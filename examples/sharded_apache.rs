//! 96 simulated HTTPS connections served through a 4-shard forked
//! front-end, with per-shard **and** aggregate counters printed at the
//! end — including a cross-shard session-resumption demonstration.
//!
//! Run with `cargo run --release --example sharded_apache`.

use std::time::{Duration, Instant};

use wedge::apache::{ConcurrentApache, ConcurrentApacheConfig, PageStore};
use wedge::crypto::{RsaKeyPair, WedgeRng};
use wedge::net::duplex_pair;
use wedge::sched::{AcceptPolicy, ShardStats};
use wedge::tls::TlsClient;

const CONNECTIONS: usize = 96;
const SHARDS: usize = 4;
const THINK_TIME: Duration = Duration::from_millis(3);

fn main() {
    let keypair = RsaKeyPair::generate(&mut WedgeRng::from_seed(2026));
    let server = ConcurrentApache::new(
        keypair,
        PageStore::sample(),
        ConcurrentApacheConfig {
            shards: SHARDS,
            queue_capacity: 32,
            max_inflight: Some(CONNECTIONS as u64),
            recycled: true,
            policy: AcceptPolicy::RoundRobin,
            supervisor: None,
        },
    )
    .expect("build sharded server");

    println!(
        "serving {CONNECTIONS} connections through {SHARDS} forked shards \
         ({THINK_TIME:?} client think time)..."
    );

    let mut clients = Vec::with_capacity(CONNECTIONS);
    let mut server_links = Vec::with_capacity(CONNECTIONS);
    let started = Instant::now();
    for i in 0..CONNECTIONS {
        let (client_link, server_link) = duplex_pair("client", "server");
        let public_key = server.public_key();
        clients.push(std::thread::spawn(move || {
            let mut client = TlsClient::new(public_key, WedgeRng::from_seed(3000 + i as u64));
            let mut conn = client.connect(&client_link).expect("handshake");
            std::thread::sleep(THINK_TIME);
            conn.send(&client_link, b"GET /index.html HTTP/1.0\r\n\r\n")
                .expect("send request");
            let response = conn.recv(&client_link).expect("response");
            assert!(response.starts_with(b"HTTP/1.0 200 OK"));
        }));
        server_links.push(server_link);
    }

    let mut served = 0usize;
    for report in server.serve_all(server_links) {
        let report = report.expect("connection served");
        assert!(report.handshake_ok);
        served += report.requests as usize;
    }
    let elapsed = started.elapsed();
    for client in clients {
        client.join().expect("client thread");
    }

    println!(
        "served {served} requests in {elapsed:?} ({:.0} connections/sec)",
        CONNECTIONS as f64 / elapsed.as_secs_f64()
    );

    // One client that handshakes on one shard and resumes on another: the
    // shared session cache makes the abbreviated handshake work anywhere.
    let mut roaming = TlsClient::new(server.public_key(), WedgeRng::from_seed(77));
    let mut shards_seen = Vec::new();
    let mut resumed_count = 0usize;
    for round in 0..2 {
        let (client_link, server_link) = duplex_pair("roaming-client", "server");
        let handle = server.serve(server_link).expect("submit");
        let conn = roaming.connect(&client_link).expect("handshake");
        drop(client_link);
        let report = handle.join().expect("serve");
        shards_seen.push(report.shard);
        resumed_count += usize::from(report.resumed);
        assert_eq!(conn.resumed, round > 0, "second round must resume");
    }
    println!(
        "\ncross-shard resumption: handshake on shard {}, resumed on shard {} \
         ({resumed_count} abbreviated handshake)",
        shards_seen[0], shards_seen[1]
    );
    assert_ne!(shards_seen[0], shards_seen[1], "round-robin must roam");
    assert_eq!(resumed_count, 1);

    println!("\nper-shard counters:");
    println!("  shard  healthy  boot-cost  served  queued-peak  sthreads  faults");
    let mut aggregate = ShardStats::default();
    for stats in server.shard_stats() {
        println!(
            "  {:>5}  {:>7}  {:>9.1?}  {:>6}  {:>11}  {:>8}  {:>6}",
            stats.shard,
            stats.healthy,
            stats.boot_cost,
            stats.sched.completed,
            stats.sched.peak_queue_depth,
            stats.kernel.sthreads_created,
            stats.kernel.faults
        );
        aggregate += &stats;
    }

    let sched = server.sched_stats();
    println!("\naggregate front-end counters:");
    println!("  submitted        {}", sched.submitted);
    println!("  completed        {}", sched.completed);
    println!("  rejected         {}", sched.rejected);
    println!("  re-routed        {}", sched.stolen);
    println!("  peak queue depth {}", sched.peak_queue_depth);

    let (hits, misses) = server.session_cache().stats();
    println!("\nshared session cache: {hits} hits / {misses} misses");

    let kernel = server.kernel_stats();
    println!("\nkernel counters (summed over {SHARDS} shard kernels):");
    println!("  sthreads created      {}", kernel.sthreads_created);
    println!("  callgate invocations  {}", kernel.callgate_invocations);
    println!("  recycled invocations  {}", kernel.recycled_invocations);
    println!(
        "  tagged reads/writes   {}/{}",
        kernel.mem_reads, kernel.mem_writes
    );
    println!("  faults                {}", kernel.faults);

    assert_eq!(served, CONNECTIONS);
    assert_eq!(aggregate.sched.completed, sched.completed);
    assert_eq!(sched.completed, CONNECTIONS as u64 + 2);
    assert!(hits >= 1, "the roaming client must hit the shared cache");
}
