//! Quickstart: the Wedge primitives in ~60 lines.
//!
//! Run with `cargo run --example quickstart`.

use wedge::core::callgate::typed_entry;
use wedge::core::{MemProt, SBuf, SecurityPolicy, TrustedArg, Wedge, WedgeError};

fn main() -> Result<(), WedgeError> {
    // 1. Initialise the runtime; `root` is the unconfined first compartment.
    let wedge = Wedge::init();
    let root = wedge.root();

    // 2. Put a secret in tagged memory.
    let secret_tag = root.tag_new()?;
    let secret = root.smalloc_init(secret_tag, b"the launch codes")?;

    // 3. A default-deny sthread cannot read it.
    let denied = root
        .sthread_create(
            "untrusted-worker",
            &SecurityPolicy::deny_all(),
            move |ctx| ctx.read_all(&secret),
        )?
        .join()?;
    println!("untrusted worker read attempt: {denied:?}");
    assert!(denied.is_err());

    // 4. A callgate can use the secret on the worker's behalf, revealing
    //    only what its creator intends (here: the secret's length).
    let entry = wedge.kernel().cgate_register(
        "secret_len",
        typed_entry(|ctx, trusted, _input: ()| {
            let buf = trusted
                .and_then(|t| t.downcast::<SBuf>())
                .copied()
                .expect("trusted arg");
            Ok(ctx.read_all(&buf)?.len())
        }),
    );
    let mut gate_policy = SecurityPolicy::deny_all();
    gate_policy.sc_mem_add(secret_tag, MemProt::Read);
    let mut worker_policy = SecurityPolicy::deny_all();
    worker_policy.sc_cgate_add(entry, gate_policy, Some(TrustedArg::new(secret)));

    let len = root
        .sthread_create("worker-with-gate", &worker_policy, move |ctx| {
            ctx.cgate_expect::<usize>(entry, &SecurityPolicy::deny_all(), Box::new(()))
        })?
        .join()??;
    println!("secret length via callgate: {len}");
    assert_eq!(len, b"the launch codes".len());

    println!("quickstart OK: default-deny held, the callgate mediated access");
    Ok(())
}
