//! 100 simulated HTTPS connections served through an 8-worker pooled
//! scheduler, with every scheduler/pool/kernel counter printed at the end.
//!
//! Run with `cargo run --release --example concurrent_apache`.

use std::time::{Duration, Instant};

use wedge::apache::{ConcurrentApache, ConcurrentApacheConfig, PageStore};
use wedge::crypto::{RsaKeyPair, WedgeRng};
use wedge::net::duplex_pair;
use wedge::tls::TlsClient;

const CONNECTIONS: usize = 100;
const WORKERS: usize = 8;
const THINK_TIME: Duration = Duration::from_millis(3);

fn main() {
    let keypair = RsaKeyPair::generate(&mut WedgeRng::from_seed(2026));
    let server = ConcurrentApache::new(
        keypair,
        PageStore::sample(),
        ConcurrentApacheConfig {
            shards: WORKERS,
            queue_capacity: 32,
            max_inflight: Some(CONNECTIONS as u64),
            recycled: true,
            policy: wedge::sched::AcceptPolicy::RoundRobin,
            supervisor: None,
        },
    )
    .expect("build pooled server");

    println!(
        "serving {CONNECTIONS} connections through {WORKERS} pooled instances \
         ({THINK_TIME:?} client think time)..."
    );

    let mut clients = Vec::with_capacity(CONNECTIONS);
    let mut server_links = Vec::with_capacity(CONNECTIONS);
    let started = Instant::now();
    for i in 0..CONNECTIONS {
        let (client_link, server_link) = duplex_pair("client", "server");
        let public_key = server.public_key();
        clients.push(std::thread::spawn(move || {
            let mut client = TlsClient::new(public_key, WedgeRng::from_seed(3000 + i as u64));
            let mut conn = client.connect(&client_link).expect("handshake");
            std::thread::sleep(THINK_TIME);
            conn.send(&client_link, b"GET /index.html HTTP/1.0\r\n\r\n")
                .expect("send request");
            let response = conn.recv(&client_link).expect("response");
            assert!(response.starts_with(b"HTTP/1.0 200 OK"));
        }));
        server_links.push(server_link);
    }

    let mut served = 0usize;
    let mut resumed = 0usize;
    for report in server.serve_all(server_links) {
        let report = report.expect("connection served");
        assert!(report.handshake_ok);
        served += report.requests as usize;
        resumed += usize::from(report.resumed);
    }
    let elapsed = started.elapsed();
    for client in clients {
        client.join().expect("client thread");
    }

    println!(
        "served {served} requests in {elapsed:?} \
         ({:.0} connections/sec, {resumed} resumed)",
        CONNECTIONS as f64 / elapsed.as_secs_f64()
    );

    let sched = server.sched_stats();
    println!("\nscheduler counters:");
    println!("  submitted        {}", sched.submitted);
    println!("  completed        {}", sched.completed);
    println!("  rejected         {}", sched.rejected);
    println!("  stolen           {}", sched.stolen);
    println!("  peak queue depth {}", sched.peak_queue_depth);

    let kernel = server.kernel_stats();
    println!("\nkernel counters (summed over {WORKERS} instances):");
    println!("  sthreads created      {}", kernel.sthreads_created);
    println!("  callgate invocations  {}", kernel.callgate_invocations);
    println!("  recycled invocations  {}", kernel.recycled_invocations);
    println!(
        "  tagged reads/writes   {}/{}",
        kernel.mem_reads, kernel.mem_writes
    );
    println!("  faults                {}", kernel.faults);

    assert_eq!(served, CONNECTIONS);
    assert_eq!(sched.completed, CONNECTIONS as u64);
}
