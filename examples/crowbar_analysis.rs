//! The Crowbar workflow of §3.4: run code under cb-log, query the trace
//! with cb-analyze, and derive the grants a compartment needs.
//!
//! Run with `cargo run --example crowbar_analysis`.

use wedge::core::{SecurityPolicy, Wedge};
use wedge::crowbar::report::{render_footprint, render_suggestion};
use wedge::crowbar::CbLog;

fn main() {
    let wedge = Wedge::init();
    let log = CbLog::new();
    log.install(wedge.kernel());
    let root = wedge.root();

    // A miniature "legacy application": login() touches the password DB and
    // the session state; serve_page() touches the session state and pages.
    let db_tag = root.tag_new().unwrap();
    let session_tag = root.tag_new().unwrap();
    let pages_tag = root.tag_new().unwrap();
    let passwords = root.smalloc_init(db_tag, b"alice:wonderland").unwrap();
    let session = root.smalloc(16, session_tag).unwrap();
    let pages = root.smalloc_init(pages_tag, b"<html>index</html>").unwrap();

    {
        let _f = root.trace_fn("login");
        let _g = root.trace_fn("check_password");
        root.read_all(&passwords).unwrap();
        root.write(&session, 0, b"uid=1001").unwrap();
    }
    {
        let _f = root.trace_fn("serve_page");
        root.read(&session, 0, 8).unwrap();
        root.read_all(&pages).unwrap();
    }

    // cb-analyze, query 1: what does `serve_page` need?
    let trace = log.snapshot();
    let footprint = trace.footprint_of("serve_page");
    println!("{}", render_footprint("serve_page", &footprint));

    // cb-analyze, query 3 + 2: what does `login` write, and who uses it?
    let written = trace.written_by("login");
    println!("items written by `login` and its descendants:");
    for item in &written {
        println!("  {item}");
    }
    let users = trace.users_of(&written);
    println!("procedures using those items: {users:?}\n");

    // Derive the grant set for an sthread that will run serve_page.
    let suggestion = trace.suggest_policy("serve_page");
    println!("{}", render_suggestion("serve_page sthread", &suggestion));

    // Apply it: the derived policy lets serve_page run, but still denies the
    // password database.
    let policy = suggestion.to_security_policy();
    let outcome = root
        .sthread_create("serve-page-sthread", &policy, move |ctx| {
            let page = ctx.read_all(&pages)?;
            let denied = ctx.read_all(&passwords).is_err();
            Ok::<_, wedge::core::WedgeError>((page.len(), denied))
        })
        .unwrap()
        .join()
        .unwrap()
        .unwrap();
    println!(
        "derived policy: serve_page read {} bytes of pages; password DB still denied: {}",
        outcome.0, outcome.1
    );

    // The emulation-library workflow: grant nothing, run under emulation,
    // and list the violations (i.e. the grants that are still missing).
    wedge.kernel().set_emulation(true);
    log.clear();
    let handle = root
        .sthread_create("unprovisioned", &SecurityPolicy::deny_all(), move |ctx| {
            let _f = ctx.trace_fn("serve_page");
            let _ = ctx.read_all(&pages);
        })
        .unwrap();
    handle.join().unwrap();
    let violations = log.snapshot();
    println!(
        "emulation mode recorded {} violation(s) for the unprovisioned sthread: {:?}",
        violations.violations().len(),
        violations.violation_items("unprovisioned")
    );
}
