//! The Wedge-partitioned SSH server: unprivileged worker, authentication
//! callgates, uid escalation on success, and the anti-probing behaviour.
//!
//! Run with `cargo run --example openssh_login`.

use wedge::core::Wedge;
use wedge::crypto::{RsaKeyPair, WedgeRng};
use wedge::net::duplex_pair;
use wedge::ssh::authdb::ServerConfig;
use wedge::ssh::{AuthDb, SshClient, WedgeSsh};

fn main() {
    let keypair = RsaKeyPair::generate(&mut WedgeRng::from_seed(7));
    let server = WedgeSsh::new(
        Wedge::init(),
        keypair,
        &AuthDb::sample(),
        &ServerConfig::default(),
    )
    .expect("sshd");

    let (client_link, server_link) = duplex_pair("ssh-client", "sshd");
    let handle = server.serve_connection(server_link).expect("worker");
    let mut client = SshClient::new();

    let hello = client.connect(&client_link).expect("hello");
    println!(
        "server: {} (host key proof valid: {})",
        hello.version, hello.host_proof_valid
    );

    // A failed attempt against an unknown user and against a known user look
    // identical to the client — the dummy-passwd anti-probing fix.
    let unknown = client
        .auth_password(&client_link, "mallory", "guess")
        .expect("auth");
    let wrong = client
        .auth_password(&client_link, "alice", "guess")
        .expect("auth");
    println!(
        "unknown user:   success={} detail={:?}",
        unknown.0, unknown.2
    );
    println!("wrong password: success={} detail={:?}", wrong.0, wrong.2);

    let ok = client
        .auth_password(&client_link, "alice", "correct horse battery")
        .expect("auth");
    println!("correct login:  success={} uid={}", ok.0, ok.1);

    println!(
        "whoami → {}",
        client.exec(&client_link, "whoami").expect("exec")
    );
    println!(
        "echo   → {}",
        client.exec(&client_link, "echo hello wedge").expect("exec")
    );

    let acked = client
        .scp_upload(&client_link, 1024 * 1024, 64 * 1024)
        .expect("scp");
    println!("scp upload acknowledged: {acked} bytes");

    client.disconnect(&client_link).expect("bye");
    let report = handle.join().expect("worker exit");
    println!("worker report: {report:?}");
}
