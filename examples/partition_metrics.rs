//! The partitioning metrics of §5.1/§5.2: how much code ends up trusted
//! (inside callgates) versus untrusted (inside sthreads), in the paper and
//! in this reproduction.
//!
//! Run with `cargo run --example partition_metrics`.

use wedge::apache::metrics::{measured_apache, PartitioningMetrics};

fn row(label: &str, m: &PartitioningMetrics) {
    println!(
        "{label:<28} {:>9} {:>9} {:>9} {:>7.1}% {:>7.1}%",
        m.callgate_loc,
        m.sthread_loc,
        m.changed_loc,
        m.trusted_fraction() * 100.0,
        m.change_fraction() * 100.0,
    );
}

fn main() {
    println!(
        "{:<28} {:>9} {:>9} {:>9} {:>8} {:>8}",
        "partitioning", "callgate", "sthread", "changed", "trusted", "changed"
    );
    println!(
        "{:<28} {:>9} {:>9} {:>9} {:>8} {:>8}",
        "", "LoC", "LoC", "LoC", "%", "%"
    );
    row(
        "paper: Apache/OpenSSL",
        &PartitioningMetrics::paper_apache(),
    );
    row("paper: OpenSSH", &PartitioningMetrics::paper_openssh());
    row("this repo: wedge-apache", &measured_apache());
    println!();
    println!(
        "Shape check: in both the paper and the reproduction, the code that runs with\n\
         privilege (inside callgates) is a minority of the partitioned application, and\n\
         the lines changed to introduce the partitioning are a small fraction of the whole."
    );
}
