//! Open-loop load under scheduled chaos: the whole serving stack
//! (Apache + SSH + POP3 front-ends behind rate-limited listeners, TLS
//! resumption through a 3-node cachenet ring) takes a ramping offered
//! load while a seeded `ChaosSchedule` kills a shard, bounces a cache
//! node (epoch bump) and floods a rate limiter mid-run.
//!
//! Everything is replayable: the arrival timeline is a pure function of
//! the load seed, the fault timeline a pure function of the chaos seed —
//! re-run with the same seeds and the same faults hit the same victims
//! at the same offsets.
//!
//! Run with `cargo run --release --example chaos_load`.

use std::time::Duration;

use wedge::chaos::{ChaosPlan, ChaosSchedule};
use wedge_bench::load::{run_load, LoadPhase, LoadProfile};

fn main() {
    let profile = LoadProfile {
        seed: 0xD1CE,
        hosts: 96,
        phases: vec![
            LoadPhase::new("warm", 30.0, Duration::from_millis(600)),
            LoadPhase::new("peak", 120.0, Duration::from_millis(600)),
        ],
        ..LoadProfile::default()
    };
    let horizon: Duration = profile.phases.iter().map(|p| p.duration).sum();
    let schedule = ChaosSchedule::generate(&ChaosPlan {
        seed: 0xC4A05,
        horizon,
        shards: 3 * profile.shards_per_front,
        cache_nodes: 3,
        shard_kills: 1,
        cache_restarts: 1,
        floods: 1,
        flood_connections: 120,
        ..ChaosPlan::default()
    });
    println!("chaos schedule (seed {:#x}):", schedule.seed);
    for entry in &schedule.entries {
        println!(
            "  t+{:>4}ms  {:<13} victim {}",
            entry.at.as_millis(),
            entry.fault.name(),
            entry.fault.victim()
        );
    }

    let report = run_load(&profile, &schedule);

    println!("\nper-phase outcomes (latency from the *scheduled* arrival):");
    for phase in &report.phases {
        println!(
            "  {:<5} offered {:>5.0}/s achieved {:>5.0}/s  completed {:>3} errors {} resumed {:>3}  p50 {:>6}us p99 {:>6}us p999 {:>6}us",
            phase.name,
            phase.offered_cps,
            phase.achieved_cps,
            phase.completed,
            phase.errors,
            phase.resumed,
            phase.latency.p50_nanos / 1_000,
            phase.latency.p99_nanos / 1_000,
            phase.latency.p999_nanos / 1_000,
        );
    }
    println!("\nfront-end accounting (submitted == completed + rejected):");
    for front in &report.fronts {
        println!(
            "  {:<6} submitted {:>3} completed {:>3} rejected {:>2} serve_errors {:>2} restarts {}",
            front.name,
            front.sched.submitted,
            front.sched.completed,
            front.sched.rejected,
            front.serve_errors,
            front.restarts.as_ref().map_or(0, |r| r.restarts),
        );
    }
    println!(
        "\nlistener: accepted {} refused {} (rate-limited {})",
        report.listener.accepted, report.listener.refused, report.listener.rate_limited
    );
    println!(
        "faults injected {} / audited {}  resumption hit rate {:.0}%",
        report.faults.len(),
        report.fault_events,
        report.resumption_hit_rate.unwrap_or(0.0) * 100.0
    );
    assert!(report.accounts_balance(), "books must balance");
    assert_eq!(report.fault_events, report.faults.len());
    println!("\nOK: every link accounted, every fault audited, same seeds replay the same run.");
}
