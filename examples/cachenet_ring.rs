//! Cross-machine TLS resumption through a distributed cache ring: two
//! independent sharded HTTPS front-ends ("machines") share a 3-node
//! session-cache ring. Clients handshake on machine A and resume with
//! the abbreviated handshake on machine B; mid-run one cache node is
//! killed (circuit-breaking + miss-through) and restarted (epoch bump —
//! its stale entries are invalidated, not served).
//!
//! Run with `cargo run --release --example cachenet_ring`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use wedge::apache::{ConcurrentApache, ConcurrentApacheConfig, PageStore};
use wedge::cachenet::{CacheNode, CacheNodeConfig, CacheRing, CacheRingConfig};
use wedge::crypto::{RsaKeyPair, WedgeRng};
use wedge::net::{duplex_pair, SourceAddr};
use wedge::tls::TlsClient;

const SESSIONS: usize = 24;

fn ring_for(nodes: &[CacheNode], machine: u8) -> Arc<CacheRing> {
    Arc::new(CacheRing::new(
        nodes.iter().map(CacheNode::endpoint).collect(),
        CacheRingConfig {
            source: SourceAddr::new([10, 60, 0, machine], 45_000),
            op_timeout: Duration::from_millis(200),
            breaker_threshold: 1,
            breaker_cooldown: Duration::from_millis(100),
            ..CacheRingConfig::default()
        },
    ))
}

fn machine(keypair: RsaKeyPair, ring: Arc<CacheRing>) -> ConcurrentApache {
    ConcurrentApache::with_session_store(
        keypair,
        PageStore::sample(),
        ConcurrentApacheConfig {
            shards: 2,
            ..ConcurrentApacheConfig::default()
        },
        ring,
    )
    .expect("machine front-end")
}

/// One connection through `front`; returns whether it resumed.
fn connect_once(front: &ConcurrentApache, client: &mut TlsClient) -> bool {
    let (client_link, server_link) = duplex_pair("client", "server");
    let handle = front.serve(server_link).expect("submit");
    let conn = client.connect(&client_link).expect("handshake");
    drop(client_link);
    let report = handle.join().expect("serve");
    assert!(report.handshake_ok);
    assert_eq!(report.key_fingerprint, conn.keys.fingerprint());
    conn.resumed
}

fn main() {
    let nodes: Vec<CacheNode> = (0..3)
        .map(|n| CacheNode::spawn(CacheNodeConfig::named(&format!("cache-{n}"))))
        .collect();
    let ring_a = ring_for(&nodes, 1);
    let ring_b = ring_for(&nodes, 2);
    let keypair = RsaKeyPair::generate(&mut WedgeRng::from_seed(2026));
    let machine_a = machine(keypair, ring_a.clone());
    let machine_b = machine(keypair, ring_b.clone());

    // One registry observes both machines, both ring clients and all
    // three cache nodes; same-named metrics merge additively.
    let telemetry = wedge::telemetry::Telemetry::new();
    machine_a.instrument(&telemetry);
    machine_b.instrument(&telemetry);
    ring_a.instrument(&telemetry);
    ring_b.instrument(&telemetry);
    for node in &nodes {
        node.instrument(&telemetry);
    }

    println!("two 2-shard machines sharing a 3-node cache ring; {SESSIONS} roaming clients\n");

    // Phase 1: full handshakes on machine A.
    let started = Instant::now();
    let mut clients: Vec<TlsClient> = (0..SESSIONS)
        .map(|i| {
            TlsClient::new(
                machine_a.public_key(),
                WedgeRng::from_seed(9_000 + i as u64),
            )
        })
        .collect();
    for client in &mut clients {
        assert!(!connect_once(&machine_a, client), "first contact is full");
    }
    let resident: usize = nodes.iter().map(CacheNode::len).sum();
    println!(
        "phase 1  machine A: {SESSIONS} full handshakes, {resident} sessions written \
         through to the ring ({:?})",
        started.elapsed()
    );

    // Phase 2: the same clients roam to machine B; kill cache-0 mid-run.
    let mut resumed = 0usize;
    for (i, client) in clients.iter_mut().enumerate() {
        if i == SESSIONS / 2 {
            nodes[0].kill();
            println!("phase 2  !! cache-0 killed mid-run");
        }
        if connect_once(&machine_b, client) {
            resumed += 1;
        }
    }
    println!("phase 2  machine B: {resumed}/{SESSIONS} abbreviated handshakes");
    assert!(resumed > 0, "cross-machine resumption must work");

    // Phase 3: restart cache-0 — epoch bumps, its surviving pre-restart
    // entries are stale. A *fresh* machine C (cold ring, cold local
    // tier) touches them: each is invalidated and answered Miss, never
    // served — those clients pay one full handshake; everyone else keeps
    // resuming.
    nodes[0].restart();
    let ring_c = ring_for(&nodes, 3);
    ring_c.instrument(&telemetry);
    let machine_c = machine(keypair, ring_c);
    machine_c.instrument(&telemetry);
    let mut resumed_after = 0usize;
    for client in clients.iter_mut() {
        if connect_once(&machine_c, client) {
            resumed_after += 1;
        }
    }
    let stats0 = nodes[0].stats();
    println!(
        "phase 3  cache-0 restarted at epoch {} — machine C: {} stale entries \
         invalidated (full handshakes), {resumed_after}/{SESSIONS} resumed",
        nodes[0].epoch(),
        stats0.stale_invalidated,
    );
    assert!(
        stats0.stale_invalidated > 0,
        "some sessions were still owned by cache-0 and must invalidate"
    );

    // Every layer — shards, TLS handshakes, both ring clients, all three
    // cache nodes — lands in one unified snapshot.
    let snapshot = telemetry.snapshot();
    println!("\ntelemetry snapshot:\n{}", snapshot.to_text());

    assert_eq!(
        snapshot.counter("sched.submitted"),
        snapshot.counter("sched.completed") + snapshot.counter("sched.rejected")
    );
    assert!(snapshot.counter("tls.handshake.abbreviated") >= resumed as u64);
    assert!(snapshot.counter("cachenet.remote_hits") > 0);
    assert!(
        snapshot.counter("cachenet.node.stale_invalidated") > 0,
        "the restarted node's stale entries must surface in telemetry"
    );
    let lookup = snapshot.histogram("cachenet.lookup").expect("ring latency");
    assert!(lookup.count > 0 && lookup.p99_nanos >= lookup.p50_nanos);
    println!("OK: sessions roam machines through the cache ring, node death degrades");
    println!("    to bounded full handshakes, and a restarted node never serves stale keys.");
}
